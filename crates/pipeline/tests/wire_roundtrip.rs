//! Property tests for the wire protocol: `TransformSpec` and `WorkerMessage`
//! encodings round-trip for arbitrary payloads, and non-finite quantities are
//! rejected at the boundary instead of poisoning the cache.

use proptest::prelude::*;
use smp_numeric::Complex64;
use smp_pipeline::wire::{
    decode_finite_f64, decode_worker_message, encode_f64, encode_finite_f64, encode_worker_message,
    read_frame, read_payload, write_frame, write_payload, Frame, WireError, FRAME_HEADER_BYTES,
};
use smp_pipeline::work::WorkItem;
use smp_pipeline::worker::{WorkItemOutcome, WorkerMessage};
use smp_pipeline::{DistSpec, ModelSpec, TargetSpec, TransformSpec};

/// Builds a printable-but-awkward string (spaces, escapes, UTF-8) from raw
/// bytes — the vendored proptest has no string strategy, so payload strings
/// are derived from byte vectors.
fn string_from(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// A place name restricted to identifier characters: predicate round-trips go
/// through the `PLACE OP N` source form, which (like DNAmaca itself) cannot
/// represent operator characters inside a place name.
fn place_from(bytes: &[u8]) -> String {
    let mut place: String = bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect();
    if place.is_empty() {
        place.push('p');
    }
    place
}

const OPS: [smp_pipeline::CompareOp; 6] = [
    smp_pipeline::CompareOp::Ge,
    smp_pipeline::CompareOp::Le,
    smp_pipeline::CompareOp::Gt,
    smp_pipeline::CompareOp::Lt,
    smp_pipeline::CompareOp::Eq,
    smp_pipeline::CompareOp::Ne,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn worker_messages_round_trip(
        worker in 0usize..1024,
        busy in 0u64..u64::MAX,
        raw in collection::vec(
            (0usize..16, 0usize..100_000, -1e300f64..1e300, -1e300f64..1e300,
             -1e12f64..1e12, 0u8..3),
            0..24),
        message_bytes in collection::vec(0u8..255, 0..32))
    {
        let results: Vec<WorkItemOutcome> = raw
            .iter()
            .enumerate()
            .map(|(k, &(measure, index, re, im, value, tag))| WorkItemOutcome {
                item: WorkItem {
                    measure,
                    index,
                    s: Complex64::new(re, im),
                },
                outcome: match tag {
                    0 => Ok(Complex64::new(value, -value / 3.0)),
                    1 => Ok(Complex64::new(0.0, value)),
                    _ => Err(format!("case {k}: {}", string_from(&message_bytes))),
                },
            })
            .collect();
        let message = WorkerMessage { worker, results };
        let payload = encode_worker_message(&message, busy).unwrap();
        let (decoded, decoded_busy) = decode_worker_message(&payload).unwrap();
        // Bit-exact: every s-point and value survives, error text included.
        prop_assert_eq!(decoded, message);
        prop_assert_eq!(decoded_busy, busy);
    }

    #[test]
    fn non_finite_values_never_survive_as_numbers(
        re in -1e300f64..1e300,
        pick in 0u8..3)
    {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        // Quantity fields reject NaN/∞ at encode time…
        prop_assert!(matches!(
            encode_finite_f64(bad, "s"),
            Err(WireError::NonFinite { .. })
        ));
        // …and at decode time, even when the hex bit pattern itself is valid.
        prop_assert!(matches!(
            decode_finite_f64(&encode_f64(bad), "s"),
            Err(WireError::NonFinite { .. })
        ));
        // A poisoned success outcome is demoted to an error outcome on the
        // wire rather than entering the master's cache as a number.
        let outcome = WorkItemOutcome {
            item: WorkItem {
                measure: 0,
                index: 0,
                s: Complex64::new(re, 1.0),
            },
            outcome: Ok(Complex64::new(bad, 0.0)),
        };
        let message = WorkerMessage { worker: 0, results: vec![outcome] };
        let payload = encode_worker_message(&message, 0).unwrap();
        let (decoded, _) = decode_worker_message(&payload).unwrap();
        let text = decoded.results[0].outcome.clone().unwrap_err();
        prop_assert!(text.contains("non-finite"), "{}", text);
    }

    #[test]
    fn voting_and_analytic_specs_round_trip(
        (voters, polling, central) in (1u32..2000, 1u32..50, 1u32..50),
        place_bytes in collection::vec(0u8..255, 0..12),
        op_index in 0usize..6,
        count in 0u32..10_000,
        (rate, shape) in (1e-6f64..1e6, 0.1f64..50.0),
        phases in 1u32..64,
        wrap_in_cdf in 0u8..2)
    {
        let targets = TargetSpec {
            place: place_from(&place_bytes),
            op: OPS[op_index],
            count,
        };
        let model = ModelSpec::Voting { voters, polling, central };
        let specs = [
            TransformSpec::passage(model.clone(), targets.clone()),
            TransformSpec::transient(model, targets),
            TransformSpec::Analytic(DistSpec::Erlang { rate, phases }),
            TransformSpec::Analytic(DistSpec::Weibull { shape, scale: rate }),
        ];
        for spec in specs {
            let spec = if wrap_in_cdf == 1 {
                TransformSpec::CdfOf(Box::new(spec))
            } else {
                spec
            };
            let line = spec.encode().unwrap();
            prop_assert!(!line.contains('\n'));
            prop_assert_eq!(TransformSpec::decode(&line).unwrap(), spec);
        }
    }

    #[test]
    fn arbitrary_dnamaca_sources_round_trip(
        source_bytes in collection::vec(0u8..255, 0..200),
        place_bytes in collection::vec(0u8..255, 1..8))
    {
        // The model source is shipped verbatim — whitespace, escapes and
        // multi-byte UTF-8 included.
        let source = string_from(&source_bytes);
        let spec = TransformSpec::transient(
            ModelSpec::Dnamaca(source.clone()),
            TargetSpec {
                place: place_from(&place_bytes),
                op: smp_pipeline::CompareOp::Ge,
                count: 1,
            },
        );
        let decoded = TransformSpec::decode(&spec.encode().unwrap()).unwrap();
        prop_assert_eq!(&decoded, &spec);
        match decoded.model().unwrap() {
            ModelSpec::Dnamaca(decoded_source) => prop_assert_eq!(decoded_source, &source),
            other => panic!("expected a DNAmaca model, got {other:?}"),
        }
    }

    #[test]
    fn checksummed_payloads_round_trip(payload_bytes in collection::vec(0u8..255, 0..4096)) {
        // Arbitrary UTF-8 text survives the checksummed length-prefixed
        // framing byte for byte, and both directions agree on the wire size.
        let payload = string_from(&payload_bytes);
        let mut wire = Vec::new();
        let written = write_payload(&mut wire, &payload).unwrap();
        prop_assert_eq!(written, wire.len() as u64);
        prop_assert_eq!(written, FRAME_HEADER_BYTES + payload.len() as u64);
        let (text, taken) = read_payload(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(text, payload);
        prop_assert_eq!(taken, written);
    }

    #[test]
    fn random_byte_flips_in_a_payload_frame_never_decode(
        payload_bytes in collection::vec(0u8..255, 0..512),
        position in 0usize..1024,
        xor in 1u8..=255)
    {
        // A flipped byte anywhere in the frame — length prefix, checksum or
        // payload — must surface as a refusal, never as silently different
        // (or even silently identical) decoded text.
        let payload = string_from(&payload_bytes);
        let mut wire = Vec::new();
        write_payload(&mut wire, &payload).unwrap();
        let position = position % wire.len();
        wire[position] ^= xor;
        prop_assert!(
            read_payload(&mut wire.as_slice()).is_err(),
            "flip of byte {} (xor {:#04x}) in a {}-byte frame went unnoticed",
            position, xor, wire.len()
        );
    }

    #[test]
    fn random_byte_flips_in_a_worker_result_frame_never_decode(
        worker in 0usize..64,
        (measure, index) in (0usize..8, 0usize..1000),
        (re, im, value) in (-1e300f64..1e300, -1e300f64..1e300, -1e12f64..1e12),
        position in 0usize..4096,
        xor in 1u8..=255)
    {
        // The same property over a real protocol frame: a corrupted result
        // chunk is refused instead of feeding a wrong value into the
        // master's cache (where it would poison the checkpoint too).
        let message = WorkerMessage {
            worker,
            results: vec![WorkItemOutcome {
                item: WorkItem { measure, index, s: Complex64::new(re, im) },
                outcome: Ok(Complex64::new(value, -value / 7.0)),
            }],
        };
        let frame = Frame::Result {
            message,
            busy_nanos: 3,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let (decoded, _) = read_frame(&mut wire.as_slice()).unwrap();
        prop_assert_eq!(&decoded, &frame);
        let position = position % wire.len();
        wire[position] ^= xor;
        prop_assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn non_finite_distribution_parameters_are_rejected(pick in 0u8..3) {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        for spec in [
            TransformSpec::Analytic(DistSpec::Exponential { rate: bad }),
            TransformSpec::Analytic(DistSpec::Uniform { lower: 0.0, upper: bad }),
            TransformSpec::Analytic(DistSpec::Deterministic { value: bad }),
            TransformSpec::CdfOf(Box::new(TransformSpec::Analytic(DistSpec::Weibull {
                shape: bad,
                scale: 1.0,
            }))),
        ] {
            prop_assert!(matches!(spec.encode(), Err(WireError::NonFinite { .. })));
        }
    }
}

/// Exhaustive, not sampled: *every* single-bit flip at *every* byte position
/// of a representative frame is either detected by the checksum or refused by
/// a typed guard — there is no position/bit combination that decodes.
///
/// (Every per-byte FNV-1a step is a bijection of the running hash, so a flip
/// that leaves the frame length unchanged provably changes the checksum; a
/// flip in the length prefix changes how many bytes are read, which the
/// length-covering checksum, the size cap or the truncation guard catches.)
#[test]
fn every_single_bit_flip_in_a_frame_is_detected_or_refused() {
    let message = WorkerMessage {
        worker: 5,
        results: vec![
            WorkItemOutcome {
                item: WorkItem {
                    measure: 1,
                    index: 42,
                    s: Complex64::new(2.5, -1.25),
                },
                outcome: Ok(Complex64::new(0.125, 3.0)),
            },
            WorkItemOutcome {
                item: WorkItem {
                    measure: 0,
                    index: 7,
                    s: Complex64::new(-4.0, 0.5),
                },
                outcome: Err("worker overheated".to_string()),
            },
        ],
    };
    let frame = Frame::Result {
        message,
        busy_nanos: 123_456,
    };
    let mut wire = Vec::new();
    write_frame(&mut wire, &frame).unwrap();
    let (reread, _) = read_frame(&mut wire.as_slice()).unwrap();
    assert_eq!(reread, frame);

    for position in 0..wire.len() {
        for bit in 0..8u8 {
            let mut corrupted = wire.clone();
            corrupted[position] ^= 1 << bit;
            assert!(
                read_frame(&mut corrupted.as_slice()).is_err(),
                "bit {bit} of byte {position}/{} flipped without detection",
                wire.len()
            );
        }
    }
}
