//! Double-precision complex numbers.
//!
//! The Laplace-transform machinery of the suite works almost exclusively on the
//! complex plane: every Laplace–Stieltjes transform `r*_ij(s)` is sampled at complex
//! `s`-points dictated by the numerical inversion algorithm, and the iterative
//! passage-time algorithm performs sparse linear algebra over those samples.
//!
//! [`Complex64`] is a plain `#[repr(C)]` pair of `f64`s with value semantics and a
//! complete set of arithmetic operators (including mixed `f64` operands), the
//! elementary transcendental functions needed by the Euler and Laguerre inversion
//! algorithms (`exp`, `ln`, `sqrt`, `powi`, `powf`, `powc`), and polar helpers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` stored as two `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Complex64 { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness against overflow.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid intermediate overflow/underflow when the
    /// real and imaginary parts differ greatly in magnitude.
    #[inline]
    pub fn inv(self) -> Self {
        Complex64::ONE / self
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex64::new(self.norm().ln(), self.arg())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return Complex64::new(self.re.sqrt(), 0.0);
            }
            return Complex64::new(0.0, (-self.re).sqrt().copysign(1.0));
        }
        let r = self.norm();
        // Half-angle formulae, numerically stable for all quadrants.
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt() * self.im.signum();
        Complex64::new(re, im)
    }

    /// Integer power by repeated squaring; handles negative exponents via `inv`.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex64::ONE;
        let mut e = n as u32;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Real power `z^p` via the principal branch.
    pub fn powf(self, p: f64) -> Self {
        if self == Complex64::ZERO {
            if p == 0.0 {
                return Complex64::ONE;
            }
            return Complex64::ZERO;
        }
        (self.ln().scale(p)).exp()
    }

    /// Complex power `z^w` via the principal branch.
    pub fn powc(self, w: Complex64) -> Self {
        if self == Complex64::ZERO {
            if w == Complex64::ZERO {
                return Complex64::ONE;
            }
            return Complex64::ZERO;
        }
        (self.ln() * w).exp()
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Component-wise maximum absolute difference from another complex number;
    /// this is exactly the convergence measure of Eq. (11) in the paper.
    #[inline]
    pub fn max_component_diff(self, other: Complex64) -> f64 {
        (self.re - other.re).abs().max((self.im - other.im).abs())
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Self {
        Complex64::new(re, im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm: scale by the larger component to avoid overflow.
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                return Complex64::new(self.re / rhs.re, self.im / rhs.re);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Complex64 {
            #[inline]
            fn $method(&mut self, rhs: Complex64) {
                *self = *self $op rhs;
            }
        }
        impl $trait<f64> for Complex64 {
            #[inline]
            fn $method(&mut self, rhs: f64) {
                *self = *self $op Complex64::real(rhs);
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);

macro_rules! impl_mixed {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<f64> for Complex64 {
            type Output = Complex64;
            #[inline]
            fn $method(self, rhs: f64) -> Complex64 {
                self $op Complex64::real(rhs)
            }
        }
        impl $trait<Complex64> for f64 {
            type Output = Complex64;
            #[inline]
            fn $method(self, rhs: Complex64) -> Complex64 {
                Complex64::real(self) $op rhs
            }
        }
    };
}

impl_mixed!(Add, add, +);
impl_mixed!(Sub, sub, -);
impl_mixed!(Mul, mul, *);
impl_mixed!(Div, div, /);

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).norm() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        assert!(close(a / b, Complex64::new(-0.2, 0.4), 1e-14));
    }

    #[test]
    fn mixed_real_operands() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a + 1.0, Complex64::new(2.0, 2.0));
        assert_eq!(2.0 * a, Complex64::new(2.0, 4.0));
        assert_eq!(a - 1.0, Complex64::new(0.0, 2.0));
        assert!(close(1.0 / Complex64::I, -Complex64::I, 1e-15));
    }

    #[test]
    fn division_by_tiny_and_huge_components() {
        // Smith's algorithm should not overflow here.
        let a = Complex64::new(1e150, 1e150);
        let b = Complex64::new(1e150, 1e-150);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q * b, a, 1e135));
    }

    #[test]
    fn conj_norm_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((Complex64::I.arg() - PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn exp_and_ln_roundtrip() {
        let z = Complex64::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-14));
        // Euler's identity e^{iπ} = -1.
        assert!(close(
            Complex64::imag(PI).exp(),
            Complex64::real(-1.0),
            1e-14
        ));
    }

    #[test]
    fn sqrt_branches() {
        assert_eq!(Complex64::real(4.0).sqrt(), Complex64::real(2.0));
        let m = Complex64::real(-4.0).sqrt();
        assert!(close(m * m, Complex64::real(-4.0), 1e-12));
        let z = Complex64::new(-3.0, -4.0);
        let r = z.sqrt();
        assert!(close(r * r, z, 1e-12));
    }

    #[test]
    fn integer_powers() {
        let z = Complex64::new(1.0, 1.0);
        assert!(close(z.powi(2), Complex64::new(0.0, 2.0), 1e-14));
        assert!(close(z.powi(0), Complex64::ONE, 1e-15));
        assert!(close(z.powi(-1), z.inv(), 1e-15));
        assert!(close(z.powi(8), Complex64::real(16.0), 1e-12));
    }

    #[test]
    fn real_and_complex_powers() {
        let z = Complex64::new(2.0, 0.0);
        assert!(close(z.powf(0.5), Complex64::real(2f64.sqrt()), 1e-14));
        assert!(close(
            Complex64::real(std::f64::consts::E).powc(Complex64::imag(PI)),
            Complex64::real(-1.0),
            1e-13
        ));
        assert_eq!(Complex64::ZERO.powf(2.0), Complex64::ZERO);
        assert_eq!(Complex64::ZERO.powf(0.0), Complex64::ONE);
    }

    #[test]
    fn from_polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.norm() - 2.0).abs() < 1e-14);
        assert!((z.arg() - PI / 3.0).abs() < 1e-14);
    }

    #[test]
    fn sum_iterator() {
        let xs = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-3.0, 0.5),
        ];
        let s: Complex64 = xs.iter().sum();
        assert!(close(s, Complex64::new(0.0, 0.5), 1e-15));
    }

    #[test]
    fn max_component_diff_matches_eq11() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(1.0 + 1e-9, 2.0 - 3e-9);
        assert!((a.max_component_diff(b) - 3e-9).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.5, 2.0).to_string(), "1.5+2i");
        assert_eq!(Complex64::new(1.5, -2.0).to_string(), "1.5-2i");
    }

    #[test]
    fn nan_and_finite_predicates() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }
}
