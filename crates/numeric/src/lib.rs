//! # smp-numeric
//!
//! Numerical foundations for the semi-Markov passage-time analysis suite.
//!
//! This crate provides the low-level numerical building blocks used throughout the
//! workspace:
//!
//! * [`Complex64`] — a self-contained double-precision complex number type with the
//!   full arithmetic, exponential and polar tool-kit required for Laplace-transform
//!   manipulation.  The suite deliberately implements its own complex type instead of
//!   pulling in an external crate so that the numerical behaviour (and the dependency
//!   footprint) stays under our control.
//! * [`kahan`] — compensated (Kahan/Neumaier) summation for long alternating series
//!   such as the Euler-summation stage of numerical Laplace inversion.
//! * [`special`] — special functions: log-gamma, factorials, binomial coefficients and
//!   (generalised) Laguerre polynomials needed by the Laguerre inversion algorithm.
//! * [`stats`] — small statistics helpers (running moments, histogram bins, linear
//!   interpolation, trapezoidal integration) shared by the simulator and the
//!   experiment harnesses.

pub mod complex;
pub mod kahan;
pub mod special;
pub mod stats;

pub use complex::Complex64;
pub use kahan::{KahanComplex, KahanSum};

/// Default numerical tolerance used across the suite when comparing floating point
/// quantities produced by analytic manipulation (e.g. convergence of the iterative
/// passage-time sum, Eq. (11) of the paper).
pub const DEFAULT_EPSILON: f64 = 1e-8;

/// Returns `true` when two floating point numbers are equal to within `tol`,
/// using a mixed absolute/relative criterion that is robust for both tiny
/// densities (absolute) and large time values (relative).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Relative error `|a - b| / max(|b|, floor)`; used by the experiment harnesses when
/// recording paper-versus-measured discrepancies.
#[inline]
pub fn relative_error(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / b.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0e-12, 0.0, 1e-9));
        assert!(!approx_eq(1.0e-6, 0.0, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1_000_000.0, 1_000_000.5, 1e-6));
        assert!(!approx_eq(1_000_000.0, 1_000_100.0, 1e-6));
    }

    #[test]
    fn relative_error_uses_floor() {
        assert_eq!(relative_error(0.5, 0.0, 1.0), 0.5);
        assert!((relative_error(1.1, 1.0, 1e-12) - 0.1).abs() < 1e-12);
    }
}
