//! Small statistics and numerical-analysis helpers.
//!
//! These are shared by the discrete-event simulator (sample moments, confidence
//! intervals), the experiment harnesses (density/CDF post-processing) and the tests
//! (comparing analytic curves against simulated ones).

/// Running mean / variance accumulator using Welford's online algorithm.
///
/// Welford's recurrence is numerically stable for very long simulation runs where a
/// naive sum-of-squares accumulator would cancel catastrophically.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of an asymptotic normal confidence interval for the mean at
    /// roughly 95% coverage (z = 1.96).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Merges another accumulator into this one (parallel simulation workers each
    /// keep a private accumulator which the master merges at the end).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Linear interpolation of `y(x)` in a table of (x, y) samples sorted by `x`.
///
/// Values outside the table are clamped to the end-point values, which is the right
/// behaviour for CDF tables (0 before the first sample, 1 after the last).
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "mismatched table lengths");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing interval.
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    let w = (x - x0) / (x1 - x0);
    y0 + w * (y1 - y0)
}

/// Composite trapezoidal integration of samples `ys` taken at points `xs`.
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 1..xs.len() {
        acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    acc
}

/// Generates `n` equally spaced points covering `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Inverts a monotone CDF table: returns the smallest tabulated `x` at which the CDF
/// reaches probability `p`, interpolating linearly between samples.
///
/// This is how the suite extracts passage-time *quantiles* (e.g. the paper's
/// "P(system 5 processes 175 voters in under 440 s) = 0.9858" read the other way
/// round) from an inverted CDF curve.
pub fn quantile_from_cdf(ts: &[f64], cdf: &[f64], p: f64) -> Option<f64> {
    assert_eq!(ts.len(), cdf.len());
    if !(0.0..=1.0).contains(&p) || ts.is_empty() {
        return None;
    }
    if p <= cdf[0] {
        return Some(ts[0]);
    }
    for i in 1..ts.len() {
        if cdf[i] >= p {
            let (c0, c1) = (cdf[i - 1], cdf[i]);
            if (c1 - c0).abs() < f64::EPSILON {
                return Some(ts[i]);
            }
            let w = (p - c0) / (c1 - c0);
            return Some(ts[i - 1] + w * (ts[i] - ts[i - 1]));
        }
    }
    None
}

/// Maximum absolute difference between two equal-length sample vectors; used when
/// comparing analytic and simulated curves in the integration tests.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_merge_equivalent_to_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before_mean);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push(i as f64);
        }
        for i in 0..1000 {
            large.push((i % 10) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn lerp_table_interior_and_clamping() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert_eq!(lerp_table(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 3.0), 40.0);
        assert_eq!(lerp_table(&xs, &ys, 0.5), 5.0);
        assert_eq!(lerp_table(&xs, &ys, 1.5), 25.0);
        assert_eq!(lerp_table(&xs, &ys, 1.0), 10.0);
    }

    #[test]
    fn trapezoid_integrates_linear_exactly() {
        let xs = linspace(0.0, 2.0, 21);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        // ∫ (3x+1) dx over [0,2] = 6 + 2 = 8
        assert!((trapezoid(&xs, &ys) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_density_close_to_one() {
        // Exponential density integrates to ~1 over a long enough window.
        let xs = linspace(0.0, 40.0, 4001);
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * (-0.5 * x).exp()).collect();
        assert!((trapezoid(&xs, &ys) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(1.0, 3.0, 5);
        assert_eq!(v, vec![1.0, 1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn quantile_from_cdf_interpolates() {
        let ts = [0.0, 1.0, 2.0, 3.0];
        let cdf = [0.0, 0.5, 0.75, 1.0];
        assert_eq!(quantile_from_cdf(&ts, &cdf, 0.5), Some(1.0));
        assert_eq!(quantile_from_cdf(&ts, &cdf, 0.25), Some(0.5));
        assert_eq!(quantile_from_cdf(&ts, &cdf, 1.0), Some(3.0));
        assert_eq!(quantile_from_cdf(&ts, &cdf, 0.0), Some(0.0));
        assert_eq!(quantile_from_cdf(&ts, &cdf, 2.0), None);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
