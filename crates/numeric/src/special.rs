//! Special functions.
//!
//! The Laguerre inversion algorithm of Abate, Choudhury & Whitt expands the target
//! density in (generalised) Laguerre functions; the Euler algorithm needs binomial
//! coefficients for its terminating Euler-summation stage; the distribution library
//! needs `ln Γ` for Erlang/Weibull moments.  This module collects those functions with
//! implementations that are accurate over the parameter ranges the suite actually
//! uses (orders up to a few thousand).

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients); absolute error below `1e-13` over
/// the positive real axis, which is far more accuracy than the surrounding numerical
/// inversion can exploit.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function `Γ(x)` for moderate positive `x` (overflows above ~171).
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Exact factorial as `f64`; exact for `n ≤ 170`, `+inf` beyond.
pub fn factorial(n: u32) -> f64 {
    let mut acc = 1.0f64;
    for k in 2..=n as u64 {
        acc *= k as f64;
    }
    acc
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u32) -> f64 {
    if n < 2 {
        0.0
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Binomial coefficient `C(n, k)` as `f64`, computed multiplicatively so that values
/// up to the `f64` range are exact to machine precision.
pub fn binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Row `n` of Pascal's triangle: `[C(n,0), …, C(n,n)]`.
///
/// The Euler-summation stage of the Euler inversion algorithm averages the last
/// `m + 1` partial sums with binomial weights `C(m, k) 2^{-m}`; precomputing the row
/// once per inversion keeps that stage allocation-free per term.
pub fn binomial_row(n: u32) -> Vec<f64> {
    let mut row = Vec::with_capacity(n as usize + 1);
    let mut value = 1.0f64;
    row.push(value);
    for k in 0..n {
        value = value * (n - k) as f64 / (k + 1) as f64;
        row.push(value);
    }
    row
}

/// Evaluates the (standard) Laguerre polynomial `L_n(x)` by the three-term
/// recurrence `(k+1) L_{k+1} = (2k+1-x) L_k - k L_{k-1}`.
pub fn laguerre(n: u32, x: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let mut lm1 = 1.0; // L_0
    let mut l = 1.0 - x; // L_1
    for k in 1..n {
        let kf = k as f64;
        let next = ((2.0 * kf + 1.0 - x) * l - kf * lm1) / (kf + 1.0);
        lm1 = l;
        l = next;
    }
    l
}

/// Evaluates the Laguerre *function* `l_n(t) = e^{-t/2} L_n(t)` used as the expansion
/// basis by the Laguerre inversion method.
pub fn laguerre_function(n: u32, t: f64) -> f64 {
    (-t / 2.0).exp() * laguerre(n, t)
}

/// Evaluates all Laguerre functions `l_0(t) … l_n(t)` in one pass of the recurrence.
///
/// Returns a vector of length `n + 1`.  This is the hot path of Laguerre inversion
/// (one evaluation per output `t`-point), so a single sweep is preferred over
/// repeated calls to [`laguerre_function`].
pub fn laguerre_functions_upto(n: u32, t: f64) -> Vec<f64> {
    let scale = (-t / 2.0).exp();
    let mut out = Vec::with_capacity(n as usize + 1);
    let mut lm1 = 1.0;
    out.push(scale * lm1);
    if n == 0 {
        return out;
    }
    let mut l = 1.0 - t;
    out.push(scale * l);
    for k in 1..n {
        let kf = k as f64;
        let next = ((2.0 * kf + 1.0 - t) * l - kf * lm1) / (kf + 1.0);
        lm1 = l;
        l = next;
        out.push(scale * l);
    }
    out
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Used for Erlang cumulative distribution functions (the CDF of an Erlang-`n`
/// with rate `λ` is `P(n, λ t)`).  Series expansion for `x < a + 1`, continued
/// fraction otherwise (Numerical Recipes style).
pub fn regularised_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments P({a}, {x})");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u32..20 {
            let expect = ln_factorial(n - 1);
            assert!(
                (ln_gamma(n as f64) - expect).abs() < 1e-10,
                "ln_gamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!((gamma(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(10), 3_628_800.0);
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0u32..30 {
            for k in 0..=n {
                let c = binomial(n, k);
                assert_eq!(c, binomial(n, n - k));
                if k > 0 && n > 0 {
                    let pascal = binomial(n - 1, k - 1) + binomial(n - 1, k);
                    assert!((c - pascal).abs() < 1e-6 * c.max(1.0));
                }
            }
        }
        assert_eq!(binomial(5, 7), 0.0);
    }

    #[test]
    fn binomial_row_matches_binomial() {
        let row = binomial_row(12);
        assert_eq!(row.len(), 13);
        for (k, &v) in row.iter().enumerate() {
            assert!((v - binomial(12, k as u32)).abs() < 1e-9);
        }
        let total: f64 = row.iter().sum();
        assert!((total - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn laguerre_known_values() {
        // L_0 = 1, L_1 = 1 - x, L_2 = (x^2 - 4x + 2)/2
        assert_eq!(laguerre(0, 3.7), 1.0);
        assert!((laguerre(1, 3.7) - (1.0 - 3.7)).abs() < 1e-14);
        let x = 1.3;
        assert!((laguerre(2, x) - (x * x - 4.0 * x + 2.0) / 2.0).abs() < 1e-13);
        // L_n(0) = 1 for all n.
        for n in 0..50 {
            assert!((laguerre(n, 0.0) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn laguerre_functions_sweep_consistent() {
        let t = 2.4;
        let all = laguerre_functions_upto(25, t);
        assert_eq!(all.len(), 26);
        for (n, &v) in all.iter().enumerate() {
            assert!((v - laguerre_function(n as u32, t)).abs() < 1e-11);
        }
    }

    #[test]
    fn regularised_gamma_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((regularised_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P(2, x) = 1 - e^{-x}(1 + x)  (Erlang-2 CDF with rate 1)
        let x = 2.5f64;
        let expect = 1.0 - (-x).exp() * (1.0 + x);
        assert!((regularised_gamma_p(2.0, x) - expect).abs() < 1e-12);
        assert_eq!(regularised_gamma_p(3.0, 0.0), 0.0);
    }

    #[test]
    fn regularised_gamma_monotone_in_x() {
        let mut last = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let p = regularised_gamma_p(4.0, x);
            assert!(p >= last - 1e-14);
            assert!((0.0..=1.0 + 1e-12).contains(&p));
            last = p;
        }
    }
}
