//! Compensated summation.
//!
//! The Euler inversion algorithm sums a long, slowly converging alternating series of
//! transform samples; the iterative passage-time algorithm accumulates thousands of
//! sparse matrix-vector products.  Both benefit from compensated summation, which
//! bounds the rounding error independently of the number of terms.
//!
//! [`KahanSum`] implements Neumaier's improved variant of the classic Kahan algorithm
//! (it also handles the case where the next term is larger than the running sum);
//! [`KahanComplex`] applies it component-wise to [`Complex64`].

use crate::Complex64;

/// Neumaier compensated accumulator for `f64`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty accumulator.
    #[inline]
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Creates an accumulator primed with an initial value.
    #[inline]
    pub fn with_initial(value: f64) -> Self {
        KahanSum {
            sum: value,
            compensation: 0.0,
        }
    }

    /// Adds a term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value of the sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Sums an iterator of terms with compensation.
    pub fn sum_iter<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut acc = KahanSum::new();
        for x in iter {
            acc.add(x);
        }
        acc.value()
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = KahanSum::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

/// Compensated accumulator for [`Complex64`], applied component-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanComplex {
    re: KahanSum,
    im: KahanSum,
}

impl KahanComplex {
    /// Creates an empty accumulator.
    #[inline]
    pub fn new() -> Self {
        KahanComplex::default()
    }

    /// Adds a complex term.
    #[inline]
    pub fn add(&mut self, value: Complex64) {
        self.re.add(value.re);
        self.im.add(value.im);
    }

    /// Current compensated value.
    #[inline]
    pub fn value(&self) -> Complex64 {
        Complex64::new(self.re.value(), self.im.value())
    }

    /// Sums an iterator of complex terms with compensation.
    pub fn sum_iter<I: IntoIterator<Item = Complex64>>(iter: I) -> Complex64 {
        let mut acc = KahanComplex::new();
        for x in iter {
            acc.add(x);
        }
        acc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_pathological_series() {
        // 1 + 1e100 - 1e100 + small terms: naive summation loses the 1.
        let terms = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = terms.iter().sum();
        let kahan = KahanSum::sum_iter(terms.iter().copied());
        assert_eq!(naive, 0.0);
        assert_eq!(kahan, 2.0);
    }

    #[test]
    fn kahan_many_small_terms() {
        let n = 1_000_000;
        let kahan = KahanSum::sum_iter((0..n).map(|_| 0.1));
        assert!((kahan - 0.1 * n as f64).abs() < 1e-6);
    }

    #[test]
    fn with_initial_and_incremental() {
        let mut acc = KahanSum::with_initial(10.0);
        acc.add(1.0);
        acc.add(2.0);
        assert_eq!(acc.value(), 13.0);
    }

    #[test]
    fn from_iterator_impl() {
        let acc: KahanSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(acc.value(), 6.0);
    }

    #[test]
    fn complex_accumulator() {
        let terms = vec![
            Complex64::new(1.0, 1e100),
            Complex64::new(1e100, 1.0),
            Complex64::new(1.0, -1e100),
            Complex64::new(-1e100, 1.0),
        ];
        let s = KahanComplex::sum_iter(terms);
        assert_eq!(s, Complex64::new(2.0, 2.0));
    }

    #[test]
    fn alternating_series_pi() {
        // pi/4 = 1 - 1/3 + 1/5 - ... ; check compensated summation is at least as
        // accurate as the analytic tail bound.
        let n = 200_000usize;
        let val = KahanSum::sum_iter((0..n).map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign / (2 * k + 1) as f64
        }));
        let err = (4.0 * val - std::f64::consts::PI).abs();
        assert!(err < 2.0 / (2.0 * n as f64));
    }
}
