//! # smp-cli
//!
//! The `smpq` command line tool: drive the whole analysis tool chain — DNAmaca
//! model parsing, SM-SPN state-space generation, and the distributed batched
//! pipeline — the way a modeller drove the paper's original tool.
//!
//! ```text
//! smpq --model voting.mod --measure 'density:p2>=3' --measure 'cdf:p2>=3' \
//!      --t-start 2 --t-stop 60 --t-count 12 --workers 8 --chunk-size 16 \
//!      --checkpoint voting.ckpt
//! ```
//!
//! (The quotes matter: an unquoted `>=` is a shell redirection.)
//!
//! A model comes either from a file (`--model`) or from the built-in voting
//! system generator (`--voting CC,MM,NN` — the same extended-DNAmaca source the
//! `dnamaca_spec` example prints).  Each repeated `--measure KIND:PLACE OP N`
//! flag adds one measure to the batch: the predicate selects the target
//! markings by token count, `density`/`cdf` measure the first passage from the
//! initial marking into those targets, `transient` their time-dependent state
//! probability.  All measures share one time grid and are solved in a single
//! [`smp_pipeline::DistributedPipeline::run_batch`] call, so a `density` and a
//! `cdf` over the same predicate share every transform evaluation, and a
//! checkpoint file warms all of them across invocations.
//!
//! The binary in `src/main.rs` is a thin wrapper around [`parse_args`] and
//! [`run`], which are kept in this library so the whole flow is unit-testable.

use smp_core::transient::TransientSolver;
use smp_core::PassageTimeSolver;
use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;
use smp_pipeline::{
    run_tcp_worker, BatchJob, DistributedPipeline, MeasureKind, MeasureSpec, ModelSpec,
    PipelineOptions, TcpTransport, TcpWorkerOptions, TransformSpec,
};
use smp_smspn::StateSpace;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The target predicate type — the serializable [`smp_pipeline::TargetSpec`],
/// re-exported under the name this CLI has always used.
pub type Predicate = smp_pipeline::TargetSpec;
pub use smp_pipeline::{model_fingerprint, CompareOp};

/// Everything `smpq` needs for one invocation, parsed from the command line.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Where the model text comes from.
    pub model: ModelSource,
    /// The requested measures, in command-line order.
    pub measures: Vec<MeasureRequest>,
    /// Shared output time grid: first point.
    pub t_start: f64,
    /// Shared output time grid: last point.
    pub t_stop: f64,
    /// Shared output time grid: number of points.
    pub t_count: usize,
    /// Where the evaluations run: worker threads or TCP worker processes.
    pub workers: WorkerBackend,
    /// Work-queue chunk size; 0 lets the pipeline choose.
    pub chunk_size: usize,
    /// Optional checkpoint file shared across invocations.
    pub checkpoint: Option<PathBuf>,
    /// Inversion method driving the `s`-point plan.
    pub method: MethodChoice,
    /// Print the model source instead of solving.
    pub emit_model: bool,
}

/// Where the model specification text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// Read an extended-DNAmaca specification from a file.
    File(PathBuf),
    /// Generate the built-in voting model for `(voters, polling, central)`.
    Voting(u32, u32, u32),
}

/// Where the master farms its transform evaluations out to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerBackend {
    /// In-process worker threads (the paper's slave processors as threads).
    Threads(usize),
    /// One TCP worker process per listed rendezvous address: the master binds
    /// each address and waits for an `smpq worker --connect` to dial in.
    Tcp(Vec<String>),
}

/// The inversion algorithm selected with `--method`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Euler inversion (default; robust to discontinuities).
    Euler,
    /// Laguerre inversion (smooth targets, fixed `s`-point set).
    Laguerre,
}

impl MethodChoice {
    fn to_method(self) -> InversionMethod {
        match self {
            MethodChoice::Euler => InversionMethod::euler(),
            MethodChoice::Laguerre => InversionMethod::laguerre(),
        }
    }
}

/// One `--measure KIND:PLACE OP N` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureRequest {
    /// What to compute over the target set.
    pub kind: MeasureKind,
    /// The target-marking predicate.
    pub predicate: Predicate,
}

impl MeasureRequest {
    /// The measure's display name, e.g. `density:p2>=3`.
    pub fn name(&self) -> String {
        format!("{}:{}", self.kind.name(), self.predicate)
    }

    /// The cache/checkpoint transform key: `density` and `cdf` over the same
    /// predicate share the passage transform (and hence its evaluations);
    /// `transient` uses a different transform and gets its own key.
    ///
    /// `model_fingerprint` (a hash of the model source, see
    /// [`model_fingerprint`]) is baked into the key so that a `--checkpoint`
    /// file reused with a *different* model — or the same model after an edit —
    /// can never feed stale transform values into the analysis.
    pub fn transform_key(&self, model_fingerprint: &str) -> String {
        match self.kind {
            MeasureKind::Density | MeasureKind::Cdf => {
                TransformSpec::passage_key(model_fingerprint, &self.predicate)
            }
            MeasureKind::Transient => {
                TransformSpec::transient_key(model_fingerprint, &self.predicate)
            }
        }
    }
}

/// An `smpq` failure: bad flags, unreadable/invalid model, or analysis error.
#[derive(Debug)]
pub enum CliError {
    /// A command-line problem; print [`usage`] alongside it.
    Usage(String),
    /// The model could not be read, parsed or explored.
    Model(String),
    /// The analysis itself failed (solver or pipeline).
    Analysis(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Model(m) => write!(f, "model error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The `--help` text.
pub fn usage() -> &'static str {
    "smpq — distributed passage-time and transient analysis of semi-Markov models

USAGE:
    smpq (--model FILE | --voting CC,MM,NN) --measure KIND:PRED [options]
    smpq worker --connect HOST:PORT [--exit-after-chunks N]

MODEL:
    --model FILE        extended-DNAmaca model specification file
    --voting CC,MM,NN   built-in voting model: CC voters, MM polling units,
                        NN central voting units (the paper's case study)
    --emit-model        print the model source and exit

MEASURES (repeatable, at least one):
    --measure KIND:PRED
        KIND  density | cdf | transient
        PRED  a target predicate PLACE OP N, e.g. p2>=3
              (OP is one of >= <= > < == !=)
        density/cdf measure the first passage from the initial marking into
        the predicate's markings; transient their state probability at t.
        density and cdf over the same predicate share transform evaluations.

TIME GRID (shared by all measures):
    --t-start X         first output time (default 1)
    --t-stop X          last output time (default 10)
    --t-count N         number of output times (default 10, minimum 2)

PIPELINE:
    --workers N         worker threads (default 4)
    --workers tcp:ADDR[,ADDR...]
                        distribute over TCP worker *processes* instead: the
                        master binds each ADDR (one per worker) and waits for
                        an 'smpq worker --connect HOST:PORT' to dial in
    --chunk-size N      work items per dispatch chunk (default: automatic)
    --checkpoint PATH   append computed transform values to PATH and reuse
                        them on the next run (warm cache across invocations)
    --method NAME       euler (default) | laguerre
    --help              print this text

WORKER MODE (one per terminal/host):
    smpq worker --connect HOST:PORT
                        dial the master's rendezvous address, rebuild the
                        job's evaluators from its transform specs, answer
                        work chunks until the master says done
    --exit-after-chunks N
                        fault injection: drop the connection after N chunks"
}

fn parse_voting(value: &str) -> Result<ModelSource, CliError> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "--voting expects CC,MM,NN (got '{value}')"
        )));
    }
    let mut numbers = [0u32; 3];
    for (slot, part) in numbers.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("--voting component '{part}' is not a number")))?;
    }
    Ok(ModelSource::Voting(numbers[0], numbers[1], numbers[2]))
}

fn parse_predicate(text: &str) -> Result<Predicate, CliError> {
    Predicate::parse(text).map_err(CliError::Usage)
}

fn parse_measure(value: &str) -> Result<MeasureRequest, CliError> {
    let Some((kind_text, predicate_text)) = value.split_once(':') else {
        return Err(CliError::Usage(format!(
            "--measure expects KIND:PRED (got '{value}')"
        )));
    };
    let kind = match kind_text {
        "density" => MeasureKind::Density,
        "cdf" => MeasureKind::Cdf,
        "transient" => MeasureKind::Transient,
        other => {
            return Err(CliError::Usage(format!(
                "unknown measure kind '{other}' (expected density, cdf or transient)"
            )))
        }
    };
    Ok(MeasureRequest {
        kind,
        predicate: parse_predicate(predicate_text)?,
    })
}

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut model: Option<ModelSource> = None;
    let mut measures = Vec::new();
    let mut t_start = 1.0;
    let mut t_stop = 10.0;
    let mut t_count = 10usize;
    let mut workers = WorkerBackend::Threads(4);
    let mut chunk_size = 0usize;
    let mut checkpoint = None;
    let mut method = MethodChoice::Euler;
    let mut emit_model = false;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--model" => model = Some(ModelSource::File(PathBuf::from(value_of("--model")?))),
            "--voting" => model = Some(parse_voting(value_of("--voting")?)?),
            "--measure" => measures.push(parse_measure(value_of("--measure")?)?),
            "--t-start" => {
                t_start = value_of("--t-start")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-start expects a number".into()))?
            }
            "--t-stop" => {
                t_stop = value_of("--t-stop")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-stop expects a number".into()))?
            }
            "--t-count" => {
                t_count = value_of("--t-count")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-count expects an integer".into()))?
            }
            "--workers" => {
                let value = value_of("--workers")?;
                workers = if let Some(list) = value.strip_prefix("tcp:") {
                    let addrs: Vec<String> = list
                        .split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect();
                    if addrs.is_empty() {
                        return Err(CliError::Usage(
                            "--workers tcp: needs at least one ADDR".into(),
                        ));
                    }
                    WorkerBackend::Tcp(addrs)
                } else {
                    WorkerBackend::Threads(value.parse().map_err(|_| {
                        CliError::Usage("--workers expects an integer or tcp:ADDR[,ADDR...]".into())
                    })?)
                }
            }
            "--chunk-size" => {
                chunk_size = value_of("--chunk-size")?
                    .parse()
                    .map_err(|_| CliError::Usage("--chunk-size expects an integer".into()))?
            }
            "--checkpoint" => checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--method" => {
                method = match value_of("--method")?.as_str() {
                    "euler" => MethodChoice::Euler,
                    "laguerre" => MethodChoice::Laguerre,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown method '{other}' (expected euler or laguerre)"
                        )))
                    }
                }
            }
            "--emit-model" => emit_model = true,
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }

    let Some(model) = model else {
        return Err(CliError::Usage(
            "a model is required: --model FILE or --voting CC,MM,NN".into(),
        ));
    };
    if measures.is_empty() && !emit_model {
        return Err(CliError::Usage(
            "at least one --measure KIND:PRED is required".into(),
        ));
    }
    if !(t_start > 0.0 && t_stop >= t_start) || t_count < 2 {
        return Err(CliError::Usage(
            "the time grid needs 0 < --t-start <= --t-stop and --t-count >= 2".into(),
        ));
    }
    Ok(CliOptions {
        model,
        measures,
        t_start,
        t_stop,
        t_count,
        workers,
        chunk_size,
        checkpoint,
        method,
        emit_model,
    })
}

fn model_source_text(model: &ModelSource) -> Result<String, CliError> {
    match model {
        ModelSource::File(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Model(format!("cannot read {}: {e}", path.display()))),
        ModelSource::Voting(cc, mm, nn) => Ok(smp_voting::spec::dnamaca_source(
            smp_voting::VotingConfig::new(*cc, *mm, *nn),
        )),
    }
}

enum MeasureSolver<'a> {
    Passage(PassageTimeSolver<'a>),
    Transient(TransientSolver<'a>),
}

/// Runs one `smpq` invocation, writing the report to `out`.  Returns the
/// rendered report too (the binary prints it; tests inspect it).
///
/// With the default [`WorkerBackend::Threads`] backend the model is explored
/// in-process and the measures are closure-based; with
/// [`WorkerBackend::Tcp`] the measures are built from serializable
/// [`TransformSpec`]s, the master binds the rendezvous addresses, and the
/// state space is explored by the worker *processes* that dial in.  Both
/// backends write identical transform keys (model fingerprint included), so a
/// `--checkpoint` file warms runs across backends too.
pub fn run(options: &CliOptions) -> Result<String, CliError> {
    let mut out = String::new();
    let source = model_source_text(&options.model)?;
    if options.emit_model {
        out.push_str(&source);
        return Ok(out);
    }

    let ts = linspace(options.t_start, options.t_stop, options.t_count);
    let pipeline = DistributedPipeline::new(
        options.method.to_method(),
        PipelineOptions {
            workers: match &options.workers {
                WorkerBackend::Threads(n) => *n,
                WorkerBackend::Tcp(addrs) => addrs.len(),
            },
            checkpoint_path: options.checkpoint.clone(),
            chunk_size: options.chunk_size,
            ..Default::default()
        },
    );

    let result = match &options.workers {
        WorkerBackend::Threads(_) => run_in_process(&mut out, options, &source, &ts, &pipeline)?,
        WorkerBackend::Tcp(addrs) => {
            run_over_tcp(&mut out, options, &source, &ts, &pipeline, addrs)?
        }
    };

    // One combined table: a column per measure over the shared grid.
    let _ = writeln!(out);
    let mut header = format!("{:>10}", "t");
    for measure in &result.measures {
        let _ = write!(header, "  {:>18}", measure.name);
    }
    let _ = writeln!(out, "{header}");
    for (row, &t) in ts.iter().enumerate() {
        let mut line = format!("{t:>10.3}");
        for measure in &result.measures {
            let _ = write!(line, "  {:>18.6}", measure.values[row]);
        }
        let _ = writeln!(out, "{line}");
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "pipeline: {} worker(s) [{}], chunk size {}, {} chunk message(s), \
{} wire message(s), {} wire byte(s), {:.3}s elapsed",
        result.worker_stats.len(),
        result.backend,
        result.chunk_size,
        result.chunks_dispatched,
        result.messages,
        result.bytes_on_wire,
        result.elapsed.as_secs_f64()
    );
    if result.disconnects > 0 {
        let _ = writeln!(
            out,
            "warning: {} worker(s) disconnected mid-run; their chunks were requeued",
            result.disconnects
        );
    }
    let _ = writeln!(
        out,
        "evaluations: {} new, {} from checkpoint/cache, {} shared between measures",
        result.evaluations, result.cache_hits, result.shared_hits
    );
    for measure in &result.measures {
        let _ = writeln!(
            out,
            "  {:<24} {:>6} evaluated  {:>6} cached  {:>6} shared",
            measure.name, measure.evaluations, measure.cache_hits, measure.shared_hits
        );
    }
    Ok(out)
}

/// The in-process path: explore the state space locally, build (and share)
/// solvers, run closure-based measures over the thread backend.
fn run_in_process(
    out: &mut String,
    options: &CliOptions,
    source: &str,
    ts: &[f64],
    pipeline: &DistributedPipeline,
) -> Result<smp_pipeline::BatchResult, CliError> {
    let net = smp_dnamaca::parse_model(source).map_err(|e| CliError::Model(e.to_string()))?;
    let space = StateSpace::explore(&net).map_err(|e| CliError::Model(e.to_string()))?;
    let smp = space.smp();
    let initial = space.initial_state();
    let _ = writeln!(
        out,
        "model: {} places, {} transitions, {} reachable markings",
        net.num_places(),
        net.num_transitions(),
        space.num_states()
    );

    // Resolve each measure's target set and build its solver.  Measures that
    // share a solver class and predicate (the advertised density+cdf pairing)
    // also share one solver: building a second identical solver would allocate
    // state-space-sized matrices that union planning never evaluates.
    let mut solvers: Vec<MeasureSolver<'_>> = Vec::new();
    let mut solver_index: Vec<usize> = Vec::with_capacity(options.measures.len());
    let mut solver_keys: Vec<(bool, String)> = Vec::new();
    for request in &options.measures {
        let is_transient = request.kind == MeasureKind::Transient;
        let key = (is_transient, request.predicate.to_string());
        if let Some(found) = solver_keys.iter().position(|k| *k == key) {
            let _ = writeln!(out, "measure {}: shares targets above", request.name());
            solver_index.push(found);
            continue;
        }
        let targets = request
            .predicate
            .resolve(&net, &space)
            .map_err(|e| match e {
                smp_pipeline::TargetResolveError::UnknownPlace { .. } => {
                    CliError::Model(e.to_string())
                }
                smp_pipeline::TargetResolveError::NoMatchingMarking { .. } => {
                    CliError::Analysis(e.to_string())
                }
            })?;
        let _ = writeln!(
            out,
            "measure {}: {} target markings",
            request.name(),
            targets.len()
        );
        let solver = if is_transient {
            MeasureSolver::Transient(
                TransientSolver::new(smp, initial, &targets)
                    .map_err(|e| CliError::Analysis(e.to_string()))?,
            )
        } else {
            MeasureSolver::Passage(
                PassageTimeSolver::new(smp, &[initial], &targets)
                    .map_err(|e| CliError::Analysis(e.to_string()))?,
            )
        };
        solver_index.push(solvers.len());
        solver_keys.push(key);
        solvers.push(solver);
    }

    // Assemble the batch: every measure shares the CLI's time grid.  Keys are
    // model-fingerprinted so a reused checkpoint file never leaks values
    // computed for a different (or since-edited) model.
    let fingerprint = model_fingerprint(source);
    let mut job = BatchJob::new();
    for (request, &si) in options.measures.iter().zip(&solver_index) {
        let spec = match &solvers[si] {
            MeasureSolver::Passage(solver) => {
                MeasureSpec::new(request.name(), request.kind, ts, solver.transform_fn())
            }
            MeasureSolver::Transient(solver) => {
                MeasureSpec::transient(request.name(), ts, solver.transform_fn())
            }
        };
        job.push(spec.with_transform_key(request.transform_key(&fingerprint)));
    }

    pipeline
        .run_batch(job)
        .map_err(|e| CliError::Analysis(e.to_string()))
}

/// The TCP path: ship serializable specs, let worker processes explore the
/// state space.  Place names are still validated locally (parsing the model
/// is cheap; exploring it is the workers' job).
fn run_over_tcp(
    out: &mut String,
    options: &CliOptions,
    source: &str,
    ts: &[f64],
    pipeline: &DistributedPipeline,
    addrs: &[String],
) -> Result<smp_pipeline::BatchResult, CliError> {
    let net = smp_dnamaca::parse_model(source).map_err(|e| CliError::Model(e.to_string()))?;
    for request in &options.measures {
        if net.place_index(&request.predicate.place).is_none() {
            return Err(CliError::Model(format!(
                "place '{}' does not exist in the model",
                request.predicate.place
            )));
        }
    }
    let _ = writeln!(
        out,
        "model: {} places, {} transitions (state space explored by the workers)",
        net.num_places(),
        net.num_transitions(),
    );

    let model_spec = match &options.model {
        ModelSource::Voting(cc, mm, nn) => ModelSpec::Voting {
            voters: *cc,
            polling: *mm,
            central: *nn,
        },
        ModelSource::File(_) => ModelSpec::Dnamaca(source.to_string()),
    };
    let mut job = BatchJob::new();
    for request in &options.measures {
        let transform = match request.kind {
            // Density and CDF measures both evaluate the raw passage
            // transform; the /s division happens at inversion, so the pair
            // shares a transform key (and hence every worker evaluation).
            MeasureKind::Density | MeasureKind::Cdf => {
                TransformSpec::passage(model_spec.clone(), request.predicate.clone())
            }
            MeasureKind::Transient => {
                TransformSpec::transient(model_spec.clone(), request.predicate.clone())
            }
        };
        job.push(MeasureSpec::from_spec(
            request.name(),
            request.kind,
            ts,
            transform,
        ));
    }

    let transport = TcpTransport::bind(addrs)
        .map_err(|e| CliError::Analysis(format!("cannot bind tcp rendezvous address: {e}")))?;
    for (worker, addr) in transport.local_addrs().iter().enumerate() {
        let hint = format!(
            "tcp master: worker {worker} rendezvous at {addr} \
(start it with: smpq worker --connect {addr})"
        );
        // The run blocks in accept until the workers dial in, and the report
        // string is only printed afterwards — the operator needs the
        // rendezvous address *now*, so the hint also goes to stderr eagerly.
        eprintln!("{hint}");
        let _ = writeln!(out, "{hint}");
    }
    let result = pipeline
        .execute(job, &transport)
        .map_err(|e| CliError::Analysis(e.to_string()))?;
    if result.chunks_dispatched == 0 {
        // Fully warmed from the checkpoint: the pipeline never opened the
        // rendezvous, so the hints above are moot.  Say so eagerly — a worker
        // started per those hints will retry against a closed port and exit.
        let note = "tcp master: run satisfied entirely from the checkpoint; \
no worker connections were used (any started workers will retry briefly and exit)";
        eprintln!("{note}");
        let _ = writeln!(out, "{note}");
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

/// Options for the `smpq worker` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCliOptions {
    /// The master's rendezvous address (`HOST:PORT`).
    pub connect: String,
    /// Fault injection: drop the connection after this many chunks.
    pub exit_after_chunks: Option<usize>,
}

/// Parses the arguments after `smpq worker`.
pub fn parse_worker_args(args: &[String]) -> Result<WorkerCliOptions, CliError> {
    let mut connect: Option<String> = None;
    let mut exit_after_chunks = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value_of("--connect")?.clone()),
            "--exit-after-chunks" => {
                exit_after_chunks =
                    Some(value_of("--exit-after-chunks")?.parse().map_err(|_| {
                        CliError::Usage("--exit-after-chunks expects an integer".into())
                    })?)
            }
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown worker flag '{other}'"))),
        }
    }
    let Some(connect) = connect else {
        return Err(CliError::Usage(
            "smpq worker needs --connect HOST:PORT (the master's rendezvous address)".into(),
        ));
    };
    Ok(WorkerCliOptions {
        connect,
        exit_after_chunks,
    })
}

/// Runs one worker process: dial the master, rebuild the evaluators from the
/// job's transform specs, answer chunks until released.  Returns the summary
/// line the binary prints.
pub fn run_worker(options: &WorkerCliOptions) -> Result<String, CliError> {
    let worker_options = TcpWorkerOptions {
        exit_after_chunks: options.exit_after_chunks,
        ..Default::default()
    };
    let summary = run_tcp_worker(&options.connect, &worker_options).map_err(CliError::Analysis)?;
    Ok(format!(
        "worker {} done: {} chunk(s), {} evaluation(s){}\n",
        summary.worker_id,
        summary.chunks,
        summary.evaluated,
        if summary.dropped_early {
            " (connection dropped by fault injection)"
        } else {
            ""
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_flag_set() {
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "density:p2>=3",
            "--measure",
            "cdf:p2>=3",
            "--measure",
            "transient:p6==0",
            "--t-start",
            "2",
            "--t-stop",
            "60",
            "--t-count",
            "12",
            "--workers",
            "8",
            "--chunk-size",
            "16",
            "--checkpoint",
            "/tmp/x.ckpt",
            "--method",
            "laguerre",
        ]))
        .unwrap();
        assert_eq!(options.model, ModelSource::Voting(5, 2, 2));
        assert_eq!(options.measures.len(), 3);
        assert_eq!(options.measures[0].kind, MeasureKind::Density);
        assert_eq!(options.measures[0].name(), "density:p2>=3");
        assert_eq!(options.measures[2].predicate.op, CompareOp::Eq);
        assert_eq!(options.t_count, 12);
        assert_eq!(options.workers, WorkerBackend::Threads(8));
        assert_eq!(options.chunk_size, 16);
        assert_eq!(options.method, MethodChoice::Laguerre);
        assert_eq!(options.checkpoint, Some(PathBuf::from("/tmp/x.ckpt")));
        // density and cdf over one predicate share a transform key…
        assert_eq!(
            options.measures[0].transform_key("fp"),
            options.measures[1].transform_key("fp")
        );
        // …but the transient lives under its own…
        assert_ne!(
            options.measures[0].transform_key("fp"),
            options.measures[2].transform_key("fp")
        );
        // …and the model fingerprint separates checkpoints between models.
        assert_ne!(
            options.measures[0].transform_key("fp"),
            options.measures[0].transform_key("other-model")
        );
    }

    #[test]
    fn parse_tcp_backend_and_worker_flags() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "density:p2>=2",
            "--workers",
            "tcp:127.0.0.1:9001, 127.0.0.1:9002",
        ]))
        .unwrap();
        assert_eq!(
            options.workers,
            WorkerBackend::Tcp(vec![
                "127.0.0.1:9001".to_string(),
                "127.0.0.1:9002".to_string()
            ])
        );

        // Worker subcommand flags.
        let worker = parse_worker_args(&args(&["--connect", "10.0.0.5:9000"])).unwrap();
        assert_eq!(worker.connect, "10.0.0.5:9000");
        assert_eq!(worker.exit_after_chunks, None);
        let worker = parse_worker_args(&args(&[
            "--connect",
            "localhost:1234",
            "--exit-after-chunks",
            "3",
        ]))
        .unwrap();
        assert_eq!(worker.exit_after_chunks, Some(3));

        // Bad input.
        for bad in [
            vec![
                "--voting",
                "3,1,1",
                "--measure",
                "density:p2>=2",
                "--workers",
                "tcp:",
            ],
            vec![
                "--voting",
                "3,1,1",
                "--measure",
                "density:p2>=2",
                "--workers",
                "seven",
            ],
        ] {
            assert!(matches!(parse_args(&args(&bad)), Err(CliError::Usage(_))));
        }
        assert!(matches!(
            parse_worker_args(&args(&[])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_worker_args(&args(&["--connect", "x:1", "--frob"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn tcp_and_thread_backends_write_identical_transform_keys() {
        // The spec-based (TCP) path defaults its transform key to
        // TransformSpec::transform_key(); the closure-based path uses
        // MeasureRequest::transform_key().  They must agree, or a checkpoint
        // warmed by one backend would miss (or worse) under the other.
        let request = MeasureRequest {
            kind: MeasureKind::Density,
            predicate: parse_predicate("p2>=2").unwrap(),
        };
        let source = smp_voting::spec::dnamaca_source(smp_voting::VotingConfig::new(3, 1, 1));
        let fingerprint = model_fingerprint(&source);
        let spec = TransformSpec::passage(
            ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            request.predicate.clone(),
        );
        assert_eq!(spec.transform_key(), request.transform_key(&fingerprint));

        let transient_request = MeasureRequest {
            kind: MeasureKind::Transient,
            predicate: parse_predicate("p2>=2").unwrap(),
        };
        let transient_spec = TransformSpec::transient(
            ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            transient_request.predicate.clone(),
        );
        assert_eq!(
            transient_spec.transform_key(),
            transient_request.transform_key(&fingerprint)
        );
    }

    #[test]
    fn model_fingerprint_distinguishes_models() {
        let a = model_fingerprint("\\place{p}{1}");
        let b = model_fingerprint("\\place{p}{2}");
        assert_ne!(a, b);
        assert_eq!(a, model_fingerprint("\\place{p}{1}"), "deterministic");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn checkpoint_is_not_shared_across_different_models() {
        // Same measure and grid, two different voting configurations, one
        // checkpoint file: the second run must not reuse the first model's
        // transform values.
        let mut checkpoint = std::env::temp_dir();
        checkpoint.push(format!("smpq-model-key-test-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&checkpoint);
        let run_with = |voting: &str| {
            let mut options = parse_args(&args(&[
                "--voting",
                voting,
                "--measure",
                "transient:p2>=2",
                "--t-count",
                "2",
                "--t-stop",
                "4",
            ]))
            .unwrap();
            options.checkpoint = Some(checkpoint.clone());
            run(&options).unwrap()
        };
        let first = run_with("3,1,1");
        assert!(first.contains(" 0 from checkpoint/cache"), "{first}");
        let second = run_with("4,1,1");
        // A different model: everything is evaluated fresh, nothing restored.
        assert!(second.contains(" 0 from checkpoint/cache"), "{second}");
        // The same model again: fully warm.
        let third = run_with("4,1,1");
        assert!(third.contains("evaluations: 0 new"), "{third}");
        std::fs::remove_file(&checkpoint).unwrap();
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--measure", "density:p2>=3"],                    // no model
            vec!["--voting", "5,2"],                               // malformed triple
            vec!["--voting", "5,2,2"],                             // no measure
            vec!["--voting", "5,2,2", "--measure", "p2>=3"],       // missing kind
            vec!["--voting", "5,2,2", "--measure", "mean:p2>=3"],  // unknown kind
            vec!["--voting", "5,2,2", "--measure", "density:p2"],  // no operator
            vec!["--voting", "5,2,2", "--measure", "density:>=3"], // no place
            vec!["--voting", "5,2,2", "--measure", "density:p2>=x"], // bad count
            vec!["--voting", "5,2,2", "--method", "talbot"],       // unknown method
            // a 1-point grid would panic linspace; rejected up front
            vec![
                "--voting",
                "5,2,2",
                "--measure",
                "cdf:p2>=1",
                "--t-count",
                "1",
            ],
            vec!["--frobnicate"], // unknown flag
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(CliError::Usage(_))),
                "expected a usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn predicates_evaluate_correctly() {
        let cases = [
            ("p>=3", 3, true),
            ("p>=3", 2, false),
            ("p<=1", 1, true),
            ("p>0", 0, false),
            ("p<5", 4, true),
            ("p==2", 2, true),
            ("p!=2", 2, false),
        ];
        for (text, tokens, expect) in cases {
            let predicate = parse_predicate(text).unwrap();
            assert_eq!(predicate.matches(tokens), expect, "{text} with {tokens}");
        }
    }

    #[test]
    fn emit_model_prints_the_dnamaca_source() {
        let options = parse_args(&args(&["--voting", "3,1,1", "--emit-model"])).unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("\\place"), "expected model text: {report}");
        assert!(report.contains("\\transition"));
    }

    #[test]
    fn unknown_place_is_a_model_error() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "transient:nosuch>=1",
            "--t-count",
            "2",
        ]))
        .unwrap();
        match run(&options) {
            Err(CliError::Model(message)) => assert!(message.contains("nosuch")),
            other => panic!("expected a model error, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_voting_model_via_run() {
        // The same model as examples/dnamaca_spec.rs: voting system (5, 2, 2),
        // transient probability that at least 3 voters have voted.
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "transient:p2>=3",
            "--t-start",
            "2",
            "--t-stop",
            "20",
            "--t-count",
            "4",
            "--workers",
            "4",
            "--chunk-size",
            "8",
        ]))
        .unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("reachable markings"), "{report}");
        assert!(report.contains("transient:p2>=3"), "{report}");
        assert!(report.contains("evaluations:"), "{report}");
        // The probability column is populated with values in [0, 1].
        let last_row = report
            .lines()
            .find(|line| line.trim_start().starts_with("20.000"))
            .expect("a t = 20 row");
        let p: f64 = last_row.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&p), "P = {p}");
    }
}
