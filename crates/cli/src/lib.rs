//! # smp-cli
//!
//! The `smpq` command line tool: drive the whole analysis tool chain — DNAmaca
//! model parsing, SM-SPN state-space generation, and the distributed batched
//! pipeline — the way a modeller drove the paper's original tool.
//!
//! ```text
//! smpq --model voting.mod --measure 'density:p2>=3' --measure 'cdf:p2>=3' \
//!      --t-start 2 --t-stop 60 --t-count 12 --workers 8 --chunk-size 16 \
//!      --checkpoint voting.ckpt
//! ```
//!
//! (The quotes matter: an unquoted `>=` is a shell redirection.)
//!
//! A model comes either from a file (`--model`) or from the built-in voting
//! system generator (`--voting CC,MM,NN` — the same extended-DNAmaca source the
//! `dnamaca_spec` example prints).  Each repeated `--measure KIND:PLACE OP N`
//! flag adds one measure to the batch: the predicate selects the target
//! markings by token count, `density`/`cdf` measure the first passage from the
//! initial marking into those targets, `transient` their time-dependent state
//! probability.  All measures share one time grid and are solved in a single
//! [`smp_pipeline::DistributedPipeline::run_batch`] call, so a `density` and a
//! `cdf` over the same predicate share every transform evaluation, and a
//! checkpoint file warms all of them across invocations.
//!
//! The binary in `src/main.rs` is a thin wrapper around [`parse_args`] and
//! [`run`], which are kept in this library so the whole flow is unit-testable.

use smp_core::transient::TransientSolver;
use smp_core::PassageTimeSolver;
use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;
use smp_pipeline::{BatchJob, DistributedPipeline, MeasureKind, MeasureSpec, PipelineOptions};
use smp_smspn::{Marking, StateSpace};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Everything `smpq` needs for one invocation, parsed from the command line.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Where the model text comes from.
    pub model: ModelSource,
    /// The requested measures, in command-line order.
    pub measures: Vec<MeasureRequest>,
    /// Shared output time grid: first point.
    pub t_start: f64,
    /// Shared output time grid: last point.
    pub t_stop: f64,
    /// Shared output time grid: number of points.
    pub t_count: usize,
    /// Worker thread count (the paper's slave processors).
    pub workers: usize,
    /// Work-queue chunk size; 0 lets the pipeline choose.
    pub chunk_size: usize,
    /// Optional checkpoint file shared across invocations.
    pub checkpoint: Option<PathBuf>,
    /// Inversion method driving the `s`-point plan.
    pub method: MethodChoice,
    /// Print the model source instead of solving.
    pub emit_model: bool,
}

/// Where the model specification text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// Read an extended-DNAmaca specification from a file.
    File(PathBuf),
    /// Generate the built-in voting model for `(voters, polling, central)`.
    Voting(u32, u32, u32),
}

/// The inversion algorithm selected with `--method`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Euler inversion (default; robust to discontinuities).
    Euler,
    /// Laguerre inversion (smooth targets, fixed `s`-point set).
    Laguerre,
}

impl MethodChoice {
    fn to_method(self) -> InversionMethod {
        match self {
            MethodChoice::Euler => InversionMethod::euler(),
            MethodChoice::Laguerre => InversionMethod::laguerre(),
        }
    }
}

/// One `--measure KIND:PLACE OP N` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureRequest {
    /// What to compute over the target set.
    pub kind: MeasureKind,
    /// The target-marking predicate.
    pub predicate: Predicate,
}

impl MeasureRequest {
    /// The measure's display name, e.g. `density:p2>=3`.
    pub fn name(&self) -> String {
        format!("{}:{}", self.kind.name(), self.predicate)
    }

    /// The cache/checkpoint transform key: `density` and `cdf` over the same
    /// predicate share the passage transform (and hence its evaluations);
    /// `transient` uses a different transform and gets its own key.
    ///
    /// `model_fingerprint` (a hash of the model source, see
    /// [`model_fingerprint`]) is baked into the key so that a `--checkpoint`
    /// file reused with a *different* model — or the same model after an edit —
    /// can never feed stale transform values into the analysis.
    pub fn transform_key(&self, model_fingerprint: &str) -> String {
        match self.kind {
            MeasureKind::Density | MeasureKind::Cdf => {
                format!("m{model_fingerprint}:passage:{}", self.predicate)
            }
            MeasureKind::Transient => {
                format!("m{model_fingerprint}:transient:{}", self.predicate)
            }
        }
    }
}

/// A 64-bit FNV-1a fingerprint of the model source text, rendered as hex.
/// Baked into every transform key so checkpoints are model-specific.
pub fn model_fingerprint(source: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in source.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// A token-count predicate `PLACE OP N` selecting target markings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// The place whose marking is compared.
    pub place: String,
    /// The comparison operator.
    pub op: CompareOp,
    /// The right-hand token count.
    pub count: u32,
}

impl Predicate {
    /// True when `tokens` satisfies the predicate.
    pub fn matches(&self, tokens: u32) -> bool {
        match self.op {
            CompareOp::Ge => tokens >= self.count,
            CompareOp::Le => tokens <= self.count,
            CompareOp::Gt => tokens > self.count,
            CompareOp::Lt => tokens < self.count,
            CompareOp::Eq => tokens == self.count,
            CompareOp::Ne => tokens != self.count,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}{}", self.place, self.op.symbol(), self.count)
    }
}

/// Comparison operators accepted in a measure predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CompareOp {
    Ge,
    Le,
    Gt,
    Lt,
    Eq,
    Ne,
}

impl CompareOp {
    fn symbol(self) -> &'static str {
        match self {
            CompareOp::Ge => ">=",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Lt => "<",
            CompareOp::Eq => "==",
            CompareOp::Ne => "!=",
        }
    }
}

/// An `smpq` failure: bad flags, unreadable/invalid model, or analysis error.
#[derive(Debug)]
pub enum CliError {
    /// A command-line problem; print [`usage`] alongside it.
    Usage(String),
    /// The model could not be read, parsed or explored.
    Model(String),
    /// The analysis itself failed (solver or pipeline).
    Analysis(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Model(m) => write!(f, "model error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The `--help` text.
pub fn usage() -> &'static str {
    "smpq — distributed passage-time and transient analysis of semi-Markov models

USAGE:
    smpq (--model FILE | --voting CC,MM,NN) --measure KIND:PRED [options]

MODEL:
    --model FILE        extended-DNAmaca model specification file
    --voting CC,MM,NN   built-in voting model: CC voters, MM polling units,
                        NN central voting units (the paper's case study)
    --emit-model        print the model source and exit

MEASURES (repeatable, at least one):
    --measure KIND:PRED
        KIND  density | cdf | transient
        PRED  a target predicate PLACE OP N, e.g. p2>=3
              (OP is one of >= <= > < == !=)
        density/cdf measure the first passage from the initial marking into
        the predicate's markings; transient their state probability at t.
        density and cdf over the same predicate share transform evaluations.

TIME GRID (shared by all measures):
    --t-start X         first output time (default 1)
    --t-stop X          last output time (default 10)
    --t-count N         number of output times (default 10, minimum 2)

PIPELINE:
    --workers N         worker threads (default 4)
    --chunk-size N      work items per dispatch chunk (default: automatic)
    --checkpoint PATH   append computed transform values to PATH and reuse
                        them on the next run (warm cache across invocations)
    --method NAME       euler (default) | laguerre
    --help              print this text"
}

fn parse_voting(value: &str) -> Result<ModelSource, CliError> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "--voting expects CC,MM,NN (got '{value}')"
        )));
    }
    let mut numbers = [0u32; 3];
    for (slot, part) in numbers.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("--voting component '{part}' is not a number")))?;
    }
    Ok(ModelSource::Voting(numbers[0], numbers[1], numbers[2]))
}

fn parse_predicate(text: &str) -> Result<Predicate, CliError> {
    // Two-character operators first so `p>=3` is not read as `p > =3`.
    const OPS: [(&str, CompareOp); 6] = [
        (">=", CompareOp::Ge),
        ("<=", CompareOp::Le),
        ("==", CompareOp::Eq),
        ("!=", CompareOp::Ne),
        (">", CompareOp::Gt),
        ("<", CompareOp::Lt),
    ];
    for (symbol, op) in OPS {
        if let Some(pos) = text.find(symbol) {
            let place = text[..pos].trim();
            let count = text[pos + symbol.len()..].trim();
            if place.is_empty() {
                return Err(CliError::Usage(format!(
                    "predicate '{text}' is missing a place name"
                )));
            }
            let count = count.parse().map_err(|_| {
                CliError::Usage(format!(
                    "predicate '{text}' needs an integer after {symbol}"
                ))
            })?;
            return Ok(Predicate {
                place: place.to_string(),
                op,
                count,
            });
        }
    }
    Err(CliError::Usage(format!(
        "predicate '{text}' has no comparison operator (expected e.g. p2>=3)"
    )))
}

fn parse_measure(value: &str) -> Result<MeasureRequest, CliError> {
    let Some((kind_text, predicate_text)) = value.split_once(':') else {
        return Err(CliError::Usage(format!(
            "--measure expects KIND:PRED (got '{value}')"
        )));
    };
    let kind = match kind_text {
        "density" => MeasureKind::Density,
        "cdf" => MeasureKind::Cdf,
        "transient" => MeasureKind::Transient,
        other => {
            return Err(CliError::Usage(format!(
                "unknown measure kind '{other}' (expected density, cdf or transient)"
            )))
        }
    };
    Ok(MeasureRequest {
        kind,
        predicate: parse_predicate(predicate_text)?,
    })
}

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut model: Option<ModelSource> = None;
    let mut measures = Vec::new();
    let mut t_start = 1.0;
    let mut t_stop = 10.0;
    let mut t_count = 10usize;
    let mut workers = 4usize;
    let mut chunk_size = 0usize;
    let mut checkpoint = None;
    let mut method = MethodChoice::Euler;
    let mut emit_model = false;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--model" => model = Some(ModelSource::File(PathBuf::from(value_of("--model")?))),
            "--voting" => model = Some(parse_voting(value_of("--voting")?)?),
            "--measure" => measures.push(parse_measure(value_of("--measure")?)?),
            "--t-start" => {
                t_start = value_of("--t-start")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-start expects a number".into()))?
            }
            "--t-stop" => {
                t_stop = value_of("--t-stop")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-stop expects a number".into()))?
            }
            "--t-count" => {
                t_count = value_of("--t-count")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-count expects an integer".into()))?
            }
            "--workers" => {
                workers = value_of("--workers")?
                    .parse()
                    .map_err(|_| CliError::Usage("--workers expects an integer".into()))?
            }
            "--chunk-size" => {
                chunk_size = value_of("--chunk-size")?
                    .parse()
                    .map_err(|_| CliError::Usage("--chunk-size expects an integer".into()))?
            }
            "--checkpoint" => checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--method" => {
                method = match value_of("--method")?.as_str() {
                    "euler" => MethodChoice::Euler,
                    "laguerre" => MethodChoice::Laguerre,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown method '{other}' (expected euler or laguerre)"
                        )))
                    }
                }
            }
            "--emit-model" => emit_model = true,
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }

    let Some(model) = model else {
        return Err(CliError::Usage(
            "a model is required: --model FILE or --voting CC,MM,NN".into(),
        ));
    };
    if measures.is_empty() && !emit_model {
        return Err(CliError::Usage(
            "at least one --measure KIND:PRED is required".into(),
        ));
    }
    if !(t_start > 0.0 && t_stop >= t_start) || t_count < 2 {
        return Err(CliError::Usage(
            "the time grid needs 0 < --t-start <= --t-stop and --t-count >= 2".into(),
        ));
    }
    Ok(CliOptions {
        model,
        measures,
        t_start,
        t_stop,
        t_count,
        workers,
        chunk_size,
        checkpoint,
        method,
        emit_model,
    })
}

fn model_source_text(model: &ModelSource) -> Result<String, CliError> {
    match model {
        ModelSource::File(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Model(format!("cannot read {}: {e}", path.display()))),
        ModelSource::Voting(cc, mm, nn) => Ok(smp_voting::spec::dnamaca_source(
            smp_voting::VotingConfig::new(*cc, *mm, *nn),
        )),
    }
}

enum MeasureSolver<'a> {
    Passage(PassageTimeSolver<'a>),
    Transient(TransientSolver<'a>),
}

/// Runs one `smpq` invocation, writing the report to `out`.  Returns the
/// rendered report too (the binary prints it; tests inspect it).
pub fn run(options: &CliOptions) -> Result<String, CliError> {
    let mut out = String::new();
    let source = model_source_text(&options.model)?;
    if options.emit_model {
        out.push_str(&source);
        return Ok(out);
    }

    let net = smp_dnamaca::parse_model(&source).map_err(|e| CliError::Model(e.to_string()))?;
    let space = StateSpace::explore(&net).map_err(|e| CliError::Model(e.to_string()))?;
    let smp = space.smp();
    let initial = space.initial_state();
    let _ = writeln!(
        out,
        "model: {} places, {} transitions, {} reachable markings",
        net.num_places(),
        net.num_transitions(),
        space.num_states()
    );

    // Resolve each measure's target set and build its solver.  Measures that
    // share a solver class and predicate (the advertised density+cdf pairing)
    // also share one solver: building a second identical solver would allocate
    // state-space-sized matrices that union planning never evaluates.
    let mut solvers: Vec<MeasureSolver<'_>> = Vec::new();
    let mut solver_index: Vec<usize> = Vec::with_capacity(options.measures.len());
    let mut solver_keys: Vec<(bool, String)> = Vec::new();
    for request in &options.measures {
        let is_transient = request.kind == MeasureKind::Transient;
        let key = (is_transient, request.predicate.to_string());
        if let Some(found) = solver_keys.iter().position(|k| *k == key) {
            let _ = writeln!(out, "measure {}: shares targets above", request.name());
            solver_index.push(found);
            continue;
        }
        let place = net.place_index(&request.predicate.place).ok_or_else(|| {
            CliError::Model(format!(
                "place '{}' does not exist in the model",
                request.predicate.place
            ))
        })?;
        let predicate = &request.predicate;
        let targets = space.states_where(|m: &Marking| predicate.matches(m.get(place)));
        if targets.is_empty() {
            return Err(CliError::Analysis(format!(
                "predicate {predicate} matches no reachable marking"
            )));
        }
        let _ = writeln!(
            out,
            "measure {}: {} target markings",
            request.name(),
            targets.len()
        );
        let solver = if is_transient {
            MeasureSolver::Transient(
                TransientSolver::new(smp, initial, &targets)
                    .map_err(|e| CliError::Analysis(e.to_string()))?,
            )
        } else {
            MeasureSolver::Passage(
                PassageTimeSolver::new(smp, &[initial], &targets)
                    .map_err(|e| CliError::Analysis(e.to_string()))?,
            )
        };
        solver_index.push(solvers.len());
        solver_keys.push(key);
        solvers.push(solver);
    }

    // Assemble the batch: every measure shares the CLI's time grid.  Keys are
    // model-fingerprinted so a reused checkpoint file never leaks values
    // computed for a different (or since-edited) model.
    let fingerprint = model_fingerprint(&source);
    let ts = linspace(options.t_start, options.t_stop, options.t_count);
    let mut job = BatchJob::new();
    for (request, &si) in options.measures.iter().zip(&solver_index) {
        let solver = &solvers[si];
        let spec = match solver {
            MeasureSolver::Passage(solver) => {
                MeasureSpec::new(request.name(), request.kind, &ts, move |s| {
                    solver
                        .transform_at(s)
                        .map(|p| p.value)
                        .map_err(|e| e.to_string())
                })
            }
            MeasureSolver::Transient(solver) => {
                MeasureSpec::transient(request.name(), &ts, move |s| {
                    solver.transform_at(s).map_err(|e| e.to_string())
                })
            }
        };
        job.push(spec.with_transform_key(request.transform_key(&fingerprint)));
    }

    let pipeline = DistributedPipeline::new(
        options.method.to_method(),
        PipelineOptions {
            workers: options.workers,
            checkpoint_path: options.checkpoint.clone(),
            chunk_size: options.chunk_size,
            ..Default::default()
        },
    );
    let result = pipeline
        .run_batch(job)
        .map_err(|e| CliError::Analysis(e.to_string()))?;

    // One combined table: a column per measure over the shared grid.
    let _ = writeln!(out);
    let mut header = format!("{:>10}", "t");
    for measure in &result.measures {
        let _ = write!(header, "  {:>18}", measure.name);
    }
    let _ = writeln!(out, "{header}");
    for (row, &t) in ts.iter().enumerate() {
        let mut line = format!("{t:>10.3}");
        for measure in &result.measures {
            let _ = write!(line, "  {:>18.6}", measure.values[row]);
        }
        let _ = writeln!(out, "{line}");
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "pipeline: {} worker(s), chunk size {}, {} chunk message(s), {:.3}s elapsed",
        result.worker_stats.len(),
        result.chunk_size,
        result.chunks_dispatched,
        result.elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "evaluations: {} new, {} from checkpoint/cache, {} shared between measures",
        result.evaluations, result.cache_hits, result.shared_hits
    );
    for measure in &result.measures {
        let _ = writeln!(
            out,
            "  {:<24} {:>6} evaluated  {:>6} cached  {:>6} shared",
            measure.name, measure.evaluations, measure.cache_hits, measure.shared_hits
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_flag_set() {
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "density:p2>=3",
            "--measure",
            "cdf:p2>=3",
            "--measure",
            "transient:p6==0",
            "--t-start",
            "2",
            "--t-stop",
            "60",
            "--t-count",
            "12",
            "--workers",
            "8",
            "--chunk-size",
            "16",
            "--checkpoint",
            "/tmp/x.ckpt",
            "--method",
            "laguerre",
        ]))
        .unwrap();
        assert_eq!(options.model, ModelSource::Voting(5, 2, 2));
        assert_eq!(options.measures.len(), 3);
        assert_eq!(options.measures[0].kind, MeasureKind::Density);
        assert_eq!(options.measures[0].name(), "density:p2>=3");
        assert_eq!(options.measures[2].predicate.op, CompareOp::Eq);
        assert_eq!(options.t_count, 12);
        assert_eq!(options.workers, 8);
        assert_eq!(options.chunk_size, 16);
        assert_eq!(options.method, MethodChoice::Laguerre);
        assert_eq!(options.checkpoint, Some(PathBuf::from("/tmp/x.ckpt")));
        // density and cdf over one predicate share a transform key…
        assert_eq!(
            options.measures[0].transform_key("fp"),
            options.measures[1].transform_key("fp")
        );
        // …but the transient lives under its own…
        assert_ne!(
            options.measures[0].transform_key("fp"),
            options.measures[2].transform_key("fp")
        );
        // …and the model fingerprint separates checkpoints between models.
        assert_ne!(
            options.measures[0].transform_key("fp"),
            options.measures[0].transform_key("other-model")
        );
    }

    #[test]
    fn model_fingerprint_distinguishes_models() {
        let a = model_fingerprint("\\place{p}{1}");
        let b = model_fingerprint("\\place{p}{2}");
        assert_ne!(a, b);
        assert_eq!(a, model_fingerprint("\\place{p}{1}"), "deterministic");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn checkpoint_is_not_shared_across_different_models() {
        // Same measure and grid, two different voting configurations, one
        // checkpoint file: the second run must not reuse the first model's
        // transform values.
        let mut checkpoint = std::env::temp_dir();
        checkpoint.push(format!("smpq-model-key-test-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&checkpoint);
        let run_with = |voting: &str| {
            let mut options = parse_args(&args(&[
                "--voting",
                voting,
                "--measure",
                "transient:p2>=2",
                "--t-count",
                "2",
                "--t-stop",
                "4",
            ]))
            .unwrap();
            options.checkpoint = Some(checkpoint.clone());
            run(&options).unwrap()
        };
        let first = run_with("3,1,1");
        assert!(first.contains(" 0 from checkpoint/cache"), "{first}");
        let second = run_with("4,1,1");
        // A different model: everything is evaluated fresh, nothing restored.
        assert!(second.contains(" 0 from checkpoint/cache"), "{second}");
        // The same model again: fully warm.
        let third = run_with("4,1,1");
        assert!(third.contains("evaluations: 0 new"), "{third}");
        std::fs::remove_file(&checkpoint).unwrap();
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--measure", "density:p2>=3"],                    // no model
            vec!["--voting", "5,2"],                               // malformed triple
            vec!["--voting", "5,2,2"],                             // no measure
            vec!["--voting", "5,2,2", "--measure", "p2>=3"],       // missing kind
            vec!["--voting", "5,2,2", "--measure", "mean:p2>=3"],  // unknown kind
            vec!["--voting", "5,2,2", "--measure", "density:p2"],  // no operator
            vec!["--voting", "5,2,2", "--measure", "density:>=3"], // no place
            vec!["--voting", "5,2,2", "--measure", "density:p2>=x"], // bad count
            vec!["--voting", "5,2,2", "--method", "talbot"],       // unknown method
            // a 1-point grid would panic linspace; rejected up front
            vec![
                "--voting",
                "5,2,2",
                "--measure",
                "cdf:p2>=1",
                "--t-count",
                "1",
            ],
            vec!["--frobnicate"], // unknown flag
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(CliError::Usage(_))),
                "expected a usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn predicates_evaluate_correctly() {
        let cases = [
            ("p>=3", 3, true),
            ("p>=3", 2, false),
            ("p<=1", 1, true),
            ("p>0", 0, false),
            ("p<5", 4, true),
            ("p==2", 2, true),
            ("p!=2", 2, false),
        ];
        for (text, tokens, expect) in cases {
            let predicate = parse_predicate(text).unwrap();
            assert_eq!(predicate.matches(tokens), expect, "{text} with {tokens}");
        }
    }

    #[test]
    fn emit_model_prints_the_dnamaca_source() {
        let options = parse_args(&args(&["--voting", "3,1,1", "--emit-model"])).unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("\\place"), "expected model text: {report}");
        assert!(report.contains("\\transition"));
    }

    #[test]
    fn unknown_place_is_a_model_error() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "transient:nosuch>=1",
            "--t-count",
            "2",
        ]))
        .unwrap();
        match run(&options) {
            Err(CliError::Model(message)) => assert!(message.contains("nosuch")),
            other => panic!("expected a model error, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_voting_model_via_run() {
        // The same model as examples/dnamaca_spec.rs: voting system (5, 2, 2),
        // transient probability that at least 3 voters have voted.
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "transient:p2>=3",
            "--t-start",
            "2",
            "--t-stop",
            "20",
            "--t-count",
            "4",
            "--workers",
            "4",
            "--chunk-size",
            "8",
        ]))
        .unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("reachable markings"), "{report}");
        assert!(report.contains("transient:p2>=3"), "{report}");
        assert!(report.contains("evaluations:"), "{report}");
        // The probability column is populated with values in [0, 1].
        let last_row = report
            .lines()
            .find(|line| line.trim_start().starts_with("20.000"))
            .expect("a t = 20 row");
        let p: f64 = last_row.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&p), "P = {p}");
    }
}
