//! # smp-cli
//!
//! The `smpq` command line tool: drive the whole analysis tool chain — DNAmaca
//! model parsing, SM-SPN state-space generation, and the unified measure
//! engines — the way a modeller drove the paper's original tool.
//!
//! ```text
//! smpq --model voting.mod --measure 'cdf:p2>=3' --measure 'quantile:p2>=3@0.5,0.9,0.99' \
//!      --t-start 2 --t-stop 60 --t-count 12 --engine distributed --validate-sim 1e-2
//! ```
//!
//! (The quotes matter: an unquoted `>=` is a shell redirection.)
//!
//! A model comes either from a file (`--model`) or from the built-in voting
//! system generator (`--voting CC,MM,NN`).  Each repeated `--measure` flag adds
//! one [`MeasureRequest`] to the batch — densities, CDFs, transient
//! probabilities, quantiles, means and higher moments — and `--engine` selects
//! which implementation of the [`Engine`] trait answers it:
//!
//! * `distributed` (default) — the master–worker pipeline over worker threads,
//!   or over TCP worker processes with `--workers tcp:ADDR,...`;
//! * `analytic` — sequential in-process Laplace inversion (bitwise identical
//!   to `distributed`);
//! * `sim` — discrete-event simulation of the same model with
//!   `--replications`/`--seed` control;
//! * `uniform` — CTMC uniformization for models whose holding times are all
//!   exponential, with an a-priori truncation error bound and no Laplace
//!   inversion (when `--engine analytic` is asked to solve such a model, the
//!   report carries a hint that `uniform` applies).
//!
//! `--validate-sim TOL` runs the chosen engine *and* the simulation engine and
//! fails if any shared point disagrees beyond `TOL` (relative) plus the
//! simulation's own 95% confidence bound — the paper's analytic-vs-simulation
//! validation loop as a one-flag feature.
//!
//! The binary in `src/main.rs` is a thin wrapper around [`parse_args`] and
//! [`run`], which are kept in this library so the whole flow is unit-testable.

use smp_core::query::{
    Engine, EngineError, MeasureKind, MeasureReport, MeasureRequest, MEASURE_KIND_NAMES,
};
use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;
use smp_pipeline::{
    query_with_retry, run_tcp_worker, uniformization_applies, AnalyticEngine, DistributedEngine,
    ModelSpec, PipelineOptions, PoolSpec, QueryClient, QueryError, QueryRequest, QueryServer,
    QueryServerOptions, RefusalKind, RetryPolicy, SimulationEngine, SimulationOptions,
    TcpTransport, TcpWorkerOptions, UniformizationEngine,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The target predicate type — `smp_core::query::TargetSpec`, re-exported
/// under the name this CLI has always used.
pub type Predicate = smp_pipeline::TargetSpec;
pub use smp_pipeline::{model_fingerprint, CompareOp};

/// Everything `smpq` needs for one invocation, parsed from the command line.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Where the model text comes from.
    pub model: ModelSource,
    /// The requested measures, in command-line order (time grids are filled
    /// in from the `--t-*` flags when the run starts).
    pub measures: Vec<MeasureRequest>,
    /// Shared output time grid: first point.
    pub t_start: f64,
    /// Shared output time grid: last point.
    pub t_stop: f64,
    /// Shared output time grid: number of points.
    pub t_count: usize,
    /// Which engine answers the requests.
    pub engine: EngineChoice,
    /// Where the distributed engine's evaluations run: worker threads or TCP
    /// worker processes.
    pub workers: WorkerBackend,
    /// Row shards for the distributed engine over in-process loopback slice
    /// workers (`--shards N`; 0 = unsharded).
    pub shards: usize,
    /// Make the TCP worker processes row-shard holders (`--sharded` with
    /// `--workers tcp:...`): each worker explores, compiles and iterates only
    /// its own contiguous slice of the state space, with per-round boundary
    /// exchange.
    pub sharded: bool,
    /// Work-queue chunk size; 0 lets the pipeline choose.
    pub chunk_size: usize,
    /// Optional checkpoint file shared across invocations.
    pub checkpoint: Option<PathBuf>,
    /// Inversion method driving the `s`-point plan.
    pub method: MethodChoice,
    /// Print the model source instead of solving.
    pub emit_model: bool,
    /// Cross-validate the chosen engine against the simulation engine with
    /// this relative tolerance.
    pub validate_sim: Option<f64>,
    /// Simulation replications (simulation engine and `--validate-sim`).
    pub replications: usize,
    /// Simulation RNG seed.
    pub sim_seed: u64,
}

/// Where the model specification text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// Read an extended-DNAmaca specification from a file.
    File(PathBuf),
    /// Generate the built-in voting model for `(voters, polling, central)`.
    Voting(u32, u32, u32),
}

/// The engine selected with `--engine`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Sequential in-process Laplace inversion.
    Analytic,
    /// Discrete-event simulation.
    Sim,
    /// The distributed master–worker pipeline (default).
    Distributed,
    /// CTMC uniformization (all-exponential models only).
    Uniform,
    /// Route automatically: uniformization when every holding time is
    /// exponential, the distributed pipeline otherwise.  The default for
    /// `smpq query` (the server memoizes the routing probe per model).
    Auto,
}

impl EngineChoice {
    fn name(self) -> &'static str {
        match self {
            EngineChoice::Analytic => "analytic",
            EngineChoice::Sim => "sim",
            EngineChoice::Distributed => "distributed",
            EngineChoice::Uniform => "uniform",
            EngineChoice::Auto => "auto",
        }
    }

    /// The measure kinds the chosen engine supports, for engine-scoped
    /// `--measure` parse errors.  Every shipped engine answers the full set.
    fn supported_kinds(self) -> &'static str {
        MEASURE_KIND_NAMES
    }
}

/// Where the distributed engine farms its transform evaluations out to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerBackend {
    /// In-process worker threads (the paper's slave processors as threads).
    Threads(usize),
    /// One TCP worker process per listed rendezvous address: the master binds
    /// each address and waits for an `smpq worker --connect` to dial in.
    Tcp(Vec<String>),
}

/// The inversion algorithm selected with `--method`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Euler inversion (default; robust to discontinuities).
    Euler,
    /// Laguerre inversion (smooth targets, fixed `s`-point set).
    Laguerre,
}

impl MethodChoice {
    fn to_method(self) -> InversionMethod {
        match self {
            MethodChoice::Euler => InversionMethod::euler(),
            MethodChoice::Laguerre => InversionMethod::laguerre(),
        }
    }
}

/// An `smpq` failure: bad flags, unreadable/invalid model, or analysis error.
#[derive(Debug)]
pub enum CliError {
    /// A command-line problem; print [`usage`] alongside it.
    Usage(String),
    /// The model could not be read, parsed or explored.
    Model(String),
    /// The analysis itself failed (solver, pipeline or validation).
    Analysis(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Model(m) => write!(f, "model error: {m}"),
            CliError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Model(m) => CliError::Model(m),
            EngineError::Unsupported(m) | EngineError::Analysis(m) => CliError::Analysis(m),
        }
    }
}

impl From<QueryError> for CliError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Refused(refusal) => match refusal.kind {
                RefusalKind::Model => CliError::Model(refusal.message),
                RefusalKind::Protocol => CliError::Usage(refusal.message),
                kind => CliError::Analysis(format!("{}: {}", kind.name(), refusal.message)),
            },
            QueryError::Protocol(m) => CliError::Analysis(format!("protocol error: {m}")),
            QueryError::Io(e) => CliError::Analysis(format!("connection error: {e}")),
        }
    }
}

/// The `--help` text.
pub fn usage() -> &'static str {
    "smpq — passage-time and transient analysis of semi-Markov models
        (analytic, simulated, or distributed — one typed query layer)

USAGE:
    smpq (--model FILE | --voting CC,MM,NN) --measure KIND:TARGET[@ARGS] [options]
    smpq worker --connect HOST:PORT [--reconnect N] [--exit-after-chunks N]
    smpq serve --listen ADDR [--workers N|tcp:ADDR,...] [cache/admission options]
    smpq query --server ADDR (--model FILE | --voting CC,MM,NN) --measure ... [options]
    smpq shutdown --server ADDR

MODEL:
    --model FILE        extended-DNAmaca model specification file
    --voting CC,MM,NN   built-in voting model: CC voters, MM polling units,
                        NN central voting units (the paper's case study)
    --emit-model        print the model source and exit

MEASURES (repeatable, at least one):
    --measure KIND:TARGET[@ARGS]
        KIND    density | cdf | transient | quantile | mean | moment
        TARGET  a predicate PLACE OP N, e.g. p2>=3
                (OP is one of >= <= > < == !=)
        ARGS    quantile: probabilities, e.g. quantile:p2>=3@0.5,0.9,0.99
                moment:   the order 1..=4, e.g. moment:p2>=3@2
        density/cdf/quantile/mean/moment measure the first passage from the
        initial marking into the target's markings; transient measures their
        time-dependent state probability.

ENGINE:
    --engine NAME       distributed (default) | analytic | sim | uniform | auto
                        analytic and distributed agree bitwise; sim is the
                        discrete-event reference with confidence bounds;
                        uniform solves all-exponential models by CTMC
                        uniformization with an a-priori truncation bound
                        (rejects models with any non-exponential holding time);
                        auto probes the model and routes to uniform when every
                        holding time is exponential, distributed otherwise
    --validate-sim TOL  also run the simulation engine and fail if any shared
                        point deviates more than TOL (relative) plus the
                        simulation's 95% confidence bound (density measures
                        are reported but not enforced: the simulated density
                        is a biased kernel estimate)
    --replications N    simulation replications (default 10000)
    --seed N            simulation RNG seed (default 24301)

TIME GRID (shared by all curve measures; quantile searches start at --t-stop):
    --t-start X         first output time (default 1)
    --t-stop X          last output time (default 10)
    --t-count N         number of output times (default 10, minimum 2)

PIPELINE (distributed engine):
    --workers N         worker threads (default 4)
    --workers tcp:ADDR[,ADDR...]
                        distribute over TCP worker *processes* instead: the
                        master binds each ADDR (one per worker) and waits for
                        an 'smpq worker --connect HOST:PORT' to dial in
    --shards N          row-shard the state space into N contiguous blocks
                        solved by in-process loopback slice workers: each holds
                        ~1/N of the states and the Laplace iteration runs as
                        lockstep sharded SpMV with per-round halo exchange;
                        results are bitwise identical for any N
    --sharded           with --workers tcp: make each TCP worker process a row
                        shard holder (one shard per ADDR) instead of an
                        s-point evaluator
    --chunk-size N      work items per dispatch chunk (default: automatic)
    --checkpoint PATH   append computed transform values to PATH and reuse
                        them on the next run (warm cache across invocations;
                        also warms the quantile refinement rounds)
    --method NAME       euler (default) | laguerre
    --help              print this text

WORKER MODE (one per terminal/host):
    smpq worker --connect HOST:PORT
                        dial the master's rendezvous address, rebuild the
                        job's evaluators from its transform specs, answer
                        work chunks until the master says done
    --reconnect N       survive up to N lost masters: redial the rendezvous
                        with deterministic-jitter backoff and resume (compiled
                        models stay warm across reconnects); 0 (default) exits
                        on the first loss
    --exit-after-chunks N
                        fault injection: drop the connection after N chunks

QUERY SERVICE (always-on daemon; see ARCHITECTURE.md 'Query service'):
    smpq serve --listen ADDR
                        bind the query port and answer smpq query requests
                        until an smpq shutdown arrives; caches compiled model
                        sets and transform values across queries
    --workers N         solve on N in-process threads (default 2), or
    --workers tcp:ADDR[,ADDR...]
                        bind one rendezvous per ADDR and wait for resident
                        'smpq worker --connect' processes to attach once
    --shards N          row-shard distributed solves into N loopback slices
                        (in-process pools only; answers stay bitwise identical)
    --cache-models N    compiled-model-set LRU capacity (default 8)
    --cache-results MB  transform-value cache byte budget (default 64)
    --max-inflight N    concurrent solves (default 4)
    --max-queued N      waiting requests before Busy refusals (default 16)

    smpq query --server ADDR (--model FILE | --voting CC,MM,NN) --measure ...
                        ship one query to a running server; results are
                        bitwise identical to the same one-shot smpq run
    --engine NAME       auto (default) | analytic | distributed | uniform
                        (sim is one-shot only: the server refuses it)
    --deadline-ms N     refuse the request (typed: deadline) if it has not
                        completed after N ms, queue time included
    --retries N         retry transient failures (connect refused, connection
                        broken, server Busy) up to N extra times with
                        deterministic-jitter exponential backoff (default 0)
    --retry-backoff MS  base delay between retry attempts (default 100);
                        doubles per attempt, capped, never past the deadline
                        (also --t-start/--t-stop/--t-count/--method as above)

    smpq shutdown --server ADDR
                        ask the server to drain in-flight queries and exit"
}

/// Parses a `--workers` value: a thread count, or `tcp:` plus a list of
/// rendezvous addresses (shared by one-shot runs and `smpq serve`).
fn parse_workers_value(value: &str) -> Result<WorkerBackend, CliError> {
    if let Some(list) = value.strip_prefix("tcp:") {
        let addrs: Vec<String> = list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() {
            return Err(CliError::Usage(
                "--workers tcp: needs at least one ADDR".into(),
            ));
        }
        Ok(WorkerBackend::Tcp(addrs))
    } else {
        Ok(WorkerBackend::Threads(value.parse().map_err(|_| {
            CliError::Usage("--workers expects an integer or tcp:ADDR[,ADDR...]".into())
        })?))
    }
}

fn parse_voting(value: &str) -> Result<ModelSource, CliError> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 3 {
        return Err(CliError::Usage(format!(
            "--voting expects CC,MM,NN (got '{value}')"
        )));
    }
    let mut numbers = [0u32; 3];
    for (slot, part) in numbers.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("--voting component '{part}' is not a number")))?;
    }
    Ok(ModelSource::Voting(numbers[0], numbers[1], numbers[2]))
}

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut model: Option<ModelSource> = None;
    // Raw `--measure` texts; parsed after the loop so kind errors can speak
    // for whichever engine `--engine` picked, regardless of flag order.
    let mut measure_texts: Vec<String> = Vec::new();
    let mut t_start = 1.0;
    let mut t_stop = 10.0;
    let mut t_count = 10usize;
    let mut engine = EngineChoice::Distributed;
    let mut workers = WorkerBackend::Threads(4);
    let mut shards = 0usize;
    let mut sharded = false;
    let mut chunk_size = 0usize;
    let mut checkpoint = None;
    let mut method = MethodChoice::Euler;
    let mut emit_model = false;
    let mut validate_sim = None;
    let mut replications = 10_000usize;
    let mut sim_seed = 0x5eedu64;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--model" => model = Some(ModelSource::File(PathBuf::from(value_of("--model")?))),
            "--voting" => model = Some(parse_voting(value_of("--voting")?)?),
            "--measure" => measure_texts.push(value_of("--measure")?.clone()),
            "--t-start" => {
                t_start = value_of("--t-start")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-start expects a number".into()))?
            }
            "--t-stop" => {
                t_stop = value_of("--t-stop")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-stop expects a number".into()))?
            }
            "--t-count" => {
                t_count = value_of("--t-count")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-count expects an integer".into()))?
            }
            "--engine" => {
                engine = match value_of("--engine")?.as_str() {
                    "analytic" => EngineChoice::Analytic,
                    "sim" | "simulation" => EngineChoice::Sim,
                    "distributed" => EngineChoice::Distributed,
                    "uniform" | "uniformization" => EngineChoice::Uniform,
                    "auto" => EngineChoice::Auto,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown engine '{other}' \
                             (expected auto, analytic, sim, distributed or uniform)"
                        )))
                    }
                }
            }
            "--validate-sim" => {
                let tol: f64 = value_of("--validate-sim")?
                    .parse()
                    .map_err(|_| CliError::Usage("--validate-sim expects a tolerance".into()))?;
                if !(tol > 0.0 && tol.is_finite()) {
                    return Err(CliError::Usage(
                        "--validate-sim tolerance must be a positive number".into(),
                    ));
                }
                validate_sim = Some(tol);
            }
            "--replications" => {
                replications = value_of("--replications")?
                    .parse()
                    .map_err(|_| CliError::Usage("--replications expects an integer".into()))?;
                if replications == 0 {
                    return Err(CliError::Usage("--replications must be at least 1".into()));
                }
            }
            "--seed" => {
                sim_seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".into()))?
            }
            "--workers" => workers = parse_workers_value(value_of("--workers")?)?,
            "--shards" => {
                shards = value_of("--shards")?
                    .parse()
                    .map_err(|_| CliError::Usage("--shards expects an integer".into()))?;
                if shards == 0 {
                    return Err(CliError::Usage("--shards must be at least 1".into()));
                }
            }
            "--sharded" => sharded = true,
            "--chunk-size" => {
                chunk_size = value_of("--chunk-size")?
                    .parse()
                    .map_err(|_| CliError::Usage("--chunk-size expects an integer".into()))?
            }
            "--checkpoint" => checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--method" => {
                method = match value_of("--method")?.as_str() {
                    "euler" => MethodChoice::Euler,
                    "laguerre" => MethodChoice::Laguerre,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown method '{other}' (expected euler or laguerre)"
                        )))
                    }
                }
            }
            "--emit-model" => emit_model = true,
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }

    let Some(model) = model else {
        return Err(CliError::Usage(
            "a model is required: --model FILE or --voting CC,MM,NN".into(),
        ));
    };
    let measures: Vec<MeasureRequest> = measure_texts
        .iter()
        .map(|text| {
            MeasureRequest::parse_for_engine(text, engine.name(), engine.supported_kinds())
                .map_err(CliError::Usage)
        })
        .collect::<Result<_, _>>()?;
    if measures.is_empty() && !emit_model {
        return Err(CliError::Usage(
            "at least one --measure KIND:TARGET is required".into(),
        ));
    }
    if !(t_start > 0.0 && t_stop >= t_start) || t_count < 2 {
        return Err(CliError::Usage(
            "the time grid needs 0 < --t-start <= --t-stop and --t-count >= 2".into(),
        ));
    }
    if matches!(workers, WorkerBackend::Tcp(_))
        && !matches!(engine, EngineChoice::Distributed | EngineChoice::Auto)
    {
        return Err(CliError::Usage(format!(
            "--workers tcp: applies to the distributed engine only (got --engine {})",
            engine.name()
        )));
    }
    if (shards > 0 || sharded) && engine != EngineChoice::Distributed {
        return Err(CliError::Usage(format!(
            "row sharding applies to the distributed engine only (got --engine {})",
            engine.name()
        )));
    }
    if shards > 0 && matches!(workers, WorkerBackend::Tcp(_)) {
        return Err(CliError::Usage(
            "--shards runs in-process loopback slices; over TCP workers use --sharded              (one shard per rendezvous address)"
                .into(),
        ));
    }
    if sharded && !matches!(workers, WorkerBackend::Tcp(_)) {
        return Err(CliError::Usage(
            "--sharded needs --workers tcp:ADDR[,ADDR...] (one shard per worker              process); for in-process sharding use --shards N"
                .into(),
        ));
    }
    Ok(CliOptions {
        model,
        measures,
        t_start,
        t_stop,
        t_count,
        engine,
        workers,
        shards,
        sharded,
        chunk_size,
        checkpoint,
        method,
        emit_model,
        validate_sim,
        replications,
        sim_seed,
    })
}

fn model_source_text(model: &ModelSource) -> Result<String, CliError> {
    match model {
        ModelSource::File(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Model(format!("cannot read {}: {e}", path.display()))),
        ModelSource::Voting(cc, mm, nn) => Ok(smp_voting::spec::dnamaca_source(
            smp_voting::VotingConfig::new(*cc, *mm, *nn),
        )),
    }
}

fn model_spec(model: &ModelSource, source: &str) -> ModelSpec {
    match model {
        ModelSource::Voting(cc, mm, nn) => ModelSpec::Voting {
            voters: *cc,
            polling: *mm,
            central: *nn,
        },
        ModelSource::File(_) => ModelSpec::Dnamaca(source.to_string()),
    }
}

fn sim_options(options: &CliOptions) -> SimulationOptions {
    SimulationOptions {
        replications: options.replications,
        seed: options.sim_seed,
        threads: match &options.workers {
            WorkerBackend::Threads(n) => (*n).max(1),
            WorkerBackend::Tcp(_) => 1,
        },
        ..Default::default()
    }
}

/// Runs one `smpq` invocation, writing the report to a string the binary
/// prints (tests inspect it).
///
/// The whole measure-resolution flow is a shim over
/// [`smp_core::query::Engine::solve`]: the flags select and configure one of
/// the four engines, the `--measure` requests go through unchanged, and the
/// report is rendered from the returned [`MeasureReport`]s — including their
/// provenance (backend, wire traffic, cache hits, error bounds).
pub fn run(options: &CliOptions) -> Result<String, CliError> {
    let mut out = String::new();
    let source = model_source_text(&options.model)?;
    if options.emit_model {
        out.push_str(&source);
        return Ok(out);
    }

    // Parse the net locally for the model summary (cheap: no exploration).
    let net = smp_dnamaca::parse_model(&source).map_err(|e| CliError::Model(e.to_string()))?;
    let spec = model_spec(&options.model, &source);
    let ts = linspace(options.t_start, options.t_stop, options.t_count);
    let requests: Vec<MeasureRequest> = options
        .measures
        .iter()
        .map(|m| m.clone().with_t_points(&ts))
        .collect();

    // The uniformization engine solves all-exponential models exactly with an
    // a-priori truncation bound; tell the modeller when their model qualifies
    // but they picked the Laplace-inversion path.
    if options.engine == EngineChoice::Analytic && uniformization_applies(&spec) {
        let _ = writeln!(
            out,
            "hint: every holding-time distribution in this model is exponential; \
--engine uniform solves it by CTMC uniformization with an a-priori truncation bound"
        );
    }

    // `--engine auto` routes here, one-shot: the all-exponential fast path
    // when the probe says yes, the distributed pipeline otherwise (mirroring
    // the query server's routing, minus its memo).
    let routed = match options.engine {
        EngineChoice::Auto => {
            if uniformization_applies(&spec) {
                let _ = writeln!(
                    out,
                    "engine auto: every holding time is exponential; \
routing to uniformization"
                );
                EngineChoice::Uniform
            } else {
                let _ = writeln!(
                    out,
                    "engine auto: non-exponential holding times present; \
routing to the distributed pipeline"
                );
                EngineChoice::Distributed
            }
        }
        chosen => chosen,
    };

    // Build the chosen engine.  The TCP transport is bound here so the
    // rendezvous hints can be printed *before* solve blocks in accept.
    let engine: Box<dyn Engine> = match (&routed, &options.workers) {
        (EngineChoice::Analytic, _) => {
            Box::new(AnalyticEngine::new(spec, options.method.to_method()))
        }
        (EngineChoice::Sim, _) => Box::new(SimulationEngine::new(spec, sim_options(options))),
        (EngineChoice::Uniform, _) => Box::new(UniformizationEngine::new(spec)),
        (EngineChoice::Distributed | EngineChoice::Auto, WorkerBackend::Threads(n)) => {
            let pipeline = PipelineOptions {
                workers: (*n).max(1),
                checkpoint_path: options.checkpoint.clone(),
                chunk_size: options.chunk_size,
                ..Default::default()
            };
            if options.shards > 0 {
                Box::new(DistributedEngine::sharded(
                    spec,
                    options.method.to_method(),
                    pipeline,
                    options.shards,
                ))
            } else {
                Box::new(DistributedEngine::in_process(
                    spec,
                    options.method.to_method(),
                    pipeline,
                ))
            }
        }
        (EngineChoice::Distributed | EngineChoice::Auto, WorkerBackend::Tcp(addrs)) => {
            let transport = TcpTransport::bind(addrs).map_err(|e| {
                CliError::Analysis(format!("cannot bind tcp rendezvous address: {e}"))
            })?;
            for (worker, addr) in transport.local_addrs().iter().enumerate() {
                let hint = format!(
                    "tcp master: worker {worker} rendezvous at {addr} \
(start it with: smpq worker --connect {addr})"
                );
                // solve() blocks in accept until the workers dial in, and the
                // report string is only printed afterwards — the operator
                // needs the rendezvous address *now*, so the hint also goes
                // to stderr eagerly.
                eprintln!("{hint}");
                let _ = writeln!(out, "{hint}");
            }
            let pipeline = PipelineOptions {
                workers: addrs.len(),
                checkpoint_path: options.checkpoint.clone(),
                chunk_size: options.chunk_size,
                ..Default::default()
            };
            if options.sharded {
                Box::new(DistributedEngine::sharded_tcp(
                    spec,
                    options.method.to_method(),
                    pipeline,
                    transport,
                ))
            } else {
                Box::new(DistributedEngine::with_transport(
                    spec,
                    options.method.to_method(),
                    pipeline,
                    Box::new(transport),
                ))
            }
        }
    };

    let started = Instant::now();
    let reports = engine.solve(&requests)?;
    let elapsed = started.elapsed();

    if matches!(options.workers, WorkerBackend::Tcp(_))
        && reports.iter().all(|r| r.provenance.messages == 0)
    {
        // No frame ever crossed the rendezvous.  Say why eagerly — a worker
        // started per the hints above will retry against a closed port and
        // exit (cleanly, as released).
        let note = if requests.iter().any(|r| r.kind.is_curve()) {
            // Curve measures were planned but nothing was dispatched: the
            // checkpoint satisfied the whole plan.
            "tcp master: run satisfied entirely from the checkpoint; \
no worker connections were used (any started workers exit cleanly)"
        } else {
            // Only derived measures, which are computed master-side on the
            // single-rendezvous TCP transport.
            "tcp master: no distributed work was dispatched (all requested \
measures are computed master-side); any started workers exit cleanly"
        };
        eprintln!("{note}");
        let _ = writeln!(out, "{note}");
    }

    render_model_line(&mut out, &net, routed, &reports);
    render_reports(&mut out, &ts, &reports);
    render_summary(
        &mut out,
        options,
        routed,
        engine.as_ref(),
        &reports,
        elapsed,
    );

    if let Some(tolerance) = options.validate_sim {
        // With --engine sim the primary reports *are* the simulation's: reuse
        // them instead of burning a second identical replication set (the
        // comparison is then a self-consistency statement, flagged as such).
        let sim_reports = if options.engine == EngineChoice::Sim {
            reports.clone()
        } else {
            SimulationEngine::new(model_spec(&options.model, &source), sim_options(options))
                .solve(&requests)?
        };
        render_validation(&mut out, tolerance, options, &reports, &sim_reports)?;
    }
    Ok(out)
}

fn render_model_line(
    out: &mut String,
    net: &smp_smspn::SmSpn,
    engine: EngineChoice,
    reports: &[MeasureReport],
) {
    let states = reports.iter().find_map(|r| r.provenance.states);
    let suffix = match states {
        Some(states) => format!("{states} reachable markings"),
        None if engine == EngineChoice::Sim => {
            "(state space not built: discrete-event simulation)".to_string()
        }
        None if reports.iter().any(|r| r.provenance.backend.contains("tcp")) => {
            "(state space explored by the workers)".to_string()
        }
        None => "(state space not explored: run satisfied from cache/checkpoint)".to_string(),
    };
    let _ = writeln!(
        out,
        "model: {} places, {} transitions, {suffix}",
        net.num_places(),
        net.num_transitions(),
    );
}

fn render_reports(out: &mut String, ts: &[f64], reports: &[MeasureReport]) {
    // One combined table for the curve measures: a column per measure over
    // the shared grid.
    let curves: Vec<&MeasureReport> = reports.iter().filter(|r| r.kind.is_curve()).collect();
    if !curves.is_empty() {
        let _ = writeln!(out);
        let mut header = format!("{:>10}", "t");
        for report in &curves {
            let _ = write!(header, "  {:>18}", report.name);
        }
        let _ = writeln!(out, "{header}");
        for (row, &t) in ts.iter().enumerate() {
            let mut line = format!("{t:>10.3}");
            for report in &curves {
                let _ = write!(line, "  {:>18.6}", report.values[row]);
            }
            let _ = writeln!(out, "{line}");
        }
    }

    // Derived measures get their own sections.
    for report in reports.iter().filter(|r| !r.kind.is_curve()) {
        let _ = writeln!(out);
        match &report.kind {
            MeasureKind::Quantile { .. } => {
                let _ = writeln!(out, "{}:", report.name);
                for (p, q) in report.iter() {
                    let _ = writeln!(out, "    p = {p:<6} ->  t = {q:.6}");
                }
            }
            MeasureKind::Mean | MeasureKind::Moment { .. } => {
                let value = report.scalar().unwrap_or(f64::NAN);
                match report.provenance.error_bound {
                    // The simulation's bound is a confidence interval; every
                    // other engine reports a numerical error bound.
                    Some(ci) if report.provenance.engine == "simulation" => {
                        let _ = writeln!(out, "{} = {value:.6} (95% CI ±{ci:.6})", report.name);
                    }
                    Some(bound) => {
                        let _ = writeln!(out, "{} = {value:.6} (±{bound:.6})", report.name);
                    }
                    None => {
                        let _ = writeln!(out, "{} = {value:.6}", report.name);
                    }
                }
            }
            _ => unreachable!("curve kinds rendered above"),
        }
    }
}

fn render_summary(
    out: &mut String,
    options: &CliOptions,
    routed: EngineChoice,
    engine: &dyn Engine,
    reports: &[MeasureReport],
    elapsed: std::time::Duration,
) {
    let backend = match routed {
        EngineChoice::Analytic => "sequential".to_string(),
        EngineChoice::Sim => format!("monte-carlo seed={:#x}", options.sim_seed),
        // `Auto` has been resolved before solve; keep the arm for exhaustiveness.
        EngineChoice::Distributed | EngineChoice::Auto => match &options.workers {
            WorkerBackend::Threads(_) if options.shards > 0 => "sharded-loopback".to_string(),
            WorkerBackend::Threads(_) => "in-process".to_string(),
            WorkerBackend::Tcp(_) if options.sharded => "sharded-tcp".to_string(),
            WorkerBackend::Tcp(_) => "tcp".to_string(),
        },
        EngineChoice::Uniform => "poisson".to_string(),
    };
    render_engine_summary(out, engine.name(), &backend, reports, elapsed);
}

/// The engine/backend/traffic/cache block shared between one-shot runs and
/// `smpq query` (which learns the engine and backend from the returned
/// provenance rather than from local flags).
fn render_engine_summary(
    out: &mut String,
    engine_name: &str,
    backend: &str,
    reports: &[MeasureReport],
    elapsed: std::time::Duration,
) {
    let workers = reports
        .iter()
        .map(|r| r.provenance.workers)
        .max()
        .unwrap_or(1);
    // Run-level counters are attributed to the first measure of each shared
    // run, so summing across reports gives the true totals.
    let messages: usize = reports.iter().map(|r| r.provenance.messages).sum();
    let bytes: u64 = reports.iter().map(|r| r.provenance.bytes_on_wire).sum();
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "engine: {engine_name} [{backend}], {workers} worker(s), {messages} wire message(s), \
{bytes} wire byte(s), {:.3}s elapsed",
        elapsed.as_secs_f64()
    );
    let evaluations: usize = reports.iter().map(|r| r.provenance.evaluations).sum();
    let cache_hits: usize = reports.iter().map(|r| r.provenance.cache_hits).sum();
    let shared_hits: usize = reports.iter().map(|r| r.provenance.shared_hits).sum();
    let _ = writeln!(
        out,
        "evaluations: {evaluations} new, {cache_hits} from checkpoint/cache, \
{shared_hits} shared between measures",
    );
    // The symbolic/numeric split's savings: each avoided rebuild is one
    // s-point that refilled a prebuilt CSR skeleton instead of constructing
    // the (U, U') pair, and LST evaluations are counted per *distinct*
    // pooled distribution, not per transition.
    let rebuilds_avoided: u64 = reports
        .iter()
        .map(|r| r.provenance.matrix_rebuilds_avoided)
        .sum();
    let pooled_lsts: u64 = reports
        .iter()
        .map(|r| r.provenance.pooled_lst_evaluations)
        .sum();
    if rebuilds_avoided > 0 || pooled_lsts > 0 {
        let _ = writeln!(
            out,
            "hot path: {rebuilds_avoided} matrix rebuild(s) avoided, \
{pooled_lsts} pooled LST evaluation(s)",
        );
    }
    // Row-sharding counters: zero unless the run was sharded, so unsharded
    // output stays byte-identical to earlier releases.  The per-shard state
    // counts sum to the full state space; their maximum is each worker's
    // memory high-water mark.
    let shards = reports
        .iter()
        .map(|r| r.provenance.shards)
        .max()
        .unwrap_or(0);
    if shards > 0 {
        let halo: u64 = reports.iter().map(|r| r.provenance.halo_bytes).sum();
        let rounds: u64 = reports.iter().map(|r| r.provenance.exchange_rounds).sum();
        let slice = reports
            .iter()
            .find(|r| !r.provenance.shard_states.is_empty())
            .map(|r| {
                r.provenance
                    .shard_states
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            })
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "sharding: {shards} row shard(s) [{slice} states], {halo} halo byte(s) over {rounds} exchange round(s)",
        );
    }
    // Query-server counters: always zero on one-shot runs, so these lines
    // only appear for `smpq query` answers (and the one-shot output stays
    // byte-identical to earlier releases).
    let queued: std::time::Duration = reports.iter().map(|r| r.provenance.queue_wait).sum();
    let model_hits: usize = reports.iter().map(|r| r.provenance.model_cache_hits).sum();
    let model_misses: usize = reports
        .iter()
        .map(|r| r.provenance.model_cache_misses)
        .sum();
    // Queue wait is a served-query quantity; the model-cache line also covers
    // one-shot engines with warm reductions (sharded compiles, phase chains).
    if queued > std::time::Duration::ZERO {
        let _ = writeln!(out, "server: {:.3}s queued", queued.as_secs_f64());
    }
    if model_hits > 0 || model_misses > 0 {
        let _ = writeln!(
            out,
            "model cache: {model_hits} hit(s) / {model_misses} miss(es)"
        );
    }
    // Fault-recovery counters: all zero on an untroubled run, so this line
    // only appears when something went wrong and was absorbed.
    let retries: u64 = reports.iter().map(|r| r.provenance.retries).sum();
    let recovered: u64 = reports.iter().map(|r| r.provenance.recovered_faults).sum();
    let resumed: u64 = reports.iter().map(|r| r.provenance.resumed_rounds).sum();
    if retries > 0 || recovered > 0 || resumed > 0 {
        let _ = writeln!(
            out,
            "recovery: {retries} retr{} with backoff, {recovered} fault(s) absorbed, \
{resumed} iteration round(s) resumed from checkpoint",
            if retries == 1 { "y" } else { "ies" }
        );
    }
    for report in reports {
        let _ = writeln!(
            out,
            "  {:<24} {:>6} evaluated  {:>6} cached  {:>6} shared",
            report.name,
            report.provenance.evaluations,
            report.provenance.cache_hits,
            report.provenance.shared_hits
        );
    }
}

/// Compares the chosen engine's reports against the simulation engine's:
/// every shared point must satisfy
/// `|a − b| ≤ TOL · max(1, |a|, |b|) + sim 95% bound`.
///
/// Density measures are compared *advisorily* only: the simulation side is a
/// kernel-density estimate whose smoothing bias does not vanish with more
/// replications, so a mismatch there is expected and must not fail the run.
fn render_validation(
    out: &mut String,
    tolerance: f64,
    options: &CliOptions,
    reports: &[MeasureReport],
    sim_reports: &[MeasureReport],
) -> Result<(), CliError> {
    let self_check = options.engine == EngineChoice::Sim;
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "validation vs simulation (tolerance {tolerance}, {} replications, seed {:#x}){}:",
        options.replications,
        options.sim_seed,
        if self_check {
            " — self-consistency only: the chosen engine IS the simulation"
        } else {
            ""
        }
    );
    let mut failures = Vec::new();
    for (report, sim) in reports.iter().zip(sim_reports) {
        debug_assert_eq!(report.name, sim.name);
        let advisory = matches!(report.kind, MeasureKind::Density);
        let bound = sim.provenance.error_bound.unwrap_or(0.0);
        // Track the largest deviation for the per-measure summary line.
        let mut worst: Option<(f64, f64)> = None; // (Δ, allowed at that point)
        for ((&point, &a), &b) in report.points.iter().zip(&report.values).zip(&sim.values) {
            let delta = (a - b).abs();
            let allowed = tolerance * a.abs().max(b.abs()).max(1.0) + bound;
            if worst.is_none_or(|(d, _)| delta > d) {
                worst = Some((delta, allowed));
            }
            if delta > allowed && !advisory {
                failures.push(format!(
                    "{} at {point}: {} {a:.6} vs sim {b:.6} (|Δ| {delta:.6} > allowed {allowed:.6})",
                    report.name,
                    report.provenance.engine,
                ));
            }
        }
        if let Some((delta, allowed)) = worst {
            let _ = writeln!(
                out,
                "  {:<32} max |Δ| {delta:.6} (allowed {allowed:.6}){}",
                report.name,
                if advisory {
                    "  [advisory: kernel-density estimate, not enforced]"
                } else {
                    ""
                }
            );
        }
    }
    if failures.is_empty() {
        let _ = writeln!(
            out,
            "validation passed: {} measure(s) agree with the simulation",
            reports.len()
        );
        Ok(())
    } else {
        Err(CliError::Analysis(format!(
            "validation against simulation failed:\n  {}",
            failures.join("\n  ")
        )))
    }
}

// ---------------------------------------------------------------------------
// Worker mode
// ---------------------------------------------------------------------------

/// Options for the `smpq worker` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCliOptions {
    /// The master's rendezvous address (`HOST:PORT`).
    pub connect: String,
    /// Fault injection: drop the connection after this many chunks.
    pub exit_after_chunks: Option<usize>,
    /// Redial-and-resume budget after a lost master (`--reconnect N`;
    /// 0 = exit on the first loss, today's one-shot behaviour).
    pub reconnect: u32,
}

/// Parses the arguments after `smpq worker`.
pub fn parse_worker_args(args: &[String]) -> Result<WorkerCliOptions, CliError> {
    let mut connect: Option<String> = None;
    let mut exit_after_chunks = None;
    let mut reconnect = 0u32;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value_of("--connect")?.clone()),
            "--exit-after-chunks" => {
                exit_after_chunks =
                    Some(value_of("--exit-after-chunks")?.parse().map_err(|_| {
                        CliError::Usage("--exit-after-chunks expects an integer".into())
                    })?)
            }
            "--reconnect" => {
                reconnect = value_of("--reconnect")?
                    .parse()
                    .map_err(|_| CliError::Usage("--reconnect expects an integer".into()))?
            }
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown worker flag '{other}'"))),
        }
    }
    let Some(connect) = connect else {
        return Err(CliError::Usage(
            "smpq worker needs --connect HOST:PORT (the master's rendezvous address)".into(),
        ));
    };
    Ok(WorkerCliOptions {
        connect,
        exit_after_chunks,
        reconnect,
    })
}

/// Runs one worker process: dial the master, rebuild the evaluators from the
/// job's transform specs, answer chunks until released.  Returns the summary
/// line the binary prints.
pub fn run_worker(options: &WorkerCliOptions) -> Result<String, CliError> {
    let worker_options = TcpWorkerOptions {
        exit_after_chunks: options.exit_after_chunks,
        reconnect_attempts: options.reconnect,
        ..Default::default()
    };
    let summary = run_tcp_worker(&options.connect, &worker_options).map_err(CliError::Analysis)?;
    let recovery = if summary.reconnects > 0 || summary.dial_retries > 0 {
        format!(
            " (recovered: {} reconnect(s), {} dial retr{})",
            summary.reconnects,
            summary.dial_retries,
            if summary.dial_retries == 1 {
                "y"
            } else {
                "ies"
            }
        )
    } else {
        String::new()
    };
    if summary.released_before_work {
        return Ok(format!(
            "worker released: the master finished before assigning work (warm run \
or a faster peer drained the queue){recovery}\n"
        ));
    }
    Ok(format!(
        "worker {} done: {} chunk(s), {} evaluation(s){}{recovery}\n",
        summary.worker_id,
        summary.chunks,
        summary.evaluated,
        if summary.dropped_early {
            " (connection dropped by fault injection)"
        } else {
            ""
        }
    ))
}

// ---------------------------------------------------------------------------
// Query-service modes: serve / query / shutdown
// ---------------------------------------------------------------------------

/// Options for the `smpq serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeCliOptions {
    /// Address the query listener binds (`HOST:PORT`; port 0 picks freely).
    pub listen: String,
    /// The solve backend: in-process threads or resident TCP workers.
    pub workers: WorkerBackend,
    /// Compiled-model-set LRU capacity (entries).
    pub cache_models: usize,
    /// Transform-value cache byte budget, in MiB.
    pub cache_results_mb: usize,
    /// Maximum solves running concurrently.
    pub max_inflight: usize,
    /// Maximum requests waiting for a solve slot before Busy refusals.
    pub max_queued: usize,
    /// Row shards for distributed solves (`--shards N`; 0 = unsharded).
    /// In-process pools only: each solve runs over loopback slice workers.
    pub solve_shards: usize,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            listen: "127.0.0.1:0".to_string(),
            workers: WorkerBackend::Threads(2),
            cache_models: 8,
            cache_results_mb: 64,
            max_inflight: 4,
            max_queued: 16,
            solve_shards: 0,
        }
    }
}

/// Parses the arguments after `smpq serve`.
pub fn parse_serve_args(args: &[String]) -> Result<ServeCliOptions, CliError> {
    let mut options = ServeCliOptions::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--listen" => options.listen = value_of("--listen")?.clone(),
            "--workers" => options.workers = parse_workers_value(value_of("--workers")?)?,
            "--cache-models" => {
                options.cache_models = value_of("--cache-models")?
                    .parse()
                    .map_err(|_| CliError::Usage("--cache-models expects an integer".into()))?
            }
            "--cache-results" => {
                options.cache_results_mb = value_of("--cache-results")?
                    .parse()
                    .map_err(|_| CliError::Usage("--cache-results expects a size in MiB".into()))?
            }
            "--max-inflight" => {
                options.max_inflight = value_of("--max-inflight")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-inflight expects an integer".into()))?
            }
            "--max-queued" => {
                options.max_queued = value_of("--max-queued")?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-queued expects an integer".into()))?
            }
            "--shards" => {
                options.solve_shards = value_of("--shards")?
                    .parse()
                    .map_err(|_| CliError::Usage("--shards expects an integer".into()))?;
                if options.solve_shards == 0 {
                    return Err(CliError::Usage("--shards must be at least 1".into()));
                }
            }
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown serve flag '{other}'"))),
        }
    }
    if options.cache_models == 0 {
        return Err(CliError::Usage("--cache-models must be at least 1".into()));
    }
    if options.max_inflight == 0 {
        return Err(CliError::Usage("--max-inflight must be at least 1".into()));
    }
    if options.solve_shards > 0 && matches!(options.workers, WorkerBackend::Tcp(_)) {
        return Err(CliError::Usage(
            "serve --shards row-shards on in-process loopback slices and cannot be              combined with a resident tcp worker pool"
                .into(),
        ));
    }
    Ok(options)
}

/// Runs the always-on query server: bind, attach any TCP workers, then
/// answer `smpq query` requests until an `smpq shutdown` arrives.  Returns
/// the summary line the binary prints after a clean shutdown.
///
/// The listening address and the worker rendezvous addresses are printed to
/// stderr *eagerly* (before the accept loop blocks), since the operator —
/// or the integration test — needs them to start clients and workers.
pub fn run_serve(options: &ServeCliOptions) -> Result<String, CliError> {
    let pool = match &options.workers {
        WorkerBackend::Threads(n) => PoolSpec::InProcess((*n).max(1)),
        WorkerBackend::Tcp(addrs) => PoolSpec::Tcp(addrs.clone()),
    };
    let server = QueryServer::bind(QueryServerOptions {
        listen: options.listen.clone(),
        pool,
        cache_models: options.cache_models,
        cache_result_bytes: options.cache_results_mb.saturating_mul(1 << 20),
        max_inflight: options.max_inflight,
        max_queued: options.max_queued,
        solve_shards: options.solve_shards,
    })
    .map_err(|e| CliError::Analysis(format!("cannot bind the query server: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Analysis(format!("cannot read the bound address: {e}")))?;
    eprintln!("serve: listening on {addr} (query it with: smpq query --server {addr} ...)");
    let worker_addrs = server
        .worker_addrs()
        .map_err(|e| CliError::Analysis(format!("cannot read a worker rendezvous address: {e}")))?;
    for (worker, waddr) in worker_addrs.iter().enumerate() {
        eprintln!(
            "serve: worker {worker} rendezvous at {waddr} \
(start it with: smpq worker --connect {waddr})"
        );
    }
    if !worker_addrs.is_empty() {
        let attached = server
            .attach_workers()
            .map_err(|e| CliError::Analysis(format!("worker attachment failed: {e}")))?;
        eprintln!("serve: pool attached: {attached} resident worker(s)");
    }
    server
        .run()
        .map_err(|e| CliError::Analysis(format!("query server failed: {e}")))?;
    Ok(format!("serve: shut down cleanly ({addr})\n"))
}

/// Options for the `smpq query` subcommand.
#[derive(Debug, Clone)]
pub struct QueryCliOptions {
    /// The running server's address (`HOST:PORT`).
    pub server: String,
    /// Where the model text comes from (read locally; shipped in the query).
    pub model: ModelSource,
    /// Raw `--measure` texts, shipped verbatim (the server re-parses them).
    pub measure_texts: Vec<String>,
    /// Shared output time grid: first point.
    pub t_start: f64,
    /// Shared output time grid: last point.
    pub t_stop: f64,
    /// Shared output time grid: number of points.
    pub t_count: usize,
    /// Engine selector shipped to the server (default [`EngineChoice::Auto`]).
    pub engine: EngineChoice,
    /// Inversion method driving the server's `s`-point plan.
    pub method: MethodChoice,
    /// Per-request deadline in milliseconds (queue time included).
    pub deadline_ms: Option<u64>,
    /// Extra attempts after a transient failure (connect refused, connection
    /// broken, server Busy); 0 = single attempt.
    pub retries: u32,
    /// Base backoff between retry attempts, in milliseconds (doubles per
    /// attempt with deterministic jitter).
    pub retry_backoff_ms: u64,
}

/// Parses the arguments after `smpq query`.
pub fn parse_query_args(args: &[String]) -> Result<QueryCliOptions, CliError> {
    let mut server: Option<String> = None;
    let mut model: Option<ModelSource> = None;
    let mut measure_texts: Vec<String> = Vec::new();
    let mut t_start = 1.0;
    let mut t_stop = 10.0;
    let mut t_count = 10usize;
    let mut engine = EngineChoice::Auto;
    let mut method = MethodChoice::Euler;
    let mut deadline_ms = None;
    let mut retries = 0u32;
    let mut retry_backoff_ms = 100u64;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--server" => server = Some(value_of("--server")?.clone()),
            "--model" => model = Some(ModelSource::File(PathBuf::from(value_of("--model")?))),
            "--voting" => model = Some(parse_voting(value_of("--voting")?)?),
            "--measure" => measure_texts.push(value_of("--measure")?.clone()),
            "--t-start" => {
                t_start = value_of("--t-start")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-start expects a number".into()))?
            }
            "--t-stop" => {
                t_stop = value_of("--t-stop")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-stop expects a number".into()))?
            }
            "--t-count" => {
                t_count = value_of("--t-count")?
                    .parse()
                    .map_err(|_| CliError::Usage("--t-count expects an integer".into()))?
            }
            "--engine" => {
                engine = match value_of("--engine")?.as_str() {
                    "auto" => EngineChoice::Auto,
                    "analytic" => EngineChoice::Analytic,
                    "distributed" => EngineChoice::Distributed,
                    "uniform" | "uniformization" => EngineChoice::Uniform,
                    "sim" | "simulation" => {
                        return Err(CliError::Usage(
                            "the query server does not serve the simulation engine; \
run `smpq --engine sim` one-shot instead"
                                .into(),
                        ))
                    }
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown engine '{other}' \
                             (expected auto, analytic, distributed or uniform)"
                        )))
                    }
                }
            }
            "--method" => {
                method = match value_of("--method")?.as_str() {
                    "euler" => MethodChoice::Euler,
                    "laguerre" => MethodChoice::Laguerre,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown method '{other}' (expected euler or laguerre)"
                        )))
                    }
                }
            }
            "--deadline-ms" => {
                let ms: u64 = value_of("--deadline-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("--deadline-ms expects milliseconds".into()))?;
                if ms == 0 {
                    return Err(CliError::Usage("--deadline-ms must be at least 1".into()));
                }
                deadline_ms = Some(ms);
            }
            "--retries" => {
                retries = value_of("--retries")?
                    .parse()
                    .map_err(|_| CliError::Usage("--retries expects an integer".into()))?
            }
            "--retry-backoff" => {
                let ms: u64 = value_of("--retry-backoff")?
                    .parse()
                    .map_err(|_| CliError::Usage("--retry-backoff expects milliseconds".into()))?;
                if ms == 0 {
                    return Err(CliError::Usage("--retry-backoff must be at least 1".into()));
                }
                retry_backoff_ms = ms;
            }
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown query flag '{other}'"))),
        }
    }

    let Some(server) = server else {
        return Err(CliError::Usage(
            "smpq query needs --server HOST:PORT (a running smpq serve)".into(),
        ));
    };
    let Some(model) = model else {
        return Err(CliError::Usage(
            "a model is required: --model FILE or --voting CC,MM,NN".into(),
        ));
    };
    if measure_texts.is_empty() {
        return Err(CliError::Usage(
            "at least one --measure KIND:TARGET is required".into(),
        ));
    }
    // Validate measure syntax client-side so typos fail before a round trip
    // (the server re-parses the same texts — same grammar, same errors).
    for text in &measure_texts {
        MeasureRequest::parse_for_engine(text, engine.name(), MEASURE_KIND_NAMES)
            .map_err(CliError::Usage)?;
    }
    if !(t_start > 0.0 && t_stop >= t_start) || t_count < 2 {
        return Err(CliError::Usage(
            "the time grid needs 0 < --t-start <= --t-stop and --t-count >= 2".into(),
        ));
    }
    Ok(QueryCliOptions {
        server,
        model,
        measure_texts,
        t_start,
        t_stop,
        t_count,
        engine,
        method,
        deadline_ms,
        retries,
        retry_backoff_ms,
    })
}

/// Ships one query to a running server and renders its answer with the same
/// table/summary code as a one-shot run — the output differs only in the
/// backend label (`... via ADDR`) and the server-side cache/queue counters.
pub fn run_query(options: &QueryCliOptions) -> Result<String, CliError> {
    let mut out = String::new();
    let source = model_source_text(&options.model)?;
    // Parse the net locally for the model summary line (cheap: no
    // exploration; the server does the real work).
    let net = smp_dnamaca::parse_model(&source).map_err(|e| CliError::Model(e.to_string()))?;
    let ts = linspace(options.t_start, options.t_stop, options.t_count);
    let request = QueryRequest {
        model: model_spec(&options.model, &source),
        engine: options.engine.name().to_string(),
        method: match options.method {
            MethodChoice::Euler => "euler",
            MethodChoice::Laguerre => "laguerre",
        }
        .to_string(),
        deadline: options.deadline_ms.map(Duration::from_millis),
        t_points: ts.clone(),
        measures: options.measure_texts.clone(),
    };

    let started = Instant::now();
    let reports = if options.retries > 0 {
        // Systematic client-side retry: transient failures (connect refused,
        // broken connection, server Busy) redial with deterministic-jitter
        // backoff; final refusals and the request deadline cut it short.
        query_with_retry(
            &options.server,
            &request,
            &RetryPolicy {
                retries: options.retries,
                backoff: Duration::from_millis(options.retry_backoff_ms),
            },
        )?
    } else {
        QueryClient::connect(&options.server)?.query(&request)?
    };
    let elapsed = started.elapsed();

    // The engine that actually answered (auto-routing happens server-side)
    // comes back in the provenance.
    let engine_name = reports
        .first()
        .map(|r| r.provenance.engine)
        .unwrap_or("remote");
    let backend = format!(
        "{} via {}",
        reports
            .first()
            .map(|r| r.provenance.backend.as_str())
            .unwrap_or("server"),
        options.server
    );
    render_model_line(&mut out, &net, options.engine, &reports);
    render_reports(&mut out, &ts, &reports);
    render_engine_summary(&mut out, engine_name, &backend, &reports, elapsed);
    Ok(out)
}

/// Options for the `smpq shutdown` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownCliOptions {
    /// The running server's address (`HOST:PORT`).
    pub server: String,
}

/// Parses the arguments after `smpq shutdown`.
pub fn parse_shutdown_args(args: &[String]) -> Result<ShutdownCliOptions, CliError> {
    let mut server: Option<String> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_of = |name: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--server" => server = Some(value_of("--server")?.clone()),
            "--help" | "-h" => return Err(CliError::Usage("help requested".into())),
            other => return Err(CliError::Usage(format!("unknown shutdown flag '{other}'"))),
        }
    }
    let Some(server) = server else {
        return Err(CliError::Usage(
            "smpq shutdown needs --server HOST:PORT (a running smpq serve)".into(),
        ));
    };
    Ok(ShutdownCliOptions { server })
}

/// Asks a running server to drain and exit; returns the confirmation line.
pub fn run_shutdown(options: &ShutdownCliOptions) -> Result<String, CliError> {
    QueryClient::connect(&options.server)?.shutdown()?;
    Ok(format!(
        "server at {} acknowledged shutdown\n",
        options.server
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parse_predicate(text: &str) -> Result<Predicate, CliError> {
        Predicate::parse(text).map_err(CliError::Usage)
    }

    #[test]
    fn parse_full_flag_set() {
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "density:p2>=3",
            "--measure",
            "cdf:p2>=3",
            "--measure",
            "transient:p6==0",
            "--measure",
            "quantile:p2>=3@0.5,0.9,0.99",
            "--measure",
            "mean:p2>=3",
            "--measure",
            "moment:p2>=3@2",
            "--t-start",
            "2",
            "--t-stop",
            "60",
            "--t-count",
            "12",
            "--engine",
            "distributed",
            "--workers",
            "8",
            "--chunk-size",
            "16",
            "--checkpoint",
            "/tmp/x.ckpt",
            "--method",
            "laguerre",
            "--validate-sim",
            "1e-2",
            "--replications",
            "5000",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(options.model, ModelSource::Voting(5, 2, 2));
        assert_eq!(options.measures.len(), 6);
        assert_eq!(options.measures[0].kind, MeasureKind::Density);
        assert_eq!(options.measures[0].name(), "density:p2>=3");
        assert_eq!(options.measures[2].target.op, CompareOp::Eq);
        assert_eq!(
            options.measures[3].kind,
            MeasureKind::Quantile {
                probs: vec![0.5, 0.9, 0.99]
            }
        );
        assert_eq!(options.measures[4].kind, MeasureKind::Mean);
        assert_eq!(options.measures[5].kind, MeasureKind::Moment { order: 2 });
        assert_eq!(options.t_count, 12);
        assert_eq!(options.engine, EngineChoice::Distributed);
        assert_eq!(options.workers, WorkerBackend::Threads(8));
        assert_eq!(options.chunk_size, 16);
        assert_eq!(options.method, MethodChoice::Laguerre);
        assert_eq!(options.checkpoint, Some(PathBuf::from("/tmp/x.ckpt")));
        assert_eq!(options.validate_sim, Some(1e-2));
        assert_eq!(options.replications, 5000);
        assert_eq!(options.sim_seed, 7);
    }

    #[test]
    fn parse_engine_choices() {
        for (value, expect) in [
            ("analytic", EngineChoice::Analytic),
            ("sim", EngineChoice::Sim),
            ("simulation", EngineChoice::Sim),
            ("distributed", EngineChoice::Distributed),
            ("uniform", EngineChoice::Uniform),
            ("uniformization", EngineChoice::Uniform),
            ("auto", EngineChoice::Auto),
        ] {
            let options = parse_args(&args(&[
                "--voting",
                "3,1,1",
                "--measure",
                "mean:p2>=2",
                "--engine",
                value,
            ]))
            .unwrap();
            assert_eq!(options.engine, expect, "{value}");
        }
        assert!(matches!(
            parse_args(&args(&[
                "--voting",
                "3,1,1",
                "--measure",
                "mean:p2>=2",
                "--engine",
                "quantum",
            ])),
            Err(CliError::Usage(_))
        ));
        // TCP workers only make sense for the distributed engine.
        let e = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--engine",
            "analytic",
            "--workers",
            "tcp:127.0.0.1:9000",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("distributed engine only"), "{e}");
    }

    #[test]
    fn parse_tcp_backend_and_worker_flags() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "density:p2>=2",
            "--workers",
            "tcp:127.0.0.1:9001, 127.0.0.1:9002",
        ]))
        .unwrap();
        assert_eq!(
            options.workers,
            WorkerBackend::Tcp(vec![
                "127.0.0.1:9001".to_string(),
                "127.0.0.1:9002".to_string()
            ])
        );

        // Worker subcommand flags.
        let worker = parse_worker_args(&args(&["--connect", "10.0.0.5:9000"])).unwrap();
        assert_eq!(worker.connect, "10.0.0.5:9000");
        assert_eq!(worker.exit_after_chunks, None);
        assert_eq!(worker.reconnect, 0);
        let worker = parse_worker_args(&args(&[
            "--connect",
            "localhost:1234",
            "--exit-after-chunks",
            "3",
            "--reconnect",
            "5",
        ]))
        .unwrap();
        assert_eq!(worker.exit_after_chunks, Some(3));
        assert_eq!(worker.reconnect, 5);
        assert!(matches!(
            parse_worker_args(&args(&["--connect", "x:1", "--reconnect", "lots"])),
            Err(CliError::Usage(_))
        ));

        // Bad input.
        for bad in [
            vec![
                "--voting",
                "3,1,1",
                "--measure",
                "density:p2>=2",
                "--workers",
                "tcp:",
            ],
            vec![
                "--voting",
                "3,1,1",
                "--measure",
                "density:p2>=2",
                "--workers",
                "seven",
            ],
        ] {
            assert!(matches!(parse_args(&args(&bad)), Err(CliError::Usage(_))));
        }
        assert!(matches!(
            parse_worker_args(&args(&[])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_worker_args(&args(&["--connect", "x:1", "--frob"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn model_fingerprint_distinguishes_models() {
        let a = model_fingerprint("\\place{p}{1}");
        let b = model_fingerprint("\\place{p}{2}");
        assert_ne!(a, b);
        assert_eq!(a, model_fingerprint("\\place{p}{1}"), "deterministic");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn checkpoint_is_not_shared_across_different_models() {
        // Same measure and grid, two different voting configurations, one
        // checkpoint file: the second run must not reuse the first model's
        // transform values.
        let mut checkpoint = std::env::temp_dir();
        checkpoint.push(format!("smpq-model-key-test-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&checkpoint);
        let run_with = |voting: &str| {
            let mut options = parse_args(&args(&[
                "--voting",
                voting,
                "--measure",
                "transient:p2>=2",
                "--t-count",
                "2",
                "--t-stop",
                "4",
            ]))
            .unwrap();
            options.checkpoint = Some(checkpoint.clone());
            run(&options).unwrap()
        };
        let first = run_with("3,1,1");
        assert!(first.contains(" 0 from checkpoint/cache"), "{first}");
        let second = run_with("4,1,1");
        // A different model: everything is evaluated fresh, nothing restored.
        assert!(second.contains(" 0 from checkpoint/cache"), "{second}");
        // The same model again: fully warm.
        let third = run_with("4,1,1");
        assert!(third.contains("evaluations: 0 new"), "{third}");
        std::fs::remove_file(&checkpoint).unwrap();
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--measure", "density:p2>=3"],                    // no model
            vec!["--voting", "5,2"],                               // malformed triple
            vec!["--voting", "5,2,2"],                             // no measure
            vec!["--voting", "5,2,2", "--measure", "p2>=3"],       // missing kind
            vec!["--voting", "5,2,2", "--measure", "frob:p2>=3"],  // unknown kind
            vec!["--voting", "5,2,2", "--measure", "density:p2"],  // no operator
            vec!["--voting", "5,2,2", "--measure", "density:>=3"], // no place
            vec!["--voting", "5,2,2", "--measure", "density:p2>=x"], // bad count
            vec!["--voting", "5,2,2", "--measure", "quantile:p2>=3"], // no probs
            vec!["--voting", "5,2,2", "--measure", "quantile:p2>=3@2"], // prob out of range
            vec!["--voting", "5,2,2", "--measure", "moment:p2>=3@7"], // order out of range
            vec!["--voting", "5,2,2", "--method", "talbot"],       // unknown method
            vec![
                "--voting",
                "5,2,2",
                "--measure",
                "cdf:p2>=1",
                "--validate-sim",
                "-1",
            ],
            // a 1-point grid would panic linspace; rejected up front
            vec![
                "--voting",
                "5,2,2",
                "--measure",
                "cdf:p2>=1",
                "--t-count",
                "1",
            ],
            vec!["--frobnicate"], // unknown flag
        ] {
            assert!(
                matches!(parse_args(&args(&bad)), Err(CliError::Usage(_))),
                "expected a usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn measure_parse_errors_name_the_token_and_list_kinds() {
        let err = parse_args(&args(&["--voting", "3,1,1", "--measure", "frob:p2>=3"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("'frob'"), "{err}");
        assert!(
            err.contains("density, cdf, transient, quantile, mean, moment"),
            "{err}"
        );
        let err = parse_args(&args(&["--voting", "3,1,1", "--measure", "density:p2"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("'p2'"), "{err}");
        assert!(err.contains(">= <= > < == !="), "{err}");
    }

    #[test]
    fn predicates_evaluate_correctly() {
        let cases = [
            ("p>=3", 3, true),
            ("p>=3", 2, false),
            ("p<=1", 1, true),
            ("p>0", 0, false),
            ("p<5", 4, true),
            ("p==2", 2, true),
            ("p!=2", 2, false),
        ];
        for (text, tokens, expect) in cases {
            let predicate = parse_predicate(text).unwrap();
            assert_eq!(predicate.matches(tokens), expect, "{text} with {tokens}");
        }
    }

    #[test]
    fn emit_model_prints_the_dnamaca_source() {
        let options = parse_args(&args(&["--voting", "3,1,1", "--emit-model"])).unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("\\place"), "expected model text: {report}");
        assert!(report.contains("\\transition"));
    }

    #[test]
    fn unknown_place_is_a_model_error() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "transient:nosuch>=1",
            "--t-count",
            "2",
        ]))
        .unwrap();
        match run(&options) {
            Err(CliError::Model(message)) => assert!(message.contains("nosuch")),
            other => panic!("expected a model error, got {other:?}"),
        }
    }

    #[test]
    fn end_to_end_voting_model_via_run() {
        // The same model as examples/dnamaca_spec.rs: voting system (5, 2, 2),
        // transient probability that at least 3 voters have voted.
        let options = parse_args(&args(&[
            "--voting",
            "5,2,2",
            "--measure",
            "transient:p2>=3",
            "--t-start",
            "2",
            "--t-stop",
            "20",
            "--t-count",
            "4",
            "--workers",
            "4",
            "--chunk-size",
            "8",
        ]))
        .unwrap();
        let report = run(&options).unwrap();
        assert!(report.contains("reachable markings"), "{report}");
        assert!(report.contains("transient:p2>=3"), "{report}");
        assert!(report.contains("evaluations:"), "{report}");
        // The probability column is populated with values in [0, 1].
        let last_row = report
            .lines()
            .find(|line| line.trim_start().starts_with("20.000"))
            .expect("a t = 20 row");
        let p: f64 = last_row.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&p), "P = {p}");
    }

    #[test]
    fn engines_agree_through_the_cli() {
        // The same quantile+cdf request through all three engines: analytic
        // and distributed render identical tables; the simulation engine
        // passes --validate-sim against itself trivially.
        let base = |engine: &str| {
            args(&[
                "--voting",
                "3,1,1",
                "--measure",
                "cdf:p2>=2",
                "--measure",
                "quantile:p2>=2@0.5,0.9",
                "--t-start",
                "1",
                "--t-stop",
                "12",
                "--t-count",
                "4",
                "--engine",
                engine,
                "--replications",
                "4000",
            ])
        };
        let analytic = run(&parse_args(&base("analytic")).unwrap()).unwrap();
        let distributed = run(&parse_args(&base("distributed")).unwrap()).unwrap();
        let numeric_rows = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| {
                    l.trim_start().starts_with(|c: char| c.is_ascii_digit())
                        || l.trim_start().starts_with("p =")
                })
                .map(str::to_string)
                .collect()
        };
        assert_eq!(numeric_rows(&analytic), numeric_rows(&distributed));
        assert!(
            analytic.contains("engine: analytic [sequential]"),
            "{analytic}"
        );
        assert!(
            distributed.contains("engine: distributed [in-process]"),
            "{distributed}"
        );
        assert!(analytic.contains("quantile:p2>=2@0.5,0.9:"), "{analytic}");

        let sim = run(&parse_args(&base("sim")).unwrap()).unwrap();
        assert!(sim.contains("engine: simulation [monte-carlo"), "{sim}");
    }

    #[test]
    fn parse_sharding_flags_and_their_usage_errors() {
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--shards",
            "3",
        ]))
        .unwrap();
        assert_eq!(options.shards, 3);
        assert!(!options.sharded);

        // Sharding belongs to the distributed engine only.
        for extra in [&["--shards", "2"][..], &["--sharded"][..]] {
            let mut list = args(&[
                "--voting",
                "3,1,1",
                "--measure",
                "mean:p2>=2",
                "--engine",
                "analytic",
            ]);
            list.extend(extra.iter().map(|s| s.to_string()));
            match parse_args(&list) {
                Err(CliError::Usage(msg)) => assert!(msg.contains("distributed"), "{msg}"),
                other => panic!("expected a usage error, got {other:?}"),
            }
        }
        // --shards is loopback-only; over TCP it is one shard per address.
        match parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--workers",
            "tcp:127.0.0.1:0",
            "--shards",
            "2",
        ])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--sharded"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
        // --sharded needs worker processes to hold the shards.
        match parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--sharded",
        ])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--workers tcp"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }

        // smpq serve: --shards parses, but refuses a resident tcp pool.
        let serve = parse_serve_args(&args(&["--shards", "4"])).unwrap();
        assert_eq!(serve.solve_shards, 4);
        match parse_serve_args(&args(&["--shards", "2", "--workers", "tcp:127.0.0.1:0"])) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("loopback"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_cli_run_matches_the_unsharded_tables() {
        // `--shards 3` must render the same numeric tables as the plain
        // in-process run (the engine guarantees bitwise-identical values),
        // plus the sharding provenance block.
        let base = |extra: &[&str]| {
            let mut list = args(&[
                "--voting",
                "3,1,1",
                "--measure",
                "cdf:p2>=2",
                "--measure",
                "quantile:p2>=2@0.5,0.9",
                "--measure",
                "mean:p2>=2",
                "--t-start",
                "1",
                "--t-stop",
                "12",
                "--t-count",
                "4",
            ]);
            list.extend(extra.iter().map(|s| s.to_string()));
            list
        };
        let plain = run(&parse_args(&base(&[])).unwrap()).unwrap();
        let sharded = run(&parse_args(&base(&["--shards", "3"])).unwrap()).unwrap();
        let numeric_rows = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| {
                    l.trim_start().starts_with(|c: char| c.is_ascii_digit())
                        || l.trim_start().starts_with("p =")
                        || l.trim_start().starts_with("mean:")
                })
                .map(str::to_string)
                .collect()
        };
        assert_eq!(numeric_rows(&plain), numeric_rows(&sharded));
        assert!(
            sharded.contains("engine: distributed [sharded-loopback]"),
            "{sharded}"
        );
        assert!(sharded.contains("sharding: 3 row shard(s) ["), "{sharded}");
        assert!(!plain.contains("sharding:"), "{plain}");
    }

    /// A three-state all-exponential ring, written to a temp file for
    /// `--model` runs of the uniformization engine and its analytic hint.
    fn exp_ring_model_file(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("smpq-exp-ring-{tag}-{}.mod", std::process::id()));
        std::fs::write(
            &path,
            r"
\place{a}{1}
\place{b}{0}
\place{c}{0}

\transition{ab}{
    \condition{a > 0}
    \action{ next->a = a - 1; next->b = b + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(2.0, s); }
}
\transition{bc}{
    \condition{b > 0}
    \action{ next->b = b - 1; next->c = c + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(1.0, s); }
}
\transition{ca}{
    \condition{c > 0}
    \action{ next->c = c - 1; next->a = a + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(3.0, s); }
}
",
        )
        .unwrap();
        path
    }

    #[test]
    fn uniform_engine_end_to_end_with_analytic_hint() {
        let model = exp_ring_model_file("e2e");
        let base = |engine: &str| {
            args(&[
                "--model",
                model.to_str().unwrap(),
                "--measure",
                "cdf:c>=1",
                "--measure",
                "mean:c>=1",
                "--t-start",
                "0.5",
                "--t-stop",
                "8",
                "--t-count",
                "4",
                "--engine",
                engine,
            ])
        };

        // The uniformization engine answers both measures; the hint is absent
        // (the user already picked the right engine).
        let uniform = run(&parse_args(&base("uniform")).unwrap()).unwrap();
        assert!(
            uniform.contains("engine: uniformization [poisson]"),
            "{uniform}"
        );
        assert!(uniform.contains("mean:c>=1 = 1.5000"), "{uniform}");
        assert!(!uniform.contains("hint:"), "{uniform}");

        // The analytic engine on the same all-exponential model carries the
        // routing hint, and the two engines' mean passage times agree.
        let analytic = run(&parse_args(&base("analytic")).unwrap()).unwrap();
        assert!(
            analytic.contains("hint: every holding-time distribution in this model is exponential"),
            "{analytic}"
        );
        assert!(analytic.contains("--engine uniform"), "{analytic}");
        assert!(analytic.contains("mean:c>=1 = 1.5000"), "{analytic}");

        // A mixed-distribution model must NOT carry the hint.
        let voting = run(&parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--engine",
            "analytic",
        ]))
        .unwrap())
        .unwrap();
        assert!(!voting.contains("hint:"), "{voting}");

        std::fs::remove_file(&model).unwrap();
    }

    #[test]
    fn uniform_engine_rejects_non_exponential_models() {
        // The built-in voting model mixes Erlang/uniform/deterministic holding
        // times: the uniformization engine must refuse it, naming the cure.
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--engine",
            "uniform",
        ]))
        .unwrap();
        match run(&options) {
            Err(CliError::Analysis(m)) => {
                assert!(m.contains("not exponential"), "{m}");
                assert!(m.contains("analytic"), "{m}");
            }
            other => panic!("expected an analysis error, got {other:?}"),
        }
    }

    #[test]
    fn measure_parse_errors_name_the_chosen_engines_kinds() {
        // Engine-scoped kind errors flow through the CLI regardless of the
        // order of --engine and --measure on the command line.
        for flags in [
            vec![
                "--voting",
                "3,1,1",
                "--measure",
                "frob:p2>=3",
                "--engine",
                "uniform",
            ],
            vec![
                "--voting",
                "3,1,1",
                "--engine",
                "uniform",
                "--measure",
                "frob:p2>=3",
            ],
        ] {
            let err = parse_args(&args(&flags)).unwrap_err().to_string();
            assert!(
                err.contains("kinds supported by the uniform engine"),
                "{err}"
            );
            assert!(err.contains(MEASURE_KIND_NAMES), "{err}");
        }
    }

    #[test]
    fn validate_sim_passes_and_fails_as_expected() {
        // A generous tolerance passes…
        let mut ok_args = args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "cdf:p2>=2",
            "--measure",
            "mean:p2>=2",
            "--t-start",
            "2",
            "--t-stop",
            "12",
            "--t-count",
            "4",
            "--engine",
            "analytic",
            "--replications",
            "6000",
            "--validate-sim",
            "0.05",
        ]);
        let report = run(&parse_args(&ok_args).unwrap()).unwrap();
        assert!(report.contains("validation passed"), "{report}");
        assert!(report.contains("validation vs simulation"), "{report}");

        // …an absurdly tight one fails with a named offender.
        let n = ok_args.len();
        ok_args[n - 1] = "1e-12".to_string();
        // Tiny replication count so the sim bound cannot rescue the check.
        ok_args[n - 3] = "50".to_string();
        match run(&parse_args(&ok_args).unwrap()) {
            Err(CliError::Analysis(m)) => {
                assert!(m.contains("validation against simulation failed"), "{m}");
                assert!(m.contains("p2>=2"), "{m}");
            }
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn quantile_report_round_trips_against_the_cdf_column() {
        // quantile@p read back through a dense CDF: F(q) ≈ p.
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "quantile:p2>=2@0.5",
            "--t-start",
            "1",
            "--t-stop",
            "12",
            "--t-count",
            "4",
            "--engine",
            "analytic",
        ]))
        .unwrap();
        let report = run(&options).unwrap();
        let q: f64 = report
            .lines()
            .find(|l| l.trim_start().starts_with("p = 0.5"))
            .and_then(|l| l.split("t =").nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("a quantile line");
        assert!(q > 0.0, "{report}");
    }

    #[test]
    fn engine_auto_routes_and_says_so() {
        // The 3,1,1 voting model has deterministic holding times, so auto
        // must route to the distributed pipeline — and say which way it went.
        let options = parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "mean:p2>=2",
            "--engine",
            "auto",
            "--workers",
            "2",
        ]))
        .unwrap();
        let report = run(&options).unwrap();
        assert!(
            report.contains("engine auto: non-exponential holding times present"),
            "{report}"
        );
        assert!(report.contains("engine: distributed"), "{report}");
    }

    #[test]
    fn parse_serve_flags() {
        let options = parse_serve_args(&args(&[
            "--listen",
            "127.0.0.1:7070",
            "--workers",
            "tcp:127.0.0.1:0,127.0.0.1:0",
            "--cache-models",
            "3",
            "--cache-results",
            "16",
            "--max-inflight",
            "2",
            "--max-queued",
            "5",
        ]))
        .unwrap();
        assert_eq!(options.listen, "127.0.0.1:7070");
        assert_eq!(
            options.workers,
            WorkerBackend::Tcp(vec!["127.0.0.1:0".to_string(), "127.0.0.1:0".to_string()])
        );
        assert_eq!(options.cache_models, 3);
        assert_eq!(options.cache_results_mb, 16);
        assert_eq!(options.max_inflight, 2);
        assert_eq!(options.max_queued, 5);

        // Defaults stand when no flags are given.
        let defaults = parse_serve_args(&[]).unwrap();
        assert_eq!(defaults, ServeCliOptions::default());

        // Degenerate capacities are rejected up front.
        assert!(matches!(
            parse_serve_args(&args(&["--max-inflight", "0"])),
            Err(CliError::Usage(m)) if m.contains("--max-inflight")
        ));
    }

    #[test]
    fn parse_query_flags() {
        let options = parse_query_args(&args(&[
            "--server",
            "127.0.0.1:7070",
            "--voting",
            "3,1,1",
            "--measure",
            "cdf:p2>=2",
            "--deadline-ms",
            "1500",
        ]))
        .unwrap();
        assert_eq!(options.server, "127.0.0.1:7070");
        assert_eq!(options.engine, EngineChoice::Auto);
        assert_eq!(options.deadline_ms, Some(1500));
        assert_eq!(options.measure_texts, vec!["cdf:p2>=2".to_string()]);
        assert_eq!((options.retries, options.retry_backoff_ms), (0, 100));

        let options = parse_query_args(&args(&[
            "--server",
            "127.0.0.1:7070",
            "--voting",
            "3,1,1",
            "--measure",
            "cdf:p2>=2",
            "--retries",
            "4",
            "--retry-backoff",
            "250",
        ]))
        .unwrap();
        assert_eq!((options.retries, options.retry_backoff_ms), (4, 250));
        assert!(matches!(
            parse_query_args(&args(&[
                "--server", "x:1", "--voting", "3,1,1",
                "--measure", "cdf:p2>=2", "--retry-backoff", "0",
            ])),
            Err(CliError::Usage(m)) if m.contains("--retry-backoff")
        ));

        // --server is mandatory; sim is refused client-side; measure syntax
        // is validated before any round trip.
        assert!(matches!(
            parse_query_args(&args(&["--voting", "3,1,1", "--measure", "cdf:p2>=2"])),
            Err(CliError::Usage(m)) if m.contains("--server")
        ));
        assert!(matches!(
            parse_query_args(&args(&[
                "--server", "x:1", "--voting", "3,1,1",
                "--measure", "cdf:p2>=2", "--engine", "sim",
            ])),
            Err(CliError::Usage(m)) if m.contains("one-shot")
        ));
        assert!(matches!(
            parse_query_args(&args(&[
                "--server", "x:1", "--voting", "3,1,1", "--measure", "frobnicate:p2>=2",
            ])),
            Err(CliError::Usage(m)) if m.contains("frobnicate")
        ));
    }

    #[test]
    fn parse_shutdown_flags() {
        let options = parse_shutdown_args(&args(&["--server", "127.0.0.1:7070"])).unwrap();
        assert_eq!(options.server, "127.0.0.1:7070");
        assert!(matches!(
            parse_shutdown_args(&[]),
            Err(CliError::Usage(m)) if m.contains("--server")
        ));
    }

    #[test]
    fn served_query_round_trips_against_a_local_server() {
        // In-process end-to-end: bind a server with thread workers, ship one
        // query through run_query, compare against the same one-shot run.
        let server = QueryServer::bind(QueryServerOptions {
            pool: PoolSpec::InProcess(2),
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let query = parse_query_args(&args(&[
            "--server",
            &addr,
            "--voting",
            "3,1,1",
            "--measure",
            "cdf:p2>=2",
            "--t-count",
            "4",
            "--engine",
            "distributed",
        ]))
        .unwrap();
        let served = run_query(&query).unwrap();
        assert!(served.contains("engine: distributed"), "{served}");
        assert!(served.contains(&format!("via {addr}")), "{served}");

        let oneshot = run(&parse_args(&args(&[
            "--voting",
            "3,1,1",
            "--measure",
            "cdf:p2>=2",
            "--t-count",
            "4",
            "--engine",
            "distributed",
        ]))
        .unwrap())
        .unwrap();
        // The numeric table must agree line for line (the summary blocks
        // differ: backend label, timings, server counters).
        let table = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(table(&served), table(&oneshot), "{served}\n---\n{oneshot}");

        run_shutdown(&parse_shutdown_args(&args(&["--server", &addr])).unwrap()).unwrap();
        handle.join().unwrap().unwrap();
    }
}
