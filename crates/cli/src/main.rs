//! The `smpq` binary: parse flags, run the analysis, print the report.
//!
//! All the logic lives in the `smp_cli` library so it can be unit-tested; this
//! file only handles process concerns (argv, exit codes, stderr).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `smpq worker ...` — the slave-processor mode of the TCP transport.
    if args.first().map(String::as_str) == Some("worker") {
        let options = match smp_cli::parse_worker_args(&args[1..]) {
            Ok(options) => options,
            Err(error) => {
                if matches!(&error, smp_cli::CliError::Usage(m) if m == "help requested") {
                    println!("{}", smp_cli::usage());
                    return;
                }
                eprintln!("{error}\n\n{}", smp_cli::usage());
                std::process::exit(2);
            }
        };
        match smp_cli::run_worker(&options) {
            Ok(summary) => print!("{summary}"),
            Err(error) => {
                eprintln!("{error}");
                std::process::exit(1);
            }
        }
        return;
    }

    let options = match smp_cli::parse_args(&args) {
        Ok(options) => options,
        Err(error) => {
            if matches!(&error, smp_cli::CliError::Usage(m) if m == "help requested") {
                println!("{}", smp_cli::usage());
                return;
            }
            eprintln!("{error}\n\n{}", smp_cli::usage());
            std::process::exit(2);
        }
    };
    match smp_cli::run(&options) {
        Ok(report) => print!("{report}"),
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(1);
        }
    }
}
