//! The `smpq` binary: parse flags, run the analysis, print the report.
//!
//! All the logic lives in the `smp_cli` library so it can be unit-tested; this
//! file only handles process concerns (argv, exit codes, stderr).

/// Parses a subcommand's arguments and runs it with the shared exit-code
/// convention: usage errors print the help text and exit 2, runtime errors
/// exit 1, `--help` prints the help text and exits 0.
fn dispatch<O>(
    args: &[String],
    parse: impl Fn(&[String]) -> Result<O, smp_cli::CliError>,
    run: impl Fn(&O) -> Result<String, smp_cli::CliError>,
) {
    let options = match parse(args) {
        Ok(options) => options,
        Err(error) => {
            if matches!(&error, smp_cli::CliError::Usage(m) if m == "help requested") {
                println!("{}", smp_cli::usage());
                return;
            }
            eprintln!("{error}\n\n{}", smp_cli::usage());
            std::process::exit(2);
        }
    };
    match run(&options) {
        Ok(report) => print!("{report}"),
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first().map(String::as_str) {
        // `smpq worker ...` — the slave-processor mode of the TCP transport.
        Some("worker") => dispatch(&args[1..], smp_cli::parse_worker_args, smp_cli::run_worker),
        // `smpq serve ...` — the always-on query daemon.
        Some("serve") => dispatch(&args[1..], smp_cli::parse_serve_args, smp_cli::run_serve),
        // `smpq query ...` — ship one query to a running daemon.
        Some("query") => dispatch(&args[1..], smp_cli::parse_query_args, smp_cli::run_query),
        // `smpq shutdown ...` — ask a running daemon to drain and exit.
        Some("shutdown") => dispatch(
            &args[1..],
            smp_cli::parse_shutdown_args,
            smp_cli::run_shutdown,
        ),
        // No subcommand: a one-shot analysis run.
        _ => dispatch(&args, smp_cli::parse_args, smp_cli::run),
    }
}
