//! End-to-end TCP transport tests with **real worker processes**.
//!
//! These are the acceptance tests of the transport redesign: the voting model
//! solved over [`TcpTransport`] with two `smpq worker` processes on localhost
//! must produce bitwise-identical densities/CDF values to the in-process
//! backend, and a mid-run worker disconnect must be survived by requeueing the
//! dead worker's outstanding chunk onto the survivor.

use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;
use smp_pipeline::{
    BatchJob, DistributedPipeline, MeasureKind, MeasureSpec, ModelSpec, PipelineOptions,
    TargetSpec, TcpTransport, TransformSpec,
};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn spawn_worker(addr: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_smpq"))
        .arg("worker")
        .arg("--connect")
        .arg(addr)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smpq worker")
}

fn voting_model() -> ModelSpec {
    ModelSpec::Voting {
        voters: 3,
        polling: 1,
        central: 1,
    }
}

/// The three-measure voting job of the walkthrough: density and CDF of the
/// same passage (shared transform key) plus a transient probability.
fn voting_job(ts: &[f64]) -> BatchJob<'static> {
    let targets = TargetSpec::parse("p2>=2").unwrap();
    let passage = TransformSpec::passage(voting_model(), targets.clone());
    let transient = TransformSpec::transient(voting_model(), targets);
    BatchJob::new()
        .with_measure(MeasureSpec::from_spec(
            "density:p2>=2",
            MeasureKind::Density,
            ts,
            passage.clone(),
        ))
        .with_measure(MeasureSpec::from_spec(
            "cdf:p2>=2",
            MeasureKind::Cdf,
            ts,
            passage,
        ))
        .with_measure(MeasureSpec::from_spec(
            "transient:p2>=2",
            MeasureKind::Transient,
            ts,
            transient,
        ))
}

fn finish(mut child: Child) {
    let status = child.wait().expect("worker did not exit");
    assert!(status.success(), "worker exited with {status:?}");
}

#[test]
fn voting_over_tcp_is_bitwise_identical_to_in_process() {
    let ts = linspace(2.0, 20.0, 3);
    let pipeline =
        DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));

    // Reference: the in-process backend (threads) over the same spec job.
    let reference = pipeline.run_batch(voting_job(&ts)).unwrap();
    assert_eq!(reference.backend, "in-process");

    // Two real worker processes dial the master's rendezvous listeners.
    let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0"])
        .unwrap()
        .with_accept_timeout(Duration::from_secs(60));
    let children: Vec<Child> = transport
        .local_addrs()
        .iter()
        .map(|addr| spawn_worker(&addr.to_string(), &[]))
        .collect();
    let over_tcp = pipeline.execute(voting_job(&ts), &transport).unwrap();
    assert_eq!(over_tcp.backend, "tcp");
    assert_eq!(over_tcp.disconnects, 0);
    assert!(over_tcp.bytes_on_wire > 0);

    // Bitwise-identical inversions: every measure, every t-point.
    assert_eq!(reference.measures.len(), over_tcp.measures.len());
    for (a, b) in reference.measures.iter().zip(&over_tcp.measures) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.values, b.values,
            "measure {} differs between backends",
            a.name
        );
    }
    // The CDF shared every evaluation with the density, over TCP too.
    let cdf = over_tcp.measure("cdf:p2>=2").unwrap();
    assert_eq!(cdf.evaluations, 0);
    assert_eq!(
        cdf.shared_hits,
        over_tcp.measure("density:p2>=2").unwrap().evaluations
    );

    for child in children {
        finish(child);
    }
}

#[test]
fn mid_run_worker_disconnect_is_survived_by_requeueing() {
    let ts = linspace(2.0, 20.0, 3);
    // Chunk size 1 so the flaky worker's outstanding chunk is a single point
    // and plenty of work remains when it vanishes.
    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions::with_workers(2).chunked(1),
    );
    let reference = pipeline.run_batch(voting_job(&ts)).unwrap();

    let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0"])
        .unwrap()
        .with_accept_timeout(Duration::from_secs(60));
    let addrs = transport.local_addrs();
    // Worker 0 drops its connection right after answering its first chunk;
    // the chunk the master had already sent it is requeued onto worker 1.
    let flaky = spawn_worker(&addrs[0].to_string(), &["--exit-after-chunks", "1"]);
    let healthy = spawn_worker(&addrs[1].to_string(), &[]);

    let over_tcp = pipeline.execute(voting_job(&ts), &transport).unwrap();
    assert_eq!(over_tcp.disconnects, 1, "the casualty is reported");
    for (a, b) in reference.measures.iter().zip(&over_tcp.measures) {
        assert_eq!(
            a.values, b.values,
            "measure {} differs after the disconnect",
            a.name
        );
    }
    // The flaky worker answered exactly one chunk before vanishing.
    let flaky_stats = &over_tcp.worker_stats[0];
    assert_eq!(flaky_stats.messages, 1);

    finish(flaky);
    finish(healthy);
}

#[test]
fn smpq_master_and_workers_run_the_cli_paths() {
    // The same two-terminal walkthrough the README documents, both sides
    // driven through the CLI library entry points.  Ports are picked by
    // binding ephemeral listeners first so the master can re-bind them —
    // another process could grab a probed port in the gap (TOCTOU), so a
    // bind failure re-probes fresh ports instead of failing the test.
    let base_args: Vec<String> = [
        "--voting",
        "3,1,1",
        "--measure",
        "density:p2>=2",
        "--measure",
        "cdf:p2>=2",
        "--t-start",
        "2",
        "--t-stop",
        "20",
        "--t-count",
        "3",
        "--workers",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut attempt = 0;
    let (report, args, children) = loop {
        attempt += 1;
        let addrs: Vec<String> = (0..2)
            .map(|_| {
                let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", probe.local_addr().unwrap().port())
            })
            .collect();
        let mut args = base_args.clone();
        args.push(format!("tcp:{}", addrs.join(",")));
        let options = smp_cli::parse_args(&args).unwrap();

        let children: Vec<Child> = addrs.iter().map(|addr| spawn_worker(addr, &[])).collect();
        match smp_cli::run(&options) {
            Ok(report) => break (report, args, children),
            Err(e) if e.to_string().contains("cannot bind") && attempt < 3 => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            Err(e) => panic!("cli master run failed: {e}"),
        }
    };
    assert!(
        report.contains("state space explored by the workers"),
        "{report}"
    );
    assert!(report.contains("[tcp]"), "{report}");
    assert!(report.contains("density:p2>=2"), "{report}");

    // The thread-backend report over the same model/grid carries the same
    // value table (formatting included), so the CLI paths agree end to end.
    let mut thread_args = args.clone();
    let n = thread_args.len();
    thread_args[n - 1] = "2".to_string();
    let thread_options = smp_cli::parse_args(&thread_args).unwrap();
    let thread_report = smp_cli::run(&thread_options).unwrap();
    let table = |report: &str| -> Vec<String> {
        report
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(table(&report), table(&thread_report));

    for child in children {
        finish(child);
    }
}
