//! End-to-end query-service tests with a **real `smpq serve` process**.
//!
//! The acceptance run of the query daemon: one `smpq serve` with two resident
//! TCP worker processes answers three concurrent `smpq query` clients with
//! values bitwise identical to a one-shot `smpq` run; a warm repeat query is
//! served from the caches (zero new evaluations, zero model-cache misses,
//! rebuilds visibly avoided); a request with a hopeless deadline is refused
//! with a typed error while its neighbours complete; and `smpq shutdown`
//! drains the server cleanly, releasing the resident workers.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn smpq() -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_smpq"));
    command.stdout(Stdio::piped()).stderr(Stdio::piped());
    command
}

fn spawn_worker(addr: &str) -> Child {
    smpq()
        .args(["worker", "--connect", addr])
        .spawn()
        .expect("spawn smpq worker")
}

/// The shared measure/grid flags: every query and the one-shot reference use
/// the same model, measures and time grid, so their tables must agree.
const QUERY_FLAGS: &[&str] = &[
    "--voting",
    "3,1,1",
    "--measure",
    "density:p2>=2",
    "--measure",
    "cdf:p2>=2",
    "--t-start",
    "2",
    "--t-stop",
    "20",
    "--t-count",
    "3",
];

/// The numeric value table of a report (the lines starting with a digit),
/// formatting included — the bitwise-agreement comparand.
fn table(report: &str) -> Vec<String> {
    report
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .map(str::to_string)
        .collect()
}

fn finish(child: Child) -> (String, String) {
    let output = child.wait_with_output().expect("process did not exit");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "process exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    (stdout, stderr)
}

#[test]
fn query_service_serves_concurrent_clients_warm_caches_and_deadlines() {
    // One daemon, two resident TCP workers; small admission caps so the test
    // also exercises queueing (three clients, one pool).
    let mut serve = smpq()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "tcp:127.0.0.1:0,127.0.0.1:0",
        ])
        .spawn()
        .expect("spawn smpq serve");

    // The daemon prints its addresses to stderr eagerly, before the accept
    // loop blocks — read them as they appear.
    let mut serve_stderr = BufReader::new(serve.stderr.take().expect("serve stderr")).lines();
    let mut next_line = || {
        serve_stderr
            .next()
            .expect("serve stderr ended early")
            .expect("serve stderr read failed")
    };
    let mut server_addr: Option<String> = None;
    let mut worker_addrs: Vec<String> = Vec::new();
    while server_addr.is_none() || worker_addrs.len() < 2 {
        let line = next_line();
        if let Some(rest) = line.strip_prefix("serve: listening on ") {
            server_addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.split("rendezvous at ").nth(1) {
            worker_addrs.push(
                rest.split_whitespace()
                    .next()
                    .expect("rendezvous address")
                    .to_string(),
            );
        }
    }
    let server_addr = server_addr.expect("a listening address");

    // Attach the resident workers: they connect once and stay for the whole
    // daemon lifetime, across every query below.
    let workers: Vec<Child> = worker_addrs.iter().map(|a| spawn_worker(a)).collect();
    loop {
        let line = next_line();
        if line.contains("pool attached") {
            assert!(line.contains("2 resident worker(s)"), "{line}");
            break;
        }
    }

    // Three concurrent clients ask the same question; a fourth asks a fresh
    // (uncached) model with a 1 ms deadline no solve can meet.
    let spawn_query = |extra: &[&str]| {
        let mut command = smpq();
        command.args(["query", "--server", &server_addr]);
        command.args(QUERY_FLAGS);
        command.args(extra);
        command.spawn().expect("spawn smpq query")
    };
    let clients: Vec<Child> = (0..3).map(|_| spawn_query(&[])).collect();
    let doomed = smpq()
        .args(["query", "--server", &server_addr])
        .args([
            "--voting",
            "4,2,1",
            "--measure",
            "cdf:p2>=2",
            "--engine",
            "distributed",
            "--deadline-ms",
            "1",
        ])
        .spawn()
        .expect("spawn doomed query");

    // The deadline-exceeded request fails with the typed refusal on stderr …
    let output = doomed
        .wait_with_output()
        .expect("doomed query did not exit");
    assert!(
        !output.status.success(),
        "a 1 ms deadline must not be met: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    let doomed_stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(doomed_stderr.contains("deadline"), "{doomed_stderr}");

    // … while its three neighbours complete, and agree with each other.
    let mut reports: Vec<String> = Vec::new();
    for client in clients {
        let (stdout, _) = finish(client);
        assert!(stdout.contains("engine: distributed"), "{stdout}");
        assert!(stdout.contains(&format!("via {server_addr}")), "{stdout}");
        reports.push(stdout);
    }
    for report in &reports[1..] {
        assert_eq!(table(&reports[0]), table(report), "clients disagree");
    }

    // Bitwise agreement with a one-shot run of the same job (in-process
    // threads — the transport must not change a single printed digit).
    let oneshot = smpq()
        .args(QUERY_FLAGS)
        .args(["--engine", "distributed", "--workers", "2"])
        .spawn()
        .expect("spawn one-shot smpq");
    let (oneshot_stdout, _) = finish(oneshot);
    assert_eq!(
        table(&reports[0]),
        table(&oneshot_stdout),
        "served:\n{}\none-shot:\n{oneshot_stdout}",
        reports[0]
    );

    // A warm repeat of the same query: the route memo and the result cache
    // answer it without re-exploring or re-evaluating anything.
    let (warm, _) = finish(spawn_query(&[]));
    assert_eq!(
        table(&reports[0]),
        table(&warm),
        "warm query changed values"
    );
    assert!(warm.contains("evaluations: 0 new"), "{warm}");
    assert!(warm.contains("/ 0 miss(es)"), "{warm}");
    let rebuilds_avoided: u64 = warm
        .lines()
        .find_map(|l| l.strip_prefix("hot path: "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("a hot-path line in the warm report");
    assert!(rebuilds_avoided > 0, "{warm}");

    // Drain and exit; the resident workers see orderly EOF and leave cleanly.
    let (shutdown_stdout, _) = finish(
        smpq()
            .args(["shutdown", "--server", &server_addr])
            .spawn()
            .expect("spawn smpq shutdown"),
    );
    assert!(
        shutdown_stdout.contains("acknowledged"),
        "{shutdown_stdout}"
    );

    let status = serve.wait().expect("serve did not exit");
    assert!(status.success(), "serve exited with {status:?}");
    for worker in workers {
        finish(worker);
    }
}
