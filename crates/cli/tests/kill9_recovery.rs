//! End-to-end crash recovery: a **real `kill -9`** of a sharded TCP master
//! mid-solve, followed by a cold restart of the same command line.
//!
//! The acceptance criteria of the checkpoint/recovery design, exercised with
//! real processes rather than in-process fault injection (which
//! `tests/chaos_matrix.rs` covers deterministically):
//!
//! * the restarted master re-binds the *same* rendezvous ports immediately
//!   (SO_REUSEADDR through the kernel's TIME_WAIT parking);
//! * `--reconnect` workers outlive the crash and offer themselves to the
//!   resumed run;
//! * the resumed run redoes strictly fewer evaluations than a cold run,
//!   pulling the rest from the checkpoint the dead master left behind;
//! * the final numeric table is identical (formatting included) to an
//!   in-process sharded run of the same job.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const GRID: &[&str] = &[
    "--voting",
    "5,2,2",
    "--measure",
    "density:p2>=2",
    "--measure",
    "cdf:p2>=2",
    "--t-start",
    "2",
    "--t-stop",
    "40",
    "--t-count",
    "5",
    "--engine",
    "distributed",
    "--workers",
];

fn smpq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smpq"))
}

fn spawn_worker(addr: &str) -> Child {
    // `--reconnect 1`: exactly one redial — survive the kill, serve the
    // restarted master, then exit on the post-run link close instead of
    // redialling into the void.
    smpq()
        .args(["worker", "--connect", addr, "--reconnect", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smpq worker")
}

fn spawn_master(addrs: &[String], checkpoint: &PathBuf) -> Child {
    smpq()
        .args(GRID)
        .arg(format!("tcp:{}", addrs.join(",")))
        .arg("--sharded")
        .arg("--checkpoint")
        .arg(checkpoint)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smpq master")
}

/// The numeric value table of a report: exactly the lines a t-indexed curve
/// prints.  Two backends agree iff these lines are byte-identical.
fn table(report: &str) -> Vec<String> {
    report
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .map(str::to_string)
        .collect()
}

/// Pulls `N` out of "evaluations: N new, M from checkpoint/cache, ...".
fn parse_counts(report: &str) -> (u64, u64) {
    let line = report
        .lines()
        .find(|l| l.trim_start().starts_with("evaluations:"))
        .unwrap_or_else(|| panic!("no evaluations line in:\n{report}"));
    let mut numbers = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|w| !w.is_empty())
        .map(|w| w.parse::<u64>().unwrap());
    let fresh = numbers.next().expect("new count");
    let cached = numbers.next().expect("cached count");
    (fresh, cached)
}

fn drain(child: Child) -> (bool, String, String) {
    let output = child.wait_with_output().expect("child did not exit");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn checkpoint_records(path: &PathBuf) -> usize {
    std::fs::read_to_string(path)
        .map(|text| text.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0)
}

#[test]
fn a_kill_dash_nined_sharded_master_restarts_and_resumes_from_its_checkpoint() {
    // Reference: the same job over in-process loopback shards.  Sharded TCP
    // and sharded loopback are bitwise-identical by construction (the lockstep
    // SpMV rounds are the same arithmetic), so this is the ground truth table
    // and the cold evaluation count.
    let reference = {
        let mut args: Vec<String> = GRID.iter().map(|s| s.to_string()).collect();
        args.push("2".into());
        args.extend(["--shards".into(), "2".into()]);
        smp_cli::run(&smp_cli::parse_args(&args).unwrap()).unwrap()
    };
    let (cold_new, cold_cached) = parse_counts(&reference);
    assert!(cold_new > 0, "{reference}");
    assert_eq!(cold_cached, 0, "{reference}");

    // The kill is a race against the solve; ports are a TOCTOU race against
    // the rest of the machine.  Losing either is rare — retry a fresh
    // scenario rather than flaking.
    let mut attempt = 0;
    let (resumed_report, seen_at_kill, workers) = 'scenario: loop {
        attempt += 1;
        assert!(attempt <= 3, "lost the kill/port race three times in a row");

        let addrs: Vec<String> = (0..2)
            .map(|_| {
                let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", probe.local_addr().unwrap().port())
            })
            .collect();
        let mut checkpoint = std::env::temp_dir();
        checkpoint.push(format!("smpq-kill9-{}-{attempt}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&checkpoint);

        let mut doomed = spawn_master(&addrs, &checkpoint);
        let workers: Vec<Child> = addrs.iter().map(|a| spawn_worker(a)).collect();

        // Wait for the solve to make real progress — at least two completed
        // s-points on disk — then SIGKILL the master with work still queued.
        let deadline = Instant::now() + Duration::from_secs(120);
        let seen_at_kill = loop {
            let seen = checkpoint_records(&checkpoint);
            if seen >= 2 {
                doomed.kill().expect("SIGKILL the master");
                let _ = doomed.wait();
                break seen;
            }
            if let Some(status) = doomed.try_wait().expect("poll master") {
                // The master finished (or died on a stolen port) before the
                // kill landed: this attempt proves nothing, run a fresh one.
                eprintln!("attempt {attempt}: master exited early ({status:?}), retrying");
                for mut worker in workers {
                    let _ = worker.kill();
                    let _ = worker.wait();
                }
                let _ = std::fs::remove_file(&checkpoint);
                continue 'scenario;
            }
            assert!(Instant::now() < deadline, "no checkpoint progress in 120s");
            std::thread::sleep(Duration::from_millis(2));
        };

        // Cold restart of the *identical* command line: same ports (freed
        // through TIME_WAIT by SO_REUSEADDR), same checkpoint path.  The
        // reconnecting workers are already redialling the rendezvous.
        let reborn = spawn_master(&addrs, &checkpoint);
        let (ok, report, stderr) = drain(reborn);
        assert!(ok, "restarted master failed:\n{report}\n{stderr}");
        let _ = std::fs::remove_file(&checkpoint);
        break (report, seen_at_kill, workers);
    };

    // The resumed table is the reference table, byte for byte.
    assert_eq!(
        table(&resumed_report),
        table(&reference),
        "resumed run diverged from the cold reference\n--- resumed:\n{resumed_report}\n--- reference:\n{reference}"
    );

    // The resume was real: some points came from the dead master's
    // checkpoint, and strictly fewer were re-evaluated than a cold run.
    let (resumed_new, resumed_cached) = parse_counts(&resumed_report);
    assert!(
        resumed_cached >= seen_at_kill as u64,
        "expected at least the {seen_at_kill} checkpointed points as cache \
hits, got {resumed_cached}:\n{resumed_report}"
    );
    assert!(
        resumed_new < cold_new,
        "resumed run redid all {resumed_new} of {cold_new} points:\n{resumed_report}"
    );
    assert!(
        resumed_report.contains("from checkpoint/cache"),
        "{resumed_report}"
    );

    // Both workers outlived the crash: one reconnect each, clean exits,
    // and the recovery suffix in their summaries says so.
    for worker in workers {
        let (ok, stdout, stderr) = drain(worker);
        assert!(ok, "worker failed:\n{stdout}\n{stderr}");
        assert!(
            stdout.contains("(recovered: 1 reconnect(s)"),
            "worker summary lacks the reconnect recovery suffix:\n{stdout}"
        );
    }
}

#[test]
fn a_kill_dash_nined_shard_worker_is_absorbed_by_resharding() {
    // The mirror image: the *master* survives, one shard holder is SIGKILLed
    // mid-solve, and the fleet re-shards the state space onto the survivor —
    // the in-flight point is redone on the shrunken fleet, so the casualty
    // costs redone rounds, not wrong values.
    let reference = {
        let mut args: Vec<String> = GRID.iter().map(|s| s.to_string()).collect();
        args.push("2".into());
        args.extend(["--shards".into(), "2".into()]);
        smp_cli::run(&smp_cli::parse_args(&args).unwrap()).unwrap()
    };

    let mut attempt = 0;
    let report = 'scenario: loop {
        attempt += 1;
        assert!(attempt <= 3, "lost the port race three times in a row");

        let addrs: Vec<String> = (0..2)
            .map(|_| {
                let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", probe.local_addr().unwrap().port())
            })
            .collect();
        let mut checkpoint = std::env::temp_dir();
        checkpoint.push(format!(
            "smpq-kill9-worker-{}-{attempt}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&checkpoint);

        let mut master = spawn_master(&addrs, &checkpoint);
        let steady = spawn_worker(&addrs[0]);
        let mut victim = spawn_worker(&addrs[1]);

        // Let the fleet produce some checkpointed points, then kill shard 1.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if checkpoint_records(&checkpoint) >= 2 {
                break;
            }
            if let Some(status) = master.try_wait().expect("poll master") {
                eprintln!("attempt {attempt}: master exited early ({status:?}), retrying");
                for mut child in [steady, victim] {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                let _ = std::fs::remove_file(&checkpoint);
                continue 'scenario;
            }
            assert!(Instant::now() < deadline, "no checkpoint progress in 120s");
            std::thread::sleep(Duration::from_millis(2));
        }
        victim.kill().expect("SIGKILL the shard worker");
        let _ = victim.wait();

        let (ok, report, stderr) = drain(master);
        assert!(ok, "master failed after worker kill:\n{report}\n{stderr}");
        let _ = std::fs::remove_file(&checkpoint);

        // The survivor is released with an explicit farewell once the
        // re-sharded run finishes, so it exits cleanly without redialling.
        let (ok, stdout, stderr) = drain(steady);
        assert!(ok, "surviving worker failed:\n{stdout}\n{stderr}");
        break report;
    };

    assert_eq!(
        table(&report),
        table(&reference),
        "post-casualty run diverged from the cold reference\n--- run:\n{report}\n--- reference:\n{reference}"
    );
    assert!(
        report.contains("recovery:"),
        "expected a recovery summary line after a shard casualty:\n{report}"
    );
}
