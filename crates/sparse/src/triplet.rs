//! Coordinate-format (triplet) sparse matrix builder.
//!
//! State-space exploration naturally emits matrix entries one transition at a time,
//! in whatever order the breadth-first search discovers them, and occasionally emits
//! the same `(row, col)` pair more than once (e.g. two Petri-net transitions between
//! the same pair of markings — their probabilities must be *summed*).  The triplet
//! builder accepts that stream as-is and compresses it into a [`CsrMatrix`] in
//! `O(nnz + rows)` time with a counting sort over rows.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// A growable coordinate-format sparse matrix.
#[derive(Debug, Clone)]
pub struct TripletMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> TripletMatrix<T> {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `capacity` entries.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        let mut m = TripletMatrix::new(rows, cols);
        m.entries.reserve(capacity);
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`.  Duplicate coordinates are summed during
    /// compression; exact zeros are skipped.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        if value.is_zero() {
            return;
        }
        self.entries.push((row as u32, col as u32, value));
    }

    /// Compresses to CSR, summing duplicates and dropping entries that cancel to
    /// exactly zero.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        // Counting sort by row (stable within a row because we scan in insertion
        // order), then sort each row segment by column and merge duplicates.
        let mut row_counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cols = vec![0u32; self.entries.len()];
        let mut vals = vec![T::ZERO; self.entries.len()];
        let mut cursor = row_counts.clone();
        for &(r, c, v) in &self.entries {
            let idx = cursor[r as usize];
            cols[idx] = c;
            vals[idx] = v;
            cursor[r as usize] += 1;
        }

        // Per-row: sort by column and merge duplicates into fresh output buffers.
        let mut out_indptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        out_indptr.push(0u64);
        let mut scratch: Vec<(u32, T)> = Vec::new();
        for r in 0..self.rows {
            let (start, end) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[start..end]
                    .iter()
                    .copied()
                    .zip(vals[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut acc = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    acc += scratch[i].1;
                    i += 1;
                }
                if !acc.is_zero() {
                    out_cols.push(c);
                    out_vals.push(acc);
                }
            }
            out_indptr.push(out_cols.len() as u64);
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, out_indptr, out_cols, out_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smp_numeric::Complex64;

    #[test]
    fn build_small_matrix() {
        let mut t = TripletMatrix::<f64>::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 1, 5.0);
        t.push(1, 2, 3.0);
        t.push(0, 2, 2.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(0, 1, 0.25);
        t.push(0, 1, 0.5);
        t.push(0, 1, 0.25);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(1, 1, 2.0);
        t.push(1, 1, -2.0);
        t.push(0, 0, 1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn explicit_zeros_are_skipped() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(0, 0, 0.0);
        assert_eq!(t.raw_len(), 0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        let mut t = TripletMatrix::<f64>::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn complex_entries() {
        let mut t = TripletMatrix::<Complex64>::new(2, 2);
        t.push(0, 1, Complex64::new(1.0, -1.0));
        t.push(0, 1, Complex64::new(0.5, 0.5));
        let m = t.to_csr();
        assert_eq!(m.get(0, 1), Complex64::new(1.5, -0.5));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let t = TripletMatrix::<f64>::new(0, 0);
        let m = t.to_csr();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 0);
        assert_eq!(m.nnz(), 0);
    }

    proptest! {
        /// CSR compression preserves the dense sum of all pushed entries per cell.
        #[test]
        fn prop_compression_matches_dense(entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..60))
        {
            let mut dense = [[0.0f64; 8]; 8];
            let mut t = TripletMatrix::<f64>::new(8, 8);
            for &(r, c, v) in &entries {
                dense[r][c] += v;
                t.push(r, c, v);
            }
            let m = t.to_csr();
            for (r, dense_row) in dense.iter().enumerate() {
                for (c, &cell) in dense_row.iter().enumerate() {
                    prop_assert!((m.get(r, c) - cell).abs() < 1e-9);
                }
            }
            // nnz never exceeds number of distinct coordinates pushed
            let mut coords: Vec<(usize,usize)> = entries.iter().map(|&(r,c,_)| (r,c)).collect();
            coords.sort_unstable();
            coords.dedup();
            prop_assert!(m.nnz() <= coords.len());
        }

        /// Row sums of the CSR equal row sums of the raw entry stream.
        #[test]
        fn prop_row_sums_preserved(entries in proptest::collection::vec(
            (0usize..6, 0usize..6, 0.01f64..5.0), 1..40))
        {
            let mut t = TripletMatrix::<f64>::new(6, 6);
            let mut sums = [0.0f64; 6];
            for &(r, c, v) in &entries {
                t.push(r, c, v);
                sums[r] += v;
            }
            let m = t.to_csr();
            for (r, &expected) in sums.iter().enumerate() {
                let row_sum: f64 = m.row(r).map(|(_, v)| v).sum();
                prop_assert!((row_sum - expected).abs() < 1e-9);
            }
        }
    }
}
