//! Scalar abstraction shared by the real and complex sparse matrices.
//!
//! The suite needs exactly two element types: `f64` for the embedded DTMC and
//! probability matrices, and [`Complex64`] for the Laplace-domain matrices `U` and
//! `U'`.  A small local trait keeps [`crate::CsrMatrix`] generic over both without
//! dragging in a full numerical-traits dependency.

use smp_numeric::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Element type usable in a sparse matrix.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Magnitude used for convergence tests and zero-pruning.
    fn magnitude(self) -> f64;

    /// Multiplies by a real scalar.
    fn scale(self, k: f64) -> Self;

    /// True when the magnitude is exactly zero.
    fn is_zero(self) -> bool {
        self.magnitude() == 0.0
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn scale(self, k: f64) -> f64 {
        self * k
    }
}

impl Scalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    const ONE: Complex64 = Complex64::ONE;

    #[inline]
    fn magnitude(self) -> f64 {
        self.norm()
    }

    #[inline]
    fn scale(self, k: f64) -> Complex64 {
        Complex64::new(self.re * k, self.im * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_impl() {
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
        assert_eq!(<f64 as Scalar>::ONE, 1.0);
        assert_eq!((-3.0f64).magnitude(), 3.0);
        assert_eq!(2.0f64.scale(4.0), 8.0);
        assert!(0.0f64.is_zero());
        assert!(!1.0f64.is_zero());
    }

    #[test]
    fn complex_scalar_impl() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.magnitude(), 5.0);
        assert_eq!(z.scale(2.0), Complex64::new(6.0, 8.0));
        assert!(Complex64::ZERO.is_zero());
        assert!(!Complex64::I.is_zero());
    }
}
