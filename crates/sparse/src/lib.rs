//! # smp-sparse
//!
//! Sparse linear algebra over ℝ and ℂ for the semi-Markov passage-time suite.
//!
//! The iterative passage-time algorithm of the paper (Section 3, Eq. 9–10) reduces
//! every `s`-point evaluation to a sequence of sparse **row-vector × matrix**
//! products with complex entries, and the multiple-source weighting (Eq. 5) and the
//! transient/steady-state comparisons need the stationary vector of the embedded
//! DTMC, i.e. sparse **real** computations.  This crate provides both through a
//! single generic compressed-sparse-row matrix type:
//!
//! * [`TripletMatrix`] — a coordinate-format builder that tolerates duplicate and
//!   unsorted insertions (the natural output of state-space exploration).
//! * [`CsrMatrix`] — compressed sparse row storage with row access, row-vector and
//!   column-vector products, scaling, and transposition.  The row-*masked*
//!   products (`vec_mul_into_masked` / `mul_vec_into_masked`) compute against
//!   `U'` — `U` with target rows absorbed — without ever materialising it,
//!   and `values_mut` lets a prebuilt skeleton be refilled per transform
//!   point (the symbolic/numeric split of `smp_core::workspace`).
//! * [`parallel`] — chunked multi-threaded products built on `crossbeam::scope`,
//!   used when a single `s`-point evaluation is large enough to be worth splitting
//!   (the distributed pipeline parallelises across `s`-points first, within one
//!   evaluation second).
//! * [`steady_state`] — power-method and Gauss–Seidel solvers for `π P = π`,
//!   used for the α-weights of Eq. (5) and the steady-state comparison of Fig. 7.
//!
//! Indices are `u32` internally (state spaces of ~10⁶–10⁸ states fit comfortably)
//! which keeps the per-nonzero footprint at 12 bytes for real and 20 bytes for
//! complex matrices.

#![forbid(unsafe_code)]

pub mod csr;
pub mod parallel;
pub mod scalar;
pub mod steady_state;
pub mod triplet;

pub use csr::CsrMatrix;
pub use scalar::Scalar;
pub use steady_state::{gauss_seidel_steady_state, power_method_steady_state, SteadyStateOptions};
pub use triplet::TripletMatrix;
