//! Multi-threaded sparse products.
//!
//! The distributed pipeline parallelises across independent `s`-points first (that is
//! the paper's master–slave design, Section 4), but a *single* `s`-point evaluation on
//! a million-state model is itself dominated by sparse matrix–vector products.  These
//! helpers split such a product over a pool of `crossbeam`-scoped threads.
//!
//! Two orientations are provided:
//!
//! * [`par_mul_vec`] — `y = A·x`, split by output row: embarrassingly parallel, each
//!   thread owns a disjoint slice of `y`.
//! * [`par_vec_mul`] — `y = x·A`, split by input row with per-thread accumulators
//!   that are reduced at the end (a scatter over shared output would race).

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Default number of non-zeros below which the parallel paths fall back to the
/// sequential kernels (thread spawn overhead dominates for small matrices).
pub const PARALLEL_NNZ_THRESHOLD: usize = 1 << 15;

/// Parallel matrix–vector product `y = A·x` using up to `threads` worker threads.
pub fn par_mul_vec<T: Scalar>(a: &CsrMatrix<T>, x: &[T], threads: usize) -> Vec<T> {
    assert_eq!(x.len(), a.cols(), "dimension mismatch in par_mul_vec");
    let threads = threads.max(1);
    if threads == 1 || a.nnz() < PARALLEL_NNZ_THRESHOLD || a.rows() < threads {
        return a.mul_vec(x);
    }
    let rows = a.rows();
    let mut y = vec![T::ZERO; rows];
    let chunk = rows.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (t, out_chunk) in y.chunks_mut(chunk).enumerate() {
            let start_row = t * chunk;
            scope.spawn(move |_| {
                for (offset, out) in out_chunk.iter_mut().enumerate() {
                    let r = start_row + offset;
                    let mut acc = T::ZERO;
                    for (c, v) in a.row(r) {
                        acc += v * x[c];
                    }
                    *out = acc;
                }
            });
        }
    })
    .expect("parallel mul_vec worker panicked");
    y
}

/// Parallel row-vector–matrix product `y = x·A` using up to `threads` worker threads.
pub fn par_vec_mul<T: Scalar>(a: &CsrMatrix<T>, x: &[T], threads: usize) -> Vec<T> {
    assert_eq!(x.len(), a.rows(), "dimension mismatch in par_vec_mul");
    let threads = threads.max(1);
    if threads == 1 || a.nnz() < PARALLEL_NNZ_THRESHOLD || a.rows() < threads {
        return a.vec_mul(x);
    }
    let rows = a.rows();
    let cols = a.cols();
    let chunk = rows.div_ceil(threads);
    let partials: Vec<Vec<T>> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start_row = t * chunk;
            let end_row = ((t + 1) * chunk).min(rows);
            if start_row >= end_row {
                break;
            }
            handles.push(scope.spawn(move |_| {
                let mut local = vec![T::ZERO; cols];
                for (off, &xr) in x[start_row..end_row].iter().enumerate() {
                    if xr.is_zero() {
                        continue;
                    }
                    for (c, v) in a.row(start_row + off) {
                        local[c] += v * xr;
                    }
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("parallel vec_mul scope failed");

    let mut y = vec![T::ZERO; cols];
    for partial in partials {
        for (out, v) in y.iter_mut().zip(partial) {
            *out += v;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use smp_numeric::Complex64;

    fn random_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = TripletMatrix::new(rows, cols);
        for _ in 0..nnz {
            t.push(
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(-1.0..1.0),
            );
        }
        t.to_csr()
    }

    #[test]
    fn parallel_matches_sequential_small() {
        let m = random_matrix(50, 40, 300, 1);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let xr: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_mul_vec(&m, &x, threads), m.mul_vec(&x));
            assert_eq!(par_vec_mul(&m, &xr, threads), m.vec_mul(&xr));
        }
    }

    #[test]
    fn parallel_matches_sequential_above_threshold() {
        // Big enough to take the genuinely threaded path.
        let n = 600;
        let m = random_matrix(n, n, PARALLEL_NNZ_THRESHOLD + 5000, 2);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) / 17.0).collect();
        let seq_col = m.mul_vec(&x);
        let seq_row = m.vec_mul(&x);
        for threads in [2, 3, 8] {
            let par_col = par_mul_vec(&m, &x, threads);
            let par_row = par_vec_mul(&m, &x, threads);
            for (a, b) in par_col.iter().zip(&seq_col) {
                assert!((a - b).abs() < 1e-10);
            }
            for (a, b) in par_row.iter().zip(&seq_row) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn parallel_complex_products() {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = TripletMatrix::<Complex64>::new(n, n);
        for _ in 0..PARALLEL_NNZ_THRESHOLD + 1000 {
            t.push(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            );
        }
        let m = t.to_csr();
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let seq = m.vec_mul(&x);
        let par = par_vec_mul(&m, &x, 4);
        for (a, b) in par.iter().zip(&seq) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn degenerate_thread_counts() {
        let m = random_matrix(10, 10, 30, 4);
        let x = vec![1.0; 10];
        assert_eq!(par_mul_vec(&m, &x, 0), m.mul_vec(&x));
        assert_eq!(par_vec_mul(&m, &x, 100), m.vec_mul(&x));
    }
}
