//! Compressed sparse row matrices.
//!
//! [`CsrMatrix`] is the workhorse of the suite: the one-step transition probability
//! matrix `P` of the embedded DTMC is a real CSR matrix, and every `s`-point
//! evaluation of the iterative passage-time algorithm materialises two complex CSR
//! matrices `U` and `U'` and repeatedly forms row-vector products with them
//! (Eq. 10 of the paper).

use crate::scalar::Scalar;
use crate::triplet::TripletMatrix;

/// An immutable sparse matrix in compressed sparse row format.
///
/// `indptr` has `rows + 1` entries; row `r` occupies the half-open range
/// `indptr[r] .. indptr[r + 1]` of `col_indices` / `values`.  Column indices are
/// sorted and unique within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    col_indices: Vec<u32>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Assembles a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Panics when the parts are structurally inconsistent (wrong `indptr` length,
    /// non-monotone `indptr`, out-of-range column indices or mismatched buffer
    /// lengths).  Column ordering within rows is *not* verified here — the
    /// [`TripletMatrix`] builder guarantees it; `debug_assert`s check it in tests.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows + 1");
        assert_eq!(col_indices.len(), values.len(), "col/value length mismatch");
        assert_eq!(
            *indptr.last().unwrap_or(&0) as usize,
            col_indices.len(),
            "last indptr entry must equal nnz"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr not monotone"
        );
        assert!(
            col_indices
                .iter()
                .all(|&c| (c as usize) < cols || cols == 0),
            "column index out of range"
        );
        #[cfg(debug_assertions)]
        for r in 0..rows {
            let s = indptr[r] as usize;
            let e = indptr[r + 1] as usize;
            debug_assert!(
                col_indices[s..e].windows(2).all(|w| w[0] < w[1]),
                "row {r} columns not strictly increasing"
            );
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            col_indices,
            values,
        }
    }

    /// Builds from an explicit dense matrix (convenience for tests and tiny models).
    pub fn from_dense(dense: &[Vec<T>]) -> Self {
        let rows = dense.len();
        let cols = dense.first().map_or(0, |r| r.len());
        let mut t = TripletMatrix::new(rows, cols);
        for (i, row) in dense.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged dense matrix");
            for (j, &v) in row.iter().enumerate() {
                if !v.is_zero() {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let indptr = (0..=n as u64).collect();
        let col_indices = (0..n as u32).collect();
        let values = vec![T::ONE; n];
        CsrMatrix::from_raw_parts(n, n, indptr, col_indices, values)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored values, in row-major CSR order.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the stored values, in row-major CSR order.
    ///
    /// The sparsity *structure* (`indptr`, `col_indices`) stays fixed — this is
    /// the numeric half of a symbolic/numeric split: a caller that knows the
    /// skeleton can refill the values for a new transform point in place,
    /// without re-sorting triplets or reallocating (see
    /// `smp_core::workspace::PassageWorkspace`).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The row-pointer array (`rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// The column indices, in row-major CSR order.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Approximate heap footprint in bytes (used by the pipeline's memory report).
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.col_indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<T>()
    }

    /// Iterates over `(column, value)` pairs of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let start = self.indptr[r] as usize;
        let end = self.indptr[r + 1] as usize;
        self.col_indices[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.indptr[r + 1] - self.indptr[r]) as usize
    }

    /// Value at `(r, c)`, `T::ZERO` when not stored.  O(log nnz(row)).
    pub fn get(&self, r: usize, c: usize) -> T {
        let start = self.indptr[r] as usize;
        let end = self.indptr[r + 1] as usize;
        match self.col_indices[start..end].binary_search(&(c as u32)) {
            Ok(i) => self.values[start + i],
            Err(_) => T::ZERO,
        }
    }

    /// Sum of each row's stored values.
    pub fn row_sums(&self) -> Vec<T> {
        (0..self.rows)
            .map(|r| {
                let mut acc = T::ZERO;
                for (_, v) in self.row(r) {
                    acc += v;
                }
                acc
            })
            .collect()
    }

    /// Matrix–(column-)vector product `y = A·x`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::ZERO; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// In-place matrix–vector product `y = A·x` writing into a caller-provided
    /// buffer (avoids allocation in the inner loop of the passage-time iteration).
    pub fn mul_vec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec_into");
        assert_eq!(y.len(), self.rows, "output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            let mut acc = T::ZERO;
            for i in start..end {
                acc += self.values[i] * x[self.col_indices[i] as usize];
            }
            *out = acc;
        }
    }

    /// Row-vector–matrix product `y = x·A` (i.e. `y_j = Σ_i x_i A_ij`).
    ///
    /// This is the fundamental operation of Eq. (10): the accumulator row vector is
    /// repeatedly post-multiplied by `U'`.
    pub fn vec_mul(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul");
        let mut y = vec![T::ZERO; self.cols];
        self.vec_mul_into(x, &mut y);
        y
    }

    /// In-place row-vector–matrix product `y = x·A`.
    pub fn vec_mul_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul_into");
        assert_eq!(y.len(), self.cols, "output dimension mismatch");
        for v in y.iter_mut() {
            *v = T::ZERO;
        }
        for (r, &xr) in x.iter().enumerate() {
            if xr.is_zero() {
                continue;
            }
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            for i in start..end {
                y[self.col_indices[i] as usize] += self.values[i] * xr;
            }
        }
    }

    /// In-place matrix–vector product `y = A·x` that *skips* the rows flagged in
    /// `skip_rows` (their outputs are written as `T::ZERO`).
    ///
    /// With `skip_rows` set to a target-state mask this computes `U'·x` directly
    /// from `U` — bitwise identical to materialising `U' = U.zero_rows(mask)`
    /// and calling [`CsrMatrix::mul_vec_into`], because a structurally-removed
    /// row also yields an exact zero, and every kept row accumulates in the
    /// same order.  Halves the memory and build work of the passage-time hot
    /// path (Eq. 9's `U'` never needs to exist).
    pub fn mul_vec_into_masked(&self, x: &[T], y: &mut [T], skip_rows: &[bool]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec_into");
        assert_eq!(y.len(), self.rows, "output dimension mismatch");
        assert_eq!(skip_rows.len(), self.rows, "mask dimension mismatch");
        for r in 0..self.rows {
            if skip_rows[r] {
                y[r] = T::ZERO;
                continue;
            }
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            let mut acc = T::ZERO;
            for (&v, &c) in self.values[start..end]
                .iter()
                .zip(&self.col_indices[start..end])
            {
                acc += v * x[c as usize];
            }
            y[r] = acc;
        }
    }

    /// In-place row-vector–matrix product `y = x·A` that skips the rows flagged
    /// in `skip_rows` (as if those rows of `A` were zero).
    ///
    /// This is the fundamental operation of the passage-time iteration with the
    /// row-masked view of `U'`: bitwise identical to
    /// `U.zero_rows(mask).vec_mul_into(x, y)` — the scatter visits the kept
    /// rows in the same order with the same per-entry arithmetic.
    pub fn vec_mul_into_masked(&self, x: &[T], y: &mut [T], skip_rows: &[bool]) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul_into");
        assert_eq!(y.len(), self.cols, "output dimension mismatch");
        assert_eq!(skip_rows.len(), self.rows, "mask dimension mismatch");
        for v in y.iter_mut() {
            *v = T::ZERO;
        }
        for r in 0..self.rows {
            if skip_rows[r] {
                continue;
            }
            let xr = x[r];
            if xr.is_zero() {
                continue;
            }
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            for (&v, &c) in self.values[start..end]
                .iter()
                .zip(&self.col_indices[start..end])
            {
                y[c as usize] += v * xr;
            }
        }
    }

    /// The `[col_lo, col_hi)` slice of the masked row-vector product
    /// `y = x·A` with the rows flagged in `skip_rows` treated as zero —
    /// i.e. exactly `vec_mul_into_masked`'s output restricted to that column
    /// range, computed without touching the other columns.
    ///
    /// This is the per-shard SpMV kernel of the row-sharded solver: a shard
    /// owning the contiguous column block `[col_lo, col_hi)` of `U'` produces
    /// its slice of the next iterate from the full-length input vector.  Every
    /// output column accumulates its contributions in the same ascending
    /// source-row order as the full scatter (rows it skips contribute exact
    /// zeros there too), so concatenating the shards' slices is **bitwise
    /// identical** to the unsharded product for any shard count.
    pub fn vec_mul_into_masked_range(
        &self,
        x: &[T],
        y: &mut [T],
        skip_rows: &[bool],
        col_lo: usize,
        col_hi: usize,
    ) {
        assert_eq!(x.len(), self.rows, "dimension mismatch in vec_mul_into");
        assert_eq!(skip_rows.len(), self.rows, "mask dimension mismatch");
        assert!(
            col_lo <= col_hi && col_hi <= self.cols,
            "column range out of bounds"
        );
        assert_eq!(y.len(), col_hi - col_lo, "output dimension mismatch");
        for v in y.iter_mut() {
            *v = T::ZERO;
        }
        let (lo, hi) = (col_lo as u32, col_hi as u32);
        for r in 0..self.rows {
            if skip_rows[r] {
                continue;
            }
            let xr = x[r];
            if xr.is_zero() {
                continue;
            }
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            let cols = &self.col_indices[start..end];
            // Columns are sorted within the row: the owned range is one
            // contiguous run of entries.
            let a = start + cols.partition_point(|&c| c < lo);
            let b = start + cols.partition_point(|&c| c < hi);
            for (&v, &c) in self.values[a..b].iter().zip(&self.col_indices[a..b]) {
                y[(c - lo) as usize] += v * xr;
            }
        }
    }

    /// Returns a new matrix with every stored value transformed by `f` (structure is
    /// preserved; `f` must not be relied upon to produce zeros that would need
    /// pruning).
    pub fn map_values<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> CsrMatrix<U> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            col_indices: self.col_indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns a copy with entire rows zeroed out (structurally removed).
    ///
    /// Used to build `U'` from `U`: rows belonging to target states are made
    /// absorbing by deleting their outgoing transitions.
    pub fn zero_rows(&self, rows_to_zero: &[bool]) -> CsrMatrix<T> {
        assert_eq!(rows_to_zero.len(), self.rows);
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut col_indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0u64);
        for (r, &zeroed) in rows_to_zero.iter().enumerate() {
            if !zeroed {
                let start = self.indptr[r] as usize;
                let end = self.indptr[r + 1] as usize;
                col_indices.extend_from_slice(&self.col_indices[start..end]);
                values.extend_from_slice(&self.values[start..end]);
            }
            indptr.push(col_indices.len() as u64);
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            col_indices,
            values,
        }
    }

    /// Transpose (rows become columns).  O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0u64; self.cols + 1];
        for &c in &self.col_indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.rows {
            let start = self.indptr[r] as usize;
            let end = self.indptr[r + 1] as usize;
            for i in start..end {
                let c = self.col_indices[i] as usize;
                let idx = cursor[c] as usize;
                col_indices[idx] = r as u32;
                values[idx] = self.values[i];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr: counts,
            col_indices,
            values,
        }
    }

    /// Converts back to a dense row-major representation (tests and tiny systems
    /// only — panics on matrices with more than 4·10⁶ cells to catch accidents).
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        assert!(
            self.rows.saturating_mul(self.cols) <= 4_000_000,
            "refusing to densify a large sparse matrix"
        );
        let mut dense = vec![vec![T::ZERO; self.cols]; self.rows];
        for (r, dense_row) in dense.iter_mut().enumerate() {
            for (c, v) in self.row(r) {
                dense_row[c] = v;
            }
        }
        dense
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Frobenius-style max-magnitude norm of the stored entries.
    pub fn max_norm(&self) -> f64 {
        self.values
            .iter()
            .map(|v| v.magnitude())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use smp_numeric::Complex64;

    fn sample_matrix() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t.to_csr()
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::<f64>::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x);
        assert_eq!(i.vec_mul(&x), x);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample_matrix();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn vec_mul_matches_dense() {
        let m = sample_matrix();
        let y = m.vec_mul(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![13.0, 6.0, 17.0]);
    }

    #[test]
    fn vec_mul_skips_zero_entries_of_x() {
        let m = sample_matrix();
        let y = m.vec_mul(&[0.0, 0.0, 2.0]);
        assert_eq!(y, vec![8.0, 0.0, 10.0]);
    }

    #[test]
    fn get_and_row_access() {
        let m = sample_matrix();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 0), 0.0);
        let row0: Vec<(usize, f64)> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn row_sums_and_max_norm() {
        let m = sample_matrix();
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.max_norm(), 5.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample_matrix();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn zero_rows_makes_states_absorbing() {
        let m = sample_matrix();
        let z = m.zero_rows(&[false, true, false]);
        assert_eq!(z.row_nnz(1), 0);
        assert_eq!(z.get(0, 0), 1.0);
        assert_eq!(z.get(2, 2), 5.0);
        assert_eq!(z.nnz(), m.nnz() - 1);
    }

    #[test]
    fn masked_products_match_zero_rows_bitwise() {
        let m = sample_matrix();
        let mask = [false, true, false];
        let zeroed = m.zero_rows(&mask);
        let x = vec![1.25, -0.5, 3.0];

        let mut masked = vec![0.0; 3];
        let mut reference = vec![0.0; 3];
        m.vec_mul_into_masked(&x, &mut masked, &mask);
        zeroed.vec_mul_into(&x, &mut reference);
        assert_eq!(masked, reference);

        m.mul_vec_into_masked(&x, &mut masked, &mask);
        zeroed.mul_vec_into(&x, &mut reference);
        assert_eq!(masked, reference);

        // An all-false mask reproduces the unmasked products.
        let none = [false; 3];
        m.vec_mul_into_masked(&x, &mut masked, &none);
        assert_eq!(masked, m.vec_mul(&x));
        m.mul_vec_into_masked(&x, &mut masked, &none);
        assert_eq!(masked, m.mul_vec(&x));
    }

    #[test]
    fn masked_range_product_slices_the_full_product_bitwise() {
        let mut t = TripletMatrix::<Complex64>::new(5, 5);
        for (r, c, re, im) in [
            (0, 1, 0.3, -1.2),
            (0, 4, -2.0, 0.7),
            (1, 0, 1.0, 1.0),
            (1, 2, 0.5, -0.5),
            (2, 3, -0.25, 2.5),
            (3, 3, 4.0, 0.0),
            (3, 4, 0.0, -3.0),
            (4, 0, 1.5, 1.5),
        ] {
            t.push(r, c, Complex64::new(re, im));
        }
        let m = t.to_csr();
        let mask = [false, true, false, false, true];
        let x: Vec<Complex64> = (0..5)
            .map(|k| Complex64::new(0.1 + k as f64, -0.3 * k as f64))
            .collect();
        let mut full = vec![Complex64::ZERO; 5];
        m.vec_mul_into_masked(&x, &mut full, &mask);
        for shards in 1..=4usize {
            let mut concat = Vec::new();
            for k in 0..shards {
                let lo = k * 5 / shards;
                let hi = (k + 1) * 5 / shards;
                let mut slice = vec![Complex64::ZERO; hi - lo];
                m.vec_mul_into_masked_range(&x, &mut slice, &mask, lo, hi);
                concat.extend_from_slice(&slice);
            }
            assert_eq!(concat, full, "shards={shards}");
        }
        // An empty range is allowed (a shard may own zero columns).
        let mut empty: Vec<Complex64> = Vec::new();
        m.vec_mul_into_masked_range(&x, &mut empty, &mask, 3, 3);
    }

    #[test]
    fn values_mut_refills_in_place() {
        let mut m = sample_matrix();
        let before = m.nnz();
        for v in m.values_mut() {
            *v *= 2.0;
        }
        assert_eq!(m.nnz(), before);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.indptr().len(), 4);
        assert_eq!(m.col_indices().len(), before);
        assert_eq!(m.values().len(), before);
    }

    #[test]
    fn map_values_changes_type() {
        let m = sample_matrix();
        let c = m.map_values(|v| Complex64::new(v, -v));
        assert_eq!(c.get(2, 2), Complex64::new(5.0, -5.0));
        assert_eq!(c.nnz(), m.nnz());
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = vec![vec![0.0, 1.5], vec![2.5, 0.0]];
        let m = CsrMatrix::from_dense(&dense);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn memory_bytes_scales_with_nnz() {
        let small = CsrMatrix::<f64>::identity(2);
        let large = CsrMatrix::<f64>::identity(200);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_rejects_wrong_length() {
        sample_matrix().mul_vec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "indptr length")]
    fn from_raw_parts_validates_indptr() {
        CsrMatrix::<f64>::from_raw_parts(2, 2, vec![0, 0], vec![], vec![]);
    }

    #[test]
    fn complex_products() {
        let mut t = TripletMatrix::<Complex64>::new(2, 2);
        t.push(0, 0, Complex64::new(0.0, 1.0));
        t.push(0, 1, Complex64::new(1.0, 0.0));
        t.push(1, 0, Complex64::new(2.0, 0.0));
        let m = t.to_csr();
        let x = vec![Complex64::ONE, Complex64::I];
        let y = m.mul_vec(&x);
        assert_eq!(y[0], Complex64::new(0.0, 2.0));
        assert_eq!(y[1], Complex64::new(2.0, 0.0));
        let z = m.vec_mul(&x);
        assert_eq!(z[0], Complex64::new(0.0, 3.0));
        assert_eq!(z[1], Complex64::ONE);
    }

    proptest! {
        /// x·A computed through vec_mul equals (Aᵀ)·x computed through mul_vec.
        #[test]
        fn prop_vec_mul_equals_transpose_mul_vec(
            entries in proptest::collection::vec((0usize..7, 0usize..7, -3.0f64..3.0), 1..50),
            x in proptest::collection::vec(-2.0f64..2.0, 7))
        {
            let mut t = TripletMatrix::new(7, 7);
            for &(r, c, v) in &entries {
                t.push(r, c, v);
            }
            let m = t.to_csr();
            let a = m.vec_mul(&x);
            let b = m.transpose().mul_vec(&x);
            for (u, v) in a.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-9);
            }
        }

        /// (A·x) matches a dense reference product.
        #[test]
        fn prop_mul_vec_matches_dense(
            entries in proptest::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 1..40),
            x in proptest::collection::vec(-2.0f64..2.0, 6))
        {
            let mut t = TripletMatrix::new(6, 6);
            let mut dense = [[0.0f64; 6]; 6];
            for &(r, c, v) in &entries {
                t.push(r, c, v);
                dense[r][c] += v;
            }
            let m = t.to_csr();
            let y = m.mul_vec(&x);
            for r in 0..6 {
                let expect: f64 = (0..6).map(|c| dense[r][c] * x[c]).sum();
                prop_assert!((y[r] - expect).abs() < 1e-9);
            }
        }

        /// Transposing twice is the identity on the stored structure.
        #[test]
        fn prop_double_transpose_identity(
            entries in proptest::collection::vec((0usize..5, 0usize..9, -5.0f64..5.0), 0..40))
        {
            let mut t = TripletMatrix::new(5, 9);
            for &(r, c, v) in &entries {
                t.push(r, c, v);
            }
            let m = t.to_csr();
            let tt = m.transpose().transpose();
            prop_assert_eq!(m, tt);
        }
    }
}
