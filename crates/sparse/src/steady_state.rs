//! Stationary distributions of discrete-time Markov chains.
//!
//! The passage-time algorithm needs the steady-state vector `π` of the *embedded*
//! DTMC of the semi-Markov process in two places:
//!
//! * the α-weights of Eq. (5) — the probability of being in each source state at the
//!   starting instant of a passage when there are multiple source states;
//! * the SMP steady-state probabilities plotted as the horizontal asymptote of the
//!   transient distribution in Fig. 7 (π weighted by mean sojourn times).
//!
//! Two solvers are provided.  The **damped power method** is simple, allocation-light
//! and — with damping — converges even for periodic chains (the embedded chain of the
//! voting model has strong periodic structure because every transition moves tokens
//! deterministically).  **Gauss–Seidel** solves `π(P - I) = 0` in place and usually
//! converges in far fewer sweeps on stiff chains; it is the default used by the
//! higher-level crates.

use crate::csr::CsrMatrix;

/// Options controlling the iterative steady-state solvers.
#[derive(Debug, Clone, Copy)]
pub struct SteadyStateOptions {
    /// Maximum number of iterations / sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the L1 change between successive iterates.
    pub tolerance: f64,
    /// Damping factor `ω ∈ (0, 1]` for the power method: `π' = (1-ω)π + ω πP`.
    /// `ω < 1` guarantees aperiodicity of the damped chain without changing the
    /// fixed point.
    pub damping: f64,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        SteadyStateOptions {
            max_iterations: 20_000,
            tolerance: 1e-12,
            damping: 0.9,
        }
    }
}

/// Result of a steady-state computation.
#[derive(Debug, Clone)]
pub struct SteadyStateResult {
    /// The stationary probability vector (sums to 1).
    pub pi: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// L1 change of the final iteration.
    pub residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

fn normalise(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v.iter_mut() {
            *x /= total;
        }
    }
}

fn l1_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Validates that `p` is a stochastic matrix (square, rows sum to ~1) and panics with
/// a descriptive message otherwise.  State-space generation bugs show up here first,
/// so the check is always on.
pub fn assert_stochastic(p: &CsrMatrix<f64>, tolerance: f64) {
    assert_eq!(p.rows(), p.cols(), "transition matrix must be square");
    for (r, sum) in p.row_sums().iter().enumerate() {
        assert!(
            (sum - 1.0).abs() <= tolerance,
            "row {r} of transition matrix sums to {sum}, not 1"
        );
    }
}

/// Damped power iteration for `π P = π`.
pub fn power_method_steady_state(
    p: &CsrMatrix<f64>,
    options: &SteadyStateOptions,
) -> SteadyStateResult {
    assert_eq!(p.rows(), p.cols(), "transition matrix must be square");
    let n = p.rows();
    if n == 0 {
        return SteadyStateResult {
            pi: vec![],
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let omega = options.damping.clamp(f64::MIN_POSITIVE, 1.0);
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for iter in 1..=options.max_iterations {
        p.vec_mul_into(&pi, &mut next);
        for i in 0..n {
            next[i] = (1.0 - omega) * pi[i] + omega * next[i];
        }
        normalise(&mut next);
        residual = l1_diff(&pi, &next);
        std::mem::swap(&mut pi, &mut next);
        if residual < options.tolerance {
            return SteadyStateResult {
                pi,
                iterations: iter,
                residual,
                converged: true,
            };
        }
    }
    SteadyStateResult {
        pi,
        iterations: options.max_iterations,
        residual,
        converged: false,
    }
}

/// Gauss–Seidel iteration for `π P = π`.
///
/// Works on the transposed system `Pᵀ πᵀ = πᵀ`: for each state `j`,
/// `π_j ← (Σ_{i≠j} π_i P_ij) / (1 − P_jj)`, sweeping states in order and using the
/// freshest available values.  The vector is re-normalised after every sweep.
pub fn gauss_seidel_steady_state(
    p: &CsrMatrix<f64>,
    options: &SteadyStateOptions,
) -> SteadyStateResult {
    assert_eq!(p.rows(), p.cols(), "transition matrix must be square");
    let n = p.rows();
    if n == 0 {
        return SteadyStateResult {
            pi: vec![],
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    // Column access pattern: build Pᵀ once.
    let pt = p.transpose();
    let mut pi = vec![1.0 / n as f64; n];
    let mut prev = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for iter in 1..=options.max_iterations {
        prev.copy_from_slice(&pi);
        for j in 0..n {
            let mut acc = 0.0;
            let mut diag = 0.0;
            for (i, v) in pt.row(j) {
                if i == j {
                    diag = v;
                } else {
                    acc += pi[i] * v;
                }
            }
            let denom = 1.0 - diag;
            // A state with a self-loop probability of 1 is absorbing; its stationary
            // probability is determined by normalisation, so leave it untouched.
            if denom > 1e-14 {
                pi[j] = acc / denom;
            }
        }
        normalise(&mut pi);
        residual = l1_diff(&prev, &pi);
        if residual < options.tolerance {
            return SteadyStateResult {
                pi,
                iterations: iter,
                residual,
                converged: true,
            };
        }
    }
    SteadyStateResult {
        pi,
        iterations: options.max_iterations,
        residual,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;
    use proptest::prelude::*;

    fn two_state_chain(a: f64, b: f64) -> CsrMatrix<f64> {
        // P = [[1-a, a], [b, 1-b]]  =>  pi = (b, a) / (a + b)
        CsrMatrix::from_dense(&[vec![1.0 - a, a], vec![b, 1.0 - b]])
    }

    #[test]
    fn two_state_analytic_solution() {
        let p = two_state_chain(0.3, 0.1);
        let expect = [0.25, 0.75];
        for result in [
            power_method_steady_state(&p, &SteadyStateOptions::default()),
            gauss_seidel_steady_state(&p, &SteadyStateOptions::default()),
        ] {
            assert!(result.converged);
            for (x, e) in result.pi.iter().zip(expect) {
                assert!((x - e).abs() < 1e-9, "got {:?}", result.pi);
            }
        }
    }

    #[test]
    fn periodic_chain_converges_with_damping() {
        // Pure 2-cycle: undamped power iteration oscillates; damping fixes it.
        let p = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let result = power_method_steady_state(&p, &SteadyStateOptions::default());
        assert!(result.converged);
        assert!((result.pi[0] - 0.5).abs() < 1e-9);
        let gs = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
        assert!(gs.converged);
        assert!((gs.pi[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn three_state_ring_uniform() {
        let p = CsrMatrix::from_dense(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ]);
        let result = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
        for x in &result.pi {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn birth_death_chain_matches_detailed_balance() {
        // Random walk on 0..5 with up-probability 0.4, down 0.6 (reflecting ends).
        let n = 6;
        let up = 0.4;
        let down = 0.6;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            if i == 0 {
                t.push(0, 1, up);
                t.push(0, 0, 1.0 - up);
            } else if i == n - 1 {
                t.push(i, i - 1, down);
                t.push(i, i, 1.0 - down);
            } else {
                t.push(i, i + 1, up);
                t.push(i, i - 1, down);
            }
        }
        let p = t.to_csr();
        assert_stochastic(&p, 1e-12);
        // Detailed balance: pi_{i+1} / pi_i = up / down.
        let result = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
        assert!(result.converged);
        let rho = up / down;
        for i in 0..n - 1 {
            let ratio = result.pi[i + 1] / result.pi[i];
            assert!((ratio - rho).abs() < 1e-7, "ratio {ratio}");
        }
        let total: f64 = result.pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_and_gauss_seidel_agree_on_random_chain() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            // 3 random outgoing transitions per state, normalised.
            let mut targets = vec![];
            let mut weights = vec![];
            for _ in 0..3 {
                targets.push(rng.gen_range(0..n));
                weights.push(rng.gen_range(0.1..1.0));
            }
            let total: f64 = weights.iter().sum();
            for (j, w) in targets.into_iter().zip(weights) {
                t.push(i, j, w / total);
            }
        }
        let p = t.to_csr();
        let a = power_method_steady_state(&p, &SteadyStateOptions::default());
        let b = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
        assert!(a.converged && b.converged);
        for (x, y) in a.pi.iter().zip(&b.pi) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn absorbing_state_chain_handled() {
        // State 1 is absorbing; stationary mass should concentrate there.
        let p = CsrMatrix::from_dense(&[vec![0.5, 0.5], vec![0.0, 1.0]]);
        let result = power_method_steady_state(&p, &SteadyStateOptions::default());
        assert!(result.pi[1] > 0.999);
    }

    #[test]
    fn empty_chain() {
        let p = CsrMatrix::<f64>::from_dense(&[]);
        let r = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
        assert!(r.converged);
        assert!(r.pi.is_empty());
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn assert_stochastic_catches_bad_rows() {
        let p = CsrMatrix::from_dense(&[vec![0.5, 0.2], vec![0.0, 1.0]]);
        assert_stochastic(&p, 1e-9);
    }

    proptest! {
        /// For random *irreducible* stochastic matrices (the paper's SMPs are finite
        /// and irreducible) both solvers produce a probability vector satisfying
        /// ||πP − π||₁ ≈ 0.
        #[test]
        fn prop_fixed_point_property(seed in 0u64..500) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..12);
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                let k = rng.gen_range(1..=n);
                let mut weights = vec![0.0; n];
                for _ in 0..k {
                    weights[rng.gen_range(0..n)] += rng.gen_range(0.05..1.0);
                }
                // Guarantee irreducibility with a ring edge i -> (i+1) mod n.
                weights[(i + 1) % n] += 0.2;
                let total: f64 = weights.iter().sum();
                for (j, w) in weights.iter().enumerate() {
                    if *w > 0.0 {
                        t.push(i, j, w / total);
                    }
                }
            }
            let p = t.to_csr();
            let result = gauss_seidel_steady_state(&p, &SteadyStateOptions::default());
            let repi = p.vec_mul(&result.pi);
            let defect: f64 = repi.iter().zip(&result.pi).map(|(a, b)| (a - b).abs()).sum();
            prop_assert!(defect < 1e-6, "defect {defect}");
            let total: f64 = result.pi.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(result.pi.iter().all(|&x| x >= -1e-12));
        }
    }
}
