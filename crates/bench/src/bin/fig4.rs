//! Fig. 4 — density of the time taken for the voters to pass from p1 to p2,
//! analytic (iterative passage-time algorithm + Euler inversion through the
//! distributed pipeline) against simulation.
//!
//! ```text
//! cargo run -p smp-bench --release --bin fig4 [--system N] [--voters K]
//!     [--points P] [--workers W] [--replications R] [--quick]
//! ```
//!
//! The paper plots system 5 (1.1 million states, 175 voters); generating that
//! instance is supported (`--system 5`) but takes hours on one machine, so the
//! default is a scaled-down instance that exercises exactly the same code path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_bench::{
    build_paper_system, build_scaled_system, grid_around_mean, passage_evaluator, print_columns,
    Args,
};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver, StateSet};
use smp_laplace::InversionMethod;
use smp_pipeline::{DistributedPipeline, PipelineOptions};
use smp_simulator::smp_sim::simulate_smp_passage_times;

fn main() {
    let args = Args::from_env();
    let system = if args.flag("scaled") || args.value_or("system", -1i64) < 0 {
        build_scaled_system()
    } else {
        build_paper_system(args.value_or("system", 0u32))
    };
    let config = system.config();
    let voters = args.value_or("voters", config.voters);
    let points = if args.flag("quick") {
        12
    } else {
        args.value_or("points", 30usize)
    };
    let workers = args.value_or("workers", 4usize);
    let replications = args.value_or("replications", 20_000usize);

    println!(
        "# Fig 4: density of the time for {voters} voters to pass p1 -> p2 ({} states)",
        system.num_states()
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(voters);
    assert!(!targets.is_empty(), "no target states: lower --voters");

    // Centre the time grid on the analytic mean passage time (from L'(0)).
    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis setup");
    let mean = analysis
        .mean_from_transform(1e-6)
        .expect("mean passage time");
    println!("# analytic mean passage time: {mean:.3}");
    let t_points = grid_around_mean(mean, 0.3, 2.0, points);

    // Analytic curve through the distributed pipeline (Euler inversion).
    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver setup");
    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions::with_workers(workers),
    );
    let result = pipeline
        .run(passage_evaluator(&solver), &t_points)
        .expect("pipeline run failed");
    println!(
        "# pipeline: {} s-point evaluations on {} workers in {:.2}s",
        result.evaluations,
        workers,
        result.elapsed.as_secs_f64()
    );

    // Simulation of the same passage on the generated SMP.
    let target_set = StateSet::new(smp.num_states(), &targets).expect("target set");
    let mut rng = StdRng::seed_from_u64(2003);
    let simulated =
        simulate_smp_passage_times(smp, source, &target_set, replications, 50_000_000, &mut rng);
    let sim_density = simulated.kernel_density(&t_points);
    println!(
        "# simulation: {} replications, sample mean {:.3}",
        simulated.len(),
        simulated.mean()
    );

    let rows: Vec<Vec<f64>> = t_points
        .iter()
        .zip(result.values.iter())
        .zip(sim_density.iter())
        .map(|((t, a), s)| vec![*t, a.max(0.0), *s])
        .collect();
    print_columns(&["t", "analytic_density", "simulated_density"], &rows);
}
