//! Table 1 — sizes of the underlying SMP for voting-system configurations 0–5.
//!
//! ```text
//! cargo run -p smp-bench --release --bin table1 [--full] [--systems 0,1,2]
//! ```
//!
//! By default systems 0–2 are generated end-to-end (reachability analysis of the
//! SM-SPN) and systems 3–5 are reported through the structural bound only; `--full`
//! generates all six (system 5 has ~1.1 million states and takes a few minutes).

use smp_bench::Args;
use smp_voting::{configs, VotingSystem};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let explore: Vec<usize> = if args.flag("full") {
        vec![0, 1, 2, 3, 4, 5]
    } else {
        args.list_or("systems", &[0, 1, 2])
    };

    println!("# Table 1: voting system state-space sizes (paper vs generated)");
    println!(
        "{:<8}{:>6}{:>6}{:>6}{:>14}{:>14}{:>14}{:>10}{:>10}",
        "system", "CC", "MM", "NN", "paper", "generated", "bound", "diff%", "secs"
    );
    for system in configs::paper_systems() {
        let cfg = system.config;
        let bound = system.structural_bound();
        if explore.contains(&(system.id as usize)) {
            let started = Instant::now();
            let built = VotingSystem::build(cfg).expect("state-space generation failed");
            let elapsed = started.elapsed().as_secs_f64();
            let generated = built.num_states() as u64;
            let diff = 100.0 * (generated as f64 - system.paper_states as f64)
                / system.paper_states as f64;
            println!(
                "{:<8}{:>6}{:>6}{:>6}{:>14}{:>14}{:>14}{:>10.2}{:>10.2}",
                system.id,
                cfg.voters,
                cfg.polling_units,
                cfg.central_units,
                system.paper_states,
                generated,
                bound,
                diff,
                elapsed
            );
        } else {
            println!(
                "{:<8}{:>6}{:>6}{:>6}{:>14}{:>14}{:>14}{:>10}{:>10}",
                system.id,
                cfg.voters,
                cfg.polling_units,
                cfg.central_units,
                system.paper_states,
                "(skipped)",
                bound,
                "-",
                "-"
            );
        }
    }
    println!("# 'bound' is the invariant-based count (CC+1)*C(MM+2,2)*(NN+1); pass --full to generate systems 3-5 too");
}
