//! Hot-path benchmark: the symbolic/numeric split (`PassageWorkspace`)
//! against the legacy build-per-point evaluation, per `s`-point.
//!
//! ```text
//! cargo run -p smp-bench --release --bin bench_hotpath
//!     [-- --quick | --full | --system N] [--points P] [--threads T] [--check-only]
//! ```
//!
//! For each voting-model configuration the harness evaluates the same Euler
//! `s`-points through both paths, asserts **bitwise identity** of every
//! transform value and iteration count (the binary exits non-zero on any
//! mismatch — this is the CI perf-smoke equivalence gate), and reports:
//!
//! * median wall time per `s`-point, legacy vs workspace, and the speedup;
//! * an allocation proxy per `s`-point: the bytes of matrix/scratch state the
//!   legacy path allocates and frees at *every* point, all of which the
//!   workspace allocates once per `(model, target set)` and then reuses;
//! * the `HotPathStats` counters (rebuilds avoided, pooled LST evaluations).
//!
//! The default ladder is the scaled demo system plus paper system 0; `--full`
//! adds system 1 (106K states); `--system N` runs exactly one paper system
//! (up to 5, the paper's 1.1M-state configuration — expect a long state-space
//! generation for 3+).  `--check-only` skips the timing loops' extra
//! repetitions (CI asserts equivalence, not timings).  Emits
//! `BENCH_hotpath.json` in the working directory and echoes it to stdout.

use smp_bench::{build_paper_system, grid_around_mean, Args};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver};
use smp_laplace::{InversionMethod, SPointPlan};
use smp_voting::{VotingConfig, VotingSystem};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    label: String,
    states: usize,
    transitions: usize,
    points: usize,
    avg_iterations: usize,
    legacy_ms: f64,
    workspace_ms: f64,
    speedup: f64,
    legacy_alloc_bytes_per_point: usize,
    workspace_alloc_bytes_per_point: usize,
    rebuilds_avoided: u64,
    pooled_lst_evaluations: u64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_system(label: &str, system: &VotingSystem, points: usize, threads: usize) -> Row {
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(system.config().voters);
    assert!(!targets.is_empty(), "no target states for {label}");

    // Centre the probed Euler s-points on the passage's own time scale.
    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis");
    let mean = analysis.mean_from_transform(1e-6).expect("mean");
    let t_points = grid_around_mean(mean, 0.3, 2.0, 8.max(points / 4));
    let plan = SPointPlan::new(InversionMethod::euler(), &t_points);
    let probe: Vec<_> = plan.s_points().iter().copied().take(points).collect();

    let solver = PassageTimeSolver::new(smp, &[source], &targets)
        .expect("solver")
        .with_intra_point_threads(threads);

    // Warm both paths once (skeleton build, caches).
    let mut ws = solver.checkout_workspace();
    solver.transform_at_with(&mut ws, probe[0]).expect("warmup");
    let _ = solver.transform_at_legacy(probe[0]).expect("warmup");

    let mut legacy_samples = Vec::with_capacity(probe.len());
    let mut workspace_samples = Vec::with_capacity(probe.len());
    let mut iterations = 0usize;
    for &s in &probe {
        let t0 = Instant::now();
        let legacy = solver.transform_at_legacy(s).expect("legacy eval");
        legacy_samples.push(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let fast = solver
            .transform_at_with(&mut ws, s)
            .expect("workspace eval");
        workspace_samples.push(t1.elapsed().as_secs_f64());

        // The acceptance gate: bitwise identity on every measured point.
        assert_eq!(
            legacy.value, fast.value,
            "BITWISE MISMATCH at s = {s} on {label}"
        );
        assert_eq!(
            legacy.iterations, fast.iterations,
            "iteration-count mismatch at s = {s} on {label}"
        );
        iterations += fast.iterations;
    }
    solver.give_back(ws);

    // Allocation proxy: what the legacy path allocates and frees per point —
    // the U triplets (24 B per raw entry), the (U, U') CSR pair, the complex
    // α vector and three n-length iteration vectors — versus the workspace
    // path, which allocates nothing after its one-time construction.
    let n = smp.num_states();
    let nnz = smp.num_transitions();
    let csr_bytes = (n + 1) * 8 + nnz * (4 + 16);
    let legacy_alloc = nnz * 24 + 2 * csr_bytes + 4 * n * 16;

    let stats = solver.hotpath_stats();
    Row {
        label: label.to_string(),
        states: n,
        transitions: nnz,
        points: probe.len(),
        avg_iterations: iterations / probe.len(),
        legacy_ms: 1e3 * median(&mut legacy_samples),
        workspace_ms: 1e3 * median(&mut workspace_samples),
        speedup: median(&mut legacy_samples) / median(&mut workspace_samples),
        legacy_alloc_bytes_per_point: legacy_alloc,
        workspace_alloc_bytes_per_point: 0,
        rebuilds_avoided: stats.matrix_rebuilds_avoided,
        pooled_lst_evaluations: stats.pooled_lst_evaluations,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick") || args.flag("check-only");
    let full = args.flag("full");
    let points = args.value_or(
        "points",
        if args.flag("check-only") {
            6
        } else if quick {
            8
        } else {
            12
        },
    );
    let threads = args.value_or("threads", 1usize);

    let mut systems: Vec<(String, VotingSystem)> = Vec::new();
    let chosen = args.value_or("system", -1i64);
    if chosen >= 0 {
        let system = build_paper_system(chosen as u32);
        systems.push((format!("voting-system-{chosen}"), system));
    } else {
        systems.push((
            "voting-scaled-8,3,2".to_string(),
            VotingSystem::build(VotingConfig::new(8, 3, 2)).expect("scaled build"),
        ));
        systems.push(("voting-system-0".to_string(), build_paper_system(0)));
        if full {
            systems.push(("voting-system-1".to_string(), build_paper_system(1)));
        }
    }

    let mut rows = Vec::new();
    for (label, system) in &systems {
        eprintln!("# benchmarking {label} ({} states)…", system.num_states());
        let row = bench_system(label, system, points, threads);
        eprintln!(
            "#   legacy {:.3} ms/point, workspace {:.3} ms/point → {:.2}x (r̄ = {}, bitwise ok)",
            row.legacy_ms, row.workspace_ms, row.speedup, row.avg_iterations
        );
        rows.push(row);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"hotpath\",");
    let _ = writeln!(
        json,
        "  \"description\": \"symbolic/numeric split vs legacy build-per-point, per s-point\","
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"bitwise_identical\": true,");
    let _ = writeln!(json, "  \"systems\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"states\": {}, \"transitions\": {}, \
\"s_points\": {}, \"avg_iterations\": {}, \"legacy_ms_per_point\": {:.4}, \
\"workspace_ms_per_point\": {:.4}, \"speedup\": {:.3}, \
\"legacy_alloc_bytes_per_point\": {}, \"workspace_alloc_bytes_per_point\": {}, \
\"matrix_rebuilds_avoided\": {}, \"pooled_lst_evaluations\": {}}}{comma}",
            row.label,
            row.states,
            row.transitions,
            row.points,
            row.avg_iterations,
            row.legacy_ms,
            row.workspace_ms,
            row.speedup,
            row.legacy_alloc_bytes_per_point,
            row.workspace_alloc_bytes_per_point,
            row.rebuilds_avoided,
            row.pooled_lst_evaluations,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    print!("{json}");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    eprintln!("wrote BENCH_hotpath.json");
}
