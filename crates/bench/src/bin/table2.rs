//! Table 2 — time, speedup and efficiency of the distributed analysis pipeline for
//! an increasing number of workers, computing a passage time at 5 t-points with
//! Euler inversion (the paper's protocol: system 1, 165 s-point evaluations, 1–32
//! slave processors).
//!
//! ```text
//! cargo run -p smp-bench --release --bin table2 [--system 0] [--voters K]
//!     [--workers 1,2,4,8,16,32] [--latency-ms L]
//! ```
//!
//! Absolute times differ from the paper (different hardware, thread workers instead
//! of cluster nodes); the quantity being reproduced is the *shape*: near-linear
//! speedup that tapers as the per-worker share of the fixed-size work queue shrinks
//! (and, on this machine, once the worker count exceeds the physical core count).

use smp_bench::{build_paper_system, build_scaled_system, passage_evaluator, Args};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver};
use smp_laplace::InversionMethod;
use smp_pipeline::run_scalability_sweep;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let system = if args.value_or("system", -1i64) >= 0 {
        build_paper_system(args.value_or("system", 0u32))
    } else {
        build_scaled_system()
    };
    let config = system.config();
    let voters = args.value_or("voters", config.voters);
    let worker_counts = args.list_or("workers", &[1, 2, 4, 8, 16, 32]);
    let latency_ms = args.value_or("latency-ms", 0u64);
    let latency = if latency_ms > 0 {
        Some(Duration::from_millis(latency_ms))
    } else {
        None
    };

    println!(
        "# Table 2: pipeline scalability, {} states, passage of {voters} voters, 5 t-points, Euler inversion",
        system.num_states()
    );
    println!(
        "# available parallelism on this host: {} cores",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(voters);
    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis setup");
    let mean = analysis
        .mean_from_transform(1e-6)
        .expect("mean passage time");
    // 5 t-points, as in the paper's Table 2 workload.
    let t_points: Vec<f64> = (1..=5).map(|k| mean * 0.4 * k as f64).collect();

    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver setup");
    let rows = run_scalability_sweep(
        InversionMethod::euler(),
        passage_evaluator(&solver),
        &t_points,
        &worker_counts,
        latency,
    )
    .expect("scalability sweep failed");

    println!(
        "{:>6}  {:>10}  {:>8}  {:>10}  {:>8}  {:>10}  ({} s-point evaluations per run, {} backend)",
        "slaves",
        "time(s)",
        "speedup",
        "efficiency",
        "messages",
        "wire-B",
        rows[0].evaluations,
        rows[0].backend
    );
    for row in &rows {
        println!("{}", row.formatted());
    }
}
