//! Fig. 7 — transient distribution for the transit of 5 voters from the initial
//! marking into place p2, plotted against its steady-state value.
//!
//! ```text
//! cargo run -p smp-bench --release --bin fig7 [--system 0 | --scaled]
//!     [--voters K] [--points P] [--horizon T]
//! ```
//!
//! The transient computation needs one vector-valued passage solve per target state
//! per `s`-point (Eq. 7 of the paper), so the default uses the scaled-down instance;
//! `--system 0` runs the paper's 2 061-state configuration.

use smp_bench::{build_paper_system, build_scaled_system, print_columns, Args};
use smp_core::TransientAnalysis;
use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;

fn main() {
    let args = Args::from_env();
    let system = if args.value_or("system", -1i64) >= 0 && !args.flag("scaled") {
        build_paper_system(args.value_or("system", 0u32))
    } else {
        build_scaled_system()
    };
    let voters = args.value_or("voters", 5u32);
    let points = args.value_or("points", 14usize);
    let horizon = args.value_or("horizon", 80.0f64);

    println!(
        "# Fig 7: transient distribution of 'at least {voters} voters have voted' ({} states)",
        system.num_states()
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(voters);
    println!("# target set: {} states", targets.len());

    let analysis = TransientAnalysis::new(smp, source, &targets).expect("analysis setup");
    let steady = analysis.steady_state_value().expect("steady-state value");
    let t_points = linspace(horizon / points as f64, horizon, points);
    let curve = analysis
        .distribution(InversionMethod::euler(), &t_points)
        .expect("transient inversion failed");

    let rows: Vec<Vec<f64>> = curve.iter().map(|(t, p)| vec![t, p, steady]).collect();
    print_columns(&["t", "transient_probability", "steady_state"], &rows);
    println!("# steady-state probability of the target set: {steady:.6}");
    println!(
        "# transient at t = {horizon}: {:.6} (should approach the steady-state line)",
        curve.values().last().unwrap()
    );
}
