//! Fig. 5 — cumulative distribution function of the voter-throughput passage and
//! the response-time quantile read off it (the paper quotes
//! `P(system 5 processes 175 voters in under 440 s) = 0.9858`).
//!
//! ```text
//! cargo run -p smp-bench --release --bin fig5 [--system N] [--voters K]
//!     [--points P] [--workers W] [--quantile Q]
//! ```

use smp_bench::{
    build_paper_system, build_scaled_system, grid_around_mean, passage_evaluator, print_columns,
    Args,
};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver};
use smp_laplace::{CdfCurve, InversionMethod};
use smp_pipeline::{DistributedPipeline, PipelineOptions};

fn main() {
    let args = Args::from_env();
    let system = if args.flag("scaled") || args.value_or("system", -1i64) < 0 {
        build_scaled_system()
    } else {
        build_paper_system(args.value_or("system", 0u32))
    };
    let config = system.config();
    let voters = args.value_or("voters", config.voters);
    let points = args.value_or("points", 40usize);
    let workers = args.value_or("workers", 4usize);
    let quantile_level = args.value_or("quantile", 0.9858f64);

    println!(
        "# Fig 5: cumulative passage-time distribution for {voters} voters ({} states)",
        system.num_states()
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(voters);
    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis setup");
    let mean = analysis
        .mean_from_transform(1e-6)
        .expect("mean passage time");
    let t_points = grid_around_mean(mean, 0.3, 2.5, points);

    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver setup");
    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions::with_workers(workers),
    );
    let result = pipeline
        .run_cdf(passage_evaluator(&solver), &t_points)
        .expect("pipeline run failed");

    let curve = CdfCurve::from_samples(t_points.clone(), result.values.clone());
    let rows: Vec<Vec<f64>> = curve.iter().map(|(t, p)| vec![t, p]).collect();
    print_columns(&["t", "cdf"], &rows);

    if let Some(q) = curve.quantile(quantile_level) {
        println!("# P(passage completes in under {q:.3}) = {quantile_level}");
    } else {
        println!("# quantile {quantile_level} not reached within the plotted window");
    }
    let deadline = *t_points.last().unwrap();
    println!(
        "# P(passage completes in under {deadline:.3}) = {:.4}",
        curve.probability_at(deadline)
    );
}
