//! Fig. 6 — density of the time from the fully-operational initial marking to a
//! complete failure mode (all polling units failed or all central voting units
//! failed), analytic against simulation, on system 0 (2 061 states).
//!
//! The paper notes that for the larger systems "the probabilities ... were so small
//! that the simulator was not able to register any meaningful distribution", which
//! is why the failure-mode experiment uses the smallest system — analytic
//! techniques shine exactly where rare events starve a simulator.  The harness
//! reproduces that set-up; because the paper does not print its failure/repair
//! distribution parameters, a failure-prone parameter set (documented in
//! `EXPERIMENTS.md`) is used so that both the analytic and the simulated curve are
//! visible on the same axes.
//!
//! ```text
//! cargo run -p smp-bench --release --bin fig6 [--system 0] [--points P]
//!     [--workers W] [--replications R]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_bench::{grid_around_mean, passage_evaluator, print_columns, Args};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver, StateSet};
use smp_distributions::Dist;
use smp_laplace::InversionMethod;
use smp_pipeline::{DistributedPipeline, PipelineOptions};
use smp_simulator::smp_sim::simulate_smp_passage_times;
use smp_smspn::ReachabilityOptions;
use smp_voting::model::VotingDistributions;
use smp_voting::{configs, VotingSystem};

fn failure_prone_distributions() -> VotingDistributions {
    VotingDistributions {
        // Units fail often and self-recover slowly, so that complete failure happens
        // on the tens-of-seconds scale of the paper's Fig. 6.
        polling_failure: Dist::exponential(0.6),
        central_failure: Dist::exponential(0.4),
        polling_self_recovery: Dist::uniform(1.0, 4.0),
        central_self_recovery: Dist::uniform(1.0, 4.0),
        // Breakdown transitions are also *selected* more often (weights of t3/t4
        // raised relative to the voting traffic).
        weights: [20.0, 20.0, 6.0, 4.0, 1.0, 1.0, 2.0, 2.0, 0.5],
        ..VotingDistributions::default()
    }
}

fn main() {
    let args = Args::from_env();
    let id = args.value_or("system", 0u32);
    let points = args.value_or("points", 30usize);
    let workers = args.value_or("workers", 4usize);
    let replications = args.value_or("replications", 20_000usize);

    let paper = configs::paper_system(id).expect("unknown system id");
    let system = VotingSystem::build_with(
        paper.config,
        &failure_prone_distributions(),
        &ReachabilityOptions::default(),
    )
    .expect("state-space generation failed");
    println!(
        "# Fig 6: failure-mode passage density, system {id} ({} states, paper reports {})",
        system.num_states(),
        paper.paper_states
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.failure_mode_states();
    println!("# failure-mode target set: {} states", targets.len());

    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis setup");
    let mean = analysis
        .mean_from_transform(1e-6)
        .expect("mean time to failure");
    println!("# analytic mean time to complete failure: {mean:.3}");
    let t_points = grid_around_mean(mean, 0.05, 3.0, points);

    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver setup");
    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions::with_workers(workers),
    );
    let result = pipeline
        .run(passage_evaluator(&solver), &t_points)
        .expect("pipeline run failed");
    println!(
        "# pipeline: {} s-point evaluations in {:.2}s",
        result.evaluations,
        result.elapsed.as_secs_f64()
    );

    let target_set = StateSet::new(smp.num_states(), &targets).expect("target set");
    let mut rng = StdRng::seed_from_u64(1926);
    let simulated =
        simulate_smp_passage_times(smp, source, &target_set, replications, 10_000_000, &mut rng);
    println!(
        "# simulation: {} replications registered, sample mean {:.3}",
        simulated.len(),
        simulated.mean()
    );
    let sim_density = simulated.kernel_density(&t_points);

    let rows: Vec<Vec<f64>> = t_points
        .iter()
        .zip(result.values.iter())
        .zip(sim_density.iter())
        .map(|((t, a), s)| vec![*t, a.max(0.0), *s])
        .collect();
    print_columns(&["t", "analytic_density", "simulated_density"], &rows);
}
