//! Engine benchmark: the same measure batch through the analytic, simulation
//! and distributed engines, with machine-readable output for the perf
//! trajectory.
//!
//! ```text
//! cargo run -p smp-bench --release --bin bench_engines [-- --voting CC,MM,NN --quick]
//! ```
//!
//! Emits `BENCH_engines.json` in the working directory (and echoes it to
//! stdout): per-engine wall time, wire traffic and evaluation counts for a
//! batch of one CDF, one transient and one three-probability quantile measure
//! on the voting model.  The distributed engine runs over the in-process
//! transport here; its bytes-on-wire column becomes non-zero under the
//! sim-latency or TCP backends (see `table2`/`smpq`).

use smp_bench::Args;
use smp_core::query::{Engine, MeasureRequest, TargetSpec};
use smp_laplace::InversionMethod;
use smp_numeric::stats::linspace;
use smp_pipeline::{
    AnalyticEngine, DistributedEngine, ModelSpec, PipelineOptions, SimulationEngine,
    SimulationOptions,
};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    engine: &'static str,
    backend: String,
    wall_s: f64,
    messages: usize,
    bytes_on_wire: u64,
    evaluations: usize,
}

fn measure(engine: &dyn Engine, requests: &[MeasureRequest]) -> Row {
    let started = Instant::now();
    let reports = engine.solve(requests).expect("engine solve");
    let wall_s = started.elapsed().as_secs_f64();
    Row {
        engine: engine.name(),
        backend: reports
            .first()
            .map(|r| r.provenance.backend.clone())
            .unwrap_or_default(),
        wall_s,
        messages: reports.iter().map(|r| r.provenance.messages).sum(),
        bytes_on_wire: reports.iter().map(|r| r.provenance.bytes_on_wire).sum(),
        evaluations: reports.iter().map(|r| r.provenance.evaluations).sum(),
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let voting_flag = args.value_or::<String>("voting", String::new());
    let (voters, polling, central) = if voting_flag.is_empty() {
        if quick {
            (3, 1, 1)
        } else {
            (5, 2, 2)
        }
    } else {
        let parts: Vec<u32> = voting_flag
            .split(',')
            .map(|p| p.trim().parse().expect("--voting expects integers"))
            .collect();
        assert_eq!(parts.len(), 3, "--voting expects CC,MM,NN");
        (parts[0], parts[1], parts[2])
    };
    let model = ModelSpec::Voting {
        voters,
        polling,
        central,
    };
    let replications = if quick { 2_000 } else { 10_000 };
    let workers = 4usize;

    let ts = linspace(2.0, 60.0, if quick { 6 } else { 12 });
    let target = TargetSpec::parse("p2>=3").expect("target");
    let requests = vec![
        MeasureRequest::cdf(target.clone(), &ts),
        MeasureRequest::transient(target.clone(), &ts),
        MeasureRequest::quantile(target, &[0.5, 0.9, 0.99]).with_t_points(&ts),
    ];

    let rows = [
        measure(
            &AnalyticEngine::new(model.clone(), InversionMethod::euler()),
            &requests,
        ),
        measure(
            &SimulationEngine::new(
                model.clone(),
                SimulationOptions {
                    replications,
                    threads: workers,
                    ..Default::default()
                },
            ),
            &requests,
        ),
        measure(
            &DistributedEngine::in_process(
                model.clone(),
                InversionMethod::euler(),
                PipelineOptions::with_workers(workers),
            ),
            &requests,
        ),
        measure(
            &DistributedEngine::in_process(
                model.clone(),
                InversionMethod::euler(),
                PipelineOptions {
                    workers,
                    simulated_latency: Some(std::time::Duration::from_micros(100)),
                    ..Default::default()
                },
            ),
            &requests,
        ),
    ];

    // Hand-rolled JSON (no serde_json in the vendored set); the schema is
    // flat on purpose so CI trend tooling can diff it.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"model\": \"voting:{voters},{polling},{central}\","
    );
    let _ = writeln!(
        json,
        "  \"measures\": [\"cdf:p2>=3\", \"transient:p2>=3\", \"quantile:p2>=3@0.5,0.9,0.99\"],"
    );
    let _ = writeln!(json, "  \"replications\": {replications},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"engines\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"backend\": \"{}\", \"wall_s\": {:.6}, \
\"messages\": {}, \"bytes_on_wire\": {}, \"evaluations\": {}}}{comma}",
            row.engine, row.backend, row.wall_s, row.messages, row.bytes_on_wire, row.evaluations
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    print!("{json}");
    std::fs::write("BENCH_engines.json", &json).expect("write BENCH_engines.json");
    eprintln!("wrote BENCH_engines.json");
}
