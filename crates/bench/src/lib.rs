//! # smp-bench
//!
//! Experiment harnesses and Criterion benchmarks that regenerate every table and
//! figure of the paper's evaluation section (Section 5.3).  The mapping from
//! experiments to binaries is recorded in the workspace `README.md` and the
//! measured results in
//! `EXPERIMENTS.md`.
//!
//! Binaries (`cargo run -p smp-bench --release --bin <name>`):
//!
//! | binary  | reproduces | notes |
//! |---------|------------|-------|
//! | `table1`| Table 1 — state-space sizes of voting systems 0–5 | `--full` explores all six systems; the default explores 0–2 and bound-checks the rest |
//! | `fig4`  | Fig. 4 — voter-passage density, analytic vs simulation | `--system N`, `--voters K`, `--quick` |
//! | `fig5`  | Fig. 5 — cumulative distribution + response-time quantile | same flags as `fig4` |
//! | `fig6`  | Fig. 6 — failure-mode passage density, analytic vs simulation | `--system N` |
//! | `fig7`  | Fig. 7 — transient vs steady state for the transit of 5 voters | `--scaled` (default) or `--system 0` |
//! | `table2`| Table 2 — time / speedup / efficiency vs number of workers | `--system N`, `--workers a,b,c` |
//!
//! The shared plumbing in this library keeps the binaries small: argument parsing,
//! system construction, evaluator closures and column printing.

use smp_core::{PassageTimeSolver, SmpError};
use smp_numeric::Complex64;
use smp_voting::{configs, VotingConfig, VotingSystem};

/// Minimal command-line flag reader (`--name value` and bare `--flag` switches) so
/// the harness binaries do not need an argument-parsing dependency.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// True when the bare flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let needle = format!("--{name}");
        self.raw.iter().any(|a| a == &needle)
    }

    /// The value following `--name`, parsed, or `default` when absent.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let needle = format!("--{name}");
        for (i, a) in self.raw.iter().enumerate() {
            if a == &needle {
                if let Some(v) = self.raw.get(i + 1) {
                    if let Ok(parsed) = v.parse() {
                        return parsed;
                    }
                }
            }
        }
        default
    }

    /// A comma-separated list following `--name`, or `default` when absent.
    pub fn list_or(&self, name: &str, default: &[usize]) -> Vec<usize> {
        let needle = format!("--{name}");
        for (i, a) in self.raw.iter().enumerate() {
            if a == &needle {
                if let Some(v) = self.raw.get(i + 1) {
                    let parsed: Vec<usize> =
                        v.split(',').filter_map(|p| p.trim().parse().ok()).collect();
                    if !parsed.is_empty() {
                        return parsed;
                    }
                }
            }
        }
        default.to_vec()
    }
}

/// Builds one of the paper's systems (Table 1) by number.
pub fn build_paper_system(id: u32) -> VotingSystem {
    let system = configs::paper_system(id)
        .unwrap_or_else(|| panic!("unknown paper system {id} (valid: 0-5)"));
    println!(
        "# building system {id}: CC={} MM={} NN={} (paper reports {} states)",
        system.config.voters,
        system.config.polling_units,
        system.config.central_units,
        system.paper_states
    );
    VotingSystem::build(system.config).expect("state-space generation failed")
}

/// Builds a deliberately small voting instance for quick demonstration runs.
pub fn build_scaled_system() -> VotingSystem {
    VotingSystem::build(VotingConfig::new(8, 3, 2)).expect("state-space generation failed")
}

/// Wraps a passage-time solver as the `Fn(Complex64) -> Result<...>` evaluator
/// expected by the distributed pipeline.
pub fn passage_evaluator<'a>(
    solver: &'a PassageTimeSolver<'a>,
) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync + 'a {
    move |s| {
        solver
            .transform_at(s)
            .map(|p| p.value)
            .map_err(|e: SmpError| e.to_string())
    }
}

/// Prints aligned data columns with a `#`-prefixed header (gnuplot-friendly, like
/// the data behind the paper's figures).
pub fn print_columns(header: &[&str], rows: &[Vec<f64>]) {
    println!("# {}", header.join("\t"));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6}")).collect();
        println!("{}", cells.join("\t"));
    }
}

/// Chooses a sensible time grid around a passage's mean: `[lo_frac·mean,
/// hi_frac·mean]` with `points` samples.
pub fn grid_around_mean(mean: f64, lo_frac: f64, hi_frac: f64, points: usize) -> Vec<f64> {
    assert!(mean > 0.0 && lo_frac > 0.0 && hi_frac > lo_frac && points >= 2);
    smp_numeric::stats::linspace(mean * lo_frac, mean * hi_frac, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_values_and_lists() {
        let args = Args::from_vec(vec![
            "--full".into(),
            "--system".into(),
            "3".into(),
            "--workers".into(),
            "1,2,4".into(),
        ]);
        assert!(args.flag("full"));
        assert!(!args.flag("quick"));
        assert_eq!(args.value_or("system", 0u32), 3);
        assert_eq!(args.value_or("voters", 18u32), 18);
        assert_eq!(args.list_or("workers", &[1]), vec![1, 2, 4]);
        assert_eq!(args.list_or("threads", &[1, 8]), vec![1, 8]);
    }

    #[test]
    fn scaled_system_is_small_but_nontrivial() {
        let sys = build_scaled_system();
        assert!(sys.num_states() > 50);
        assert!(sys.num_states() < 1_000);
    }

    #[test]
    fn grid_spans_requested_multiples() {
        let g = grid_around_mean(10.0, 0.5, 2.0, 4);
        assert_eq!(g.first().copied(), Some(5.0));
        assert_eq!(g.last().copied(), Some(20.0));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn passage_evaluator_reports_values() {
        let sys = build_scaled_system();
        let targets = sys.states_with_voted_at_least(2);
        let solver = PassageTimeSolver::new(sys.smp(), &[sys.initial_state()], &targets).unwrap();
        let eval = passage_evaluator(&solver);
        let v = eval(Complex64::new(0.5, 1.0)).unwrap();
        assert!(v.norm() <= 1.0 + 1e-9);
    }
}
