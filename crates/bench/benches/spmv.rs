//! Ablation: sequential versus multi-threaded sparse matrix–vector products — the
//! inner kernel of every passage-time iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smp_numeric::Complex64;
use smp_sparse::parallel::{par_mul_vec, par_vec_mul};
use smp_sparse::{CsrMatrix, TripletMatrix};
use std::time::Duration;

fn random_complex_matrix(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for _ in 0..nnz_per_row {
            t.push(
                i,
                rng.gen_range(0..n),
                Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            );
        }
    }
    t.to_csr()
}

fn bench_spmv(c: &mut Criterion) {
    let n = 60_000;
    let matrix = random_complex_matrix(n, 6, 42);
    let x: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
        .collect();

    let mut group = c.benchmark_group("sparse_matrix_vector_products");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("row_vector_sequential", |b| {
        b.iter(|| std::hint::black_box(matrix.vec_mul(&x)))
    });
    group.bench_function("col_vector_sequential", |b| {
        b.iter(|| std::hint::black_box(matrix.mul_vec(&x)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("row_vector_parallel", threads),
            &threads,
            |b, &t| b.iter(|| std::hint::black_box(par_vec_mul(&matrix, &x, t))),
        );
        group.bench_with_input(
            BenchmarkId::new("col_vector_parallel", threads),
            &threads,
            |b, &t| b.iter(|| std::hint::black_box(par_mul_vec(&matrix, &x, t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
