//! Benchmark behind Table 1: SM-SPN state-space generation cost as the voting
//! configuration grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_voting::{VotingConfig, VotingSystem};

fn bench_state_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_state_space_generation");
    group.sample_size(10);
    for (label, config) in [
        ("tiny_3_2_2", VotingConfig::new(3, 2, 2)),
        ("small_8_3_2", VotingConfig::new(8, 3, 2)),
        ("system0_18_6_3", VotingConfig::new(18, 6, 3)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| {
                let system = VotingSystem::build(*cfg).expect("build");
                std::hint::black_box(system.num_states())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_space);
criterion_main!(benches);
