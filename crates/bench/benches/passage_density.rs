//! Benchmark behind Fig. 4: cost of one `s`-point evaluation of the voter-passage
//! transform (the unit of work farmed out by the distributed pipeline) and of a
//! complete small density computation.

use criterion::{criterion_group, criterion_main, Criterion};
use smp_core::{PassageTimeAnalysis, PassageTimeSolver};
use smp_laplace::InversionMethod;
use smp_numeric::Complex64;
use smp_voting::{VotingConfig, VotingSystem};
use std::time::Duration;

fn bench_passage(c: &mut Criterion) {
    let system = VotingSystem::build(VotingConfig::new(8, 3, 2)).expect("build");
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(8);
    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver");

    let mut group = c.benchmark_group("fig4_voter_passage");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("single_s_point_evaluation", |b| {
        let s = Complex64::new(0.8, 2.5);
        b.iter(|| std::hint::black_box(solver.transform_at(s).unwrap().value))
    });

    group.bench_function("density_8_t_points_euler", |b| {
        let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).expect("analysis");
        let ts: Vec<f64> = (1..=8).map(|k| k as f64 * 3.0).collect();
        b.iter(|| {
            let curve = analysis.density(InversionMethod::euler(), &ts).unwrap();
            std::hint::black_box(curve.integral())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_passage);
criterion_main!(benches);
