//! Benchmark behind Fig. 7: cost of one transient-distribution transform evaluation
//! (Eq. 7 of the paper — one vector passage solve per target state) as the target
//! set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_core::transient::TransientSolver;
use smp_numeric::Complex64;
use smp_voting::{VotingConfig, VotingSystem};
use std::time::Duration;

fn bench_transient(c: &mut Criterion) {
    let system = VotingSystem::build(VotingConfig::new(6, 2, 2)).expect("build");
    let smp = system.smp();
    let source = system.initial_state();

    let mut group = c.benchmark_group("fig7_transient_transform");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    for voted in [5u32, 3, 1] {
        let targets = system.states_with_voted_at_least(voted);
        group.bench_with_input(
            BenchmarkId::new("target_states", targets.len()),
            &targets,
            |b, targets| {
                let solver = TransientSolver::new(smp, source, targets).expect("solver");
                let s = Complex64::new(0.4, 1.2);
                b.iter(|| std::hint::black_box(solver.transform_at(s).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transient);
criterion_main!(benches);
