//! Ablation: the iterative O(N²r) passage-time algorithm against the dense O(N³)
//! linear-solve baseline of Eq. (2)/(3) — the comparison that motivates the paper's
//! method for large state spaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smp_core::{
    passage::dense_reference_solve, PassageTimeSolver, SemiMarkovProcess, SmpBuilder, StateSet,
};
use smp_distributions::Dist;
use smp_numeric::Complex64;
use std::time::Duration;

fn random_smp(n: usize, seed: u64) -> SemiMarkovProcess {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SmpBuilder::new(n);
    for i in 0..n {
        b.add_transition(
            i,
            (i + 1) % n,
            1.0,
            Dist::exponential(rng.gen_range(0.5..2.0)),
        );
        for _ in 0..3 {
            let to = rng.gen_range(0..n);
            b.add_transition(
                i,
                to,
                rng.gen_range(0.2..1.0),
                Dist::erlang(rng.gen_range(0.5..2.0), 2),
            );
        }
    }
    b.build().unwrap()
}

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterative_vs_dense_solver");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let s = Complex64::new(0.6, 1.4);

    for n in [50usize, 200, 500] {
        let smp = random_smp(n, n as u64);
        let target = n - 1;
        group.bench_with_input(BenchmarkId::new("iterative", n), &smp, |b, smp| {
            let solver = PassageTimeSolver::new(smp, &[0], &[target]).unwrap();
            b.iter(|| std::hint::black_box(solver.transform_vector_at(s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("dense_gaussian", n), &smp, |b, smp| {
            let targets = StateSet::new(n, &[target]).unwrap();
            b.iter(|| std::hint::black_box(dense_reference_solve(smp, &targets, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
