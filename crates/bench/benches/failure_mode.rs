//! Benchmark behind Fig. 6: failure-mode passage transform evaluation on the
//! paper's smallest configuration (system 0, 2 061 states), plus the rare-event
//! comparison the paper makes — one analytic `s`-point evaluation versus one batch
//! of simulation replications that mostly fail to observe the event.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_core::{PassageTimeSolver, StateSet};
use smp_numeric::Complex64;
use smp_simulator::smp_sim::sample_passage;
use smp_voting::{VotingConfig, VotingSystem};
use std::time::Duration;

fn bench_failure_mode(c: &mut Criterion) {
    // Scaled configuration: same structure as system 0 but quick enough to iterate.
    let system = VotingSystem::build(VotingConfig::new(6, 3, 2)).expect("build");
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.failure_mode_states();
    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver");
    let target_set = StateSet::new(smp.num_states(), &targets).expect("targets");

    let mut group = c.benchmark_group("fig6_failure_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("analytic_s_point", |b| {
        let s = Complex64::new(0.05, 0.6);
        b.iter(|| std::hint::black_box(solver.transform_at(s).unwrap().value))
    });

    group.bench_function("simulation_100_replications", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut observed = 0usize;
            for _ in 0..100 {
                if sample_passage(smp, source, &target_set, 200_000, &mut rng).is_some() {
                    observed += 1;
                }
            }
            std::hint::black_box(observed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_failure_mode);
criterion_main!(benches);
