//! Benchmark behind Table 2: wall-clock time of the distributed pipeline as the
//! worker count grows, on a fixed `s`-point work queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_core::PassageTimeSolver;
use smp_laplace::InversionMethod;
use smp_pipeline::{DistributedPipeline, PipelineOptions};
use smp_voting::{VotingConfig, VotingSystem};
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let system = VotingSystem::build(VotingConfig::new(8, 3, 2)).expect("build");
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(8);
    let solver = PassageTimeSolver::new(smp, &[source], &targets).expect("solver");
    let t_points: Vec<f64> = (1..=5).map(|k| k as f64 * 4.0).collect();

    let mut group = c.benchmark_group("table2_pipeline_workers");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(6));

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let pipeline = DistributedPipeline::new(
                InversionMethod::euler(),
                PipelineOptions::with_workers(w),
            );
            b.iter(|| {
                let result = pipeline
                    .run(
                        |s| {
                            solver
                                .transform_at(s)
                                .map(|p| p.value)
                                .map_err(|e| e.to_string())
                        },
                        &t_points,
                    )
                    .unwrap();
                std::hint::black_box(result.values.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
