//! Ablation: Euler versus Laguerre numerical Laplace inversion (Section 4 of the
//! paper) — cost per inversion and cost of the transform evaluations each method
//! demands for a growing number of output t-points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_distributions::Dist;
use smp_laplace::{Euler, InversionMethod, Laguerre, SPointPlan};
use std::time::Duration;

fn bench_inversion(c: &mut Criterion) {
    let d = Dist::mixture(vec![
        (0.8, Dist::erlang(2.0, 3)),
        (0.2, Dist::exponential(0.5)),
    ]);

    let mut group = c.benchmark_group("inversion_methods");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(4));

    for t_count in [1usize, 5, 20] {
        let ts: Vec<f64> = (1..=t_count).map(|k| k as f64 * 0.5).collect();
        group.bench_with_input(BenchmarkId::new("euler", t_count), &ts, |b, ts| {
            let euler = Euler::standard();
            b.iter(|| std::hint::black_box(euler.invert_many(&d, ts)))
        });
        group.bench_with_input(BenchmarkId::new("laguerre", t_count), &ts, |b, ts| {
            let laguerre = Laguerre::standard();
            b.iter(|| std::hint::black_box(laguerre.invert_many(&d, ts)))
        });
        // The quantity the distributed pipeline actually cares about: how many
        // transform evaluations each method plans for this t-grid.
        let euler_plan = SPointPlan::new(InversionMethod::euler(), &ts);
        let laguerre_plan = SPointPlan::new(InversionMethod::laguerre(), &ts);
        println!(
            "# planned s-points for {t_count} t-points: euler = {}, laguerre = {}",
            euler_plan.len(),
            laguerre_plan.len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inversion);
criterion_main!(benches);
