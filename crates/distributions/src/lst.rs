//! The Laplace–Stieltjes transform abstraction.
//!
//! Everything the passage-time engine needs from a holding-time distribution is the
//! ability to evaluate its LST
//!
//! ```text
//!   r*(s) = ∫₀^∞ e^{-st} dH(t)
//! ```
//!
//! at arbitrary complex points `s`.  [`LaplaceTransform`] captures exactly that; it is
//! implemented by the closed-form distribution library ([`crate::Dist`]), by the
//! constant-space sampled representation ([`crate::SampledLst`]), and by the
//! passage-time results themselves (a passage-time transform `L_ij(s)` is just
//! another transform that can be composed or inverted).

use smp_numeric::Complex64;

/// A function of a complex Laplace variable, `s ↦ F(s)`.
pub trait LaplaceTransform {
    /// Evaluates the transform at the complex point `s`.
    fn lst(&self, s: Complex64) -> Complex64;

    /// Evaluates the transform at a batch of points (default: point-wise).
    ///
    /// The distributed pipeline overrides nothing here — batching exists so that a
    /// cached/sampled representation can assert it is only asked for planned points.
    fn lst_batch(&self, points: &[Complex64]) -> Vec<Complex64> {
        points.iter().map(|&s| self.lst(s)).collect()
    }
}

/// Blanket implementation for closures, used heavily in tests and by the inversion
/// algorithms (`|s| transform_of_known_density(s)`).
impl<F> LaplaceTransform for F
where
    F: Fn(Complex64) -> Complex64,
{
    fn lst(&self, s: Complex64) -> Complex64 {
        self(s)
    }
}

/// Boxed dynamic transform, convenient for heterogeneous collections.
impl LaplaceTransform for Box<dyn LaplaceTransform + Send + Sync> {
    fn lst(&self, s: Complex64) -> Complex64 {
        (**self).lst(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_implements_transform() {
        // LST of Exp(2): 2 / (2 + s)
        let f = |s: Complex64| Complex64::real(2.0) / (Complex64::real(2.0) + s);
        let v = f.lst(Complex64::real(1.0));
        assert!((v.re - 2.0 / 3.0).abs() < 1e-14);
        assert_eq!(v.im, 0.0);
    }

    #[test]
    fn batch_matches_pointwise() {
        let f = |s: Complex64| (Complex64::real(-1.0) * s).exp();
        let pts = [
            Complex64::new(0.5, 0.0),
            Complex64::new(1.0, 2.0),
            Complex64::new(0.0, -3.0),
        ];
        let batch = f.lst_batch(&pts);
        for (s, v) in pts.iter().zip(batch) {
            assert_eq!(f.lst(*s), v);
        }
    }

    #[test]
    fn boxed_transform_dispatches() {
        let boxed: Box<dyn LaplaceTransform + Send + Sync> =
            Box::new(|s: Complex64| s * Complex64::real(2.0));
        assert_eq!(boxed.lst(Complex64::ONE), Complex64::real(2.0));
    }
}
