//! Empirical distributions estimated from simulation output.
//!
//! The paper validates every analytic curve against a discrete-event simulation of
//! the same high-level model (Figs. 4 and 6).  The simulator produces raw passage-time
//! samples; this module turns them into density estimates (histogram with optional
//! smoothing), cumulative distribution functions and quantiles that can be compared
//! point-by-point with the numerically inverted transforms.

use smp_numeric::stats::RunningStats;

/// An empirical distribution built from observed samples.
#[derive(Debug, Clone)]
pub struct EmpiricalDistribution {
    sorted: Vec<f64>,
    stats: RunningStats,
}

impl EmpiricalDistribution {
    /// Builds an empirical distribution from raw samples (NaNs are rejected).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        let mut stats = RunningStats::new();
        for &x in &samples {
            stats.push(x);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        EmpiricalDistribution {
            sorted: samples,
            stats,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// The samples, sorted ascending.  Exposed so consumers (the simulation
    /// measure engine, determinism tests) can compare or re-aggregate the raw
    /// data without round-tripping through summary statistics.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// The raw sample moment `mean(Xᵏ)` and the 95% confidence half-width of
    /// that mean.  `raw_moment(1)` is `(mean(), ci95_half_width())`.
    pub fn raw_moment(&self, order: u32) -> (f64, f64) {
        let mut stats = RunningStats::new();
        for &x in &self.sorted {
            stats.push(x.powi(order as i32));
        }
        (stats.mean(), stats.ci95_half_width())
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.stats.variance()
    }

    /// Half-width of the 95% confidence interval on the mean.
    pub fn ci95_half_width(&self) -> f64 {
        self.stats.ci95_half_width()
    }

    /// Smallest observed sample.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Largest observed sample.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Empirical CDF `P̂(X ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Index of the first sample strictly greater than t.
        let count = self.sorted.partition_point(|&x| x <= t);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: smallest sample `x` with `P̂(X ≤ x) ≥ p`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        if p == 0.0 {
            return Some(self.sorted[0]);
        }
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Histogram-based density estimate evaluated at the centres of `bins` equal-width
    /// bins spanning `[lo, hi]`.  Returns `(centres, densities)`; densities integrate
    /// to the fraction of samples falling inside the window.
    pub fn density(&self, lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(bins > 0 && hi > lo, "invalid histogram window");
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted {
            if x < lo || x >= hi {
                continue;
            }
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let n = self.sorted.len().max(1) as f64;
        let centres = (0..bins).map(|i| lo + (i as f64 + 0.5) * width).collect();
        let densities = counts.iter().map(|&c| c as f64 / (n * width)).collect();
        (centres, densities)
    }

    /// Density estimate at arbitrary points using a Gaussian kernel with Silverman's
    /// rule-of-thumb bandwidth.  Smoother than a histogram for comparison plots with
    /// moderate sample counts.
    pub fn kernel_density(&self, points: &[f64]) -> Vec<f64> {
        if self.sorted.is_empty() {
            return vec![0.0; points.len()];
        }
        let n = self.sorted.len() as f64;
        let sigma = self.stats.std_dev();
        let bandwidth = if sigma > 0.0 {
            1.06 * sigma * n.powf(-0.2)
        } else {
            1.0
        };
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * bandwidth * n);
        points
            .iter()
            .map(|&t| {
                let mut acc = 0.0;
                for &x in &self.sorted {
                    let z = (t - x) / bandwidth;
                    acc += (-0.5 * z * z).exp();
                }
                acc * norm
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Dist;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exponential_samples(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Dist::exponential(rate);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn cdf_and_quantile_basics() {
        let e = EmpiricalDistribution::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.5), None);
        assert_eq!(e.len(), 4);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn empty_distribution() {
        let e = EmpiricalDistribution::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.kernel_density(&[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn cdf_matches_analytic_for_large_sample() {
        let samples = exponential_samples(100_000, 1.0, 7);
        let e = EmpiricalDistribution::from_samples(samples);
        for &t in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
            let analytic = 1.0 - (-t).exp();
            assert!(
                (e.cdf(t) - analytic).abs() < 0.01,
                "cdf({t}) = {} vs {}",
                e.cdf(t),
                analytic
            );
        }
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let samples = exponential_samples(50_000, 2.0, 9);
        let e = EmpiricalDistribution::from_samples(samples);
        let (centres, dens) = e.density(0.0, 8.0, 160);
        let width = centres[1] - centres[0];
        let integral: f64 = dens.iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
        // Density near zero should approach rate = 2.
        assert!(
            (dens[0] - 2.0).abs() < 0.25,
            "density at origin {}",
            dens[0]
        );
    }

    #[test]
    fn kernel_density_tracks_histogram() {
        let samples = exponential_samples(20_000, 1.0, 11);
        let e = EmpiricalDistribution::from_samples(samples);
        let pts = vec![0.5, 1.0, 2.0];
        let kd = e.kernel_density(&pts);
        for (t, d) in pts.iter().zip(kd) {
            let analytic = (-t).exp();
            assert!((d - analytic).abs() < 0.1, "kde({t}) = {d} vs {analytic}");
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_samples() {
        EmpiricalDistribution::from_samples(vec![1.0, f64::NAN]);
    }

    #[test]
    fn samples_accessor_and_raw_moments() {
        let e = EmpiricalDistribution::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0]);
        let (m1, _) = e.raw_moment(1);
        assert!((m1 - 2.0).abs() < 1e-12);
        let (m2, ci2) = e.raw_moment(2);
        assert!((m2 - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!(ci2 > 0.0);
        // Second raw moment of Exp(2) is 2/λ² = 0.5.
        let samples = exponential_samples(50_000, 2.0, 13);
        let e = EmpiricalDistribution::from_samples(samples);
        let (m2, ci2) = e.raw_moment(2);
        assert!((m2 - 0.5).abs() < 4.0 * ci2, "E[X²] = {m2} ± {ci2}");
    }

    proptest! {
        /// The empirical CDF is monotone and quantile() inverts it.
        #[test]
        fn prop_cdf_monotone_and_quantile_consistent(
            mut samples in proptest::collection::vec(0.0f64..100.0, 1..200),
            p in 0.01f64..1.0)
        {
            samples.retain(|x| x.is_finite());
            prop_assume!(!samples.is_empty());
            let e = EmpiricalDistribution::from_samples(samples.clone());
            let q = e.quantile(p).unwrap();
            prop_assert!(e.cdf(q) + 1e-12 >= p);
            // Monotonicity on a few probes.
            let probes = [0.0, 25.0, 50.0, 75.0, 100.0];
            for w in probes.windows(2) {
                prop_assert!(e.cdf(w[1]) + 1e-12 >= e.cdf(w[0]));
            }
        }
    }
}
