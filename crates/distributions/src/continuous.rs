//! Closed-form holding-time distributions and their compositions.
//!
//! The SM-SPN formalism attaches an arbitrary firing-time distribution to every
//! transition (the paper's `\sojourntimeLT{...}` pragma); the voting model uses
//! weighted mixtures of uniform and Erlang distributions.  [`Dist`] covers the
//! distribution families that appear in the paper plus the compositions needed to
//! express "with probability 0.8 uniform(1.5, 10), otherwise Erlang(0.001, 5)".

use crate::lst::LaplaceTransform;
use rand::Rng;
use smp_numeric::special::regularised_gamma_p;
use smp_numeric::Complex64;

/// A general, composable holding-time distribution on `[0, ∞)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Exponential with rate `λ > 0`; LST `λ / (λ + s)`.
    Exponential { rate: f64 },
    /// Erlang with rate `λ > 0` and `n ≥ 1` phases; LST `(λ / (λ + s))ⁿ`.
    Erlang { rate: f64, phases: u32 },
    /// Continuous uniform on `[a, b]`, `0 ≤ a < b`; LST `(e^{-as} − e^{-bs}) / (s(b−a))`.
    Uniform { lower: f64, upper: f64 },
    /// Deterministic (point mass) at `d ≥ 0`; LST `e^{-ds}`.
    Deterministic { value: f64 },
    /// Weibull with shape `k > 0` and scale `λ > 0`.  The LST has no closed form and
    /// is evaluated by numerical quadrature — accurate for the moderate `|Im s|`
    /// range used by the inversion algorithms, and primarily intended for the
    /// simulator and for stress-testing the pipeline with "awkward" distributions.
    Weibull { shape: f64, scale: f64 },
    /// Probabilistic choice: with probability `wᵢ` (normalised) the delay is drawn
    /// from the `i`-th branch.  LST `Σ wᵢ Lᵢ(s)`.
    Mixture(Vec<(f64, Dist)>),
    /// Sum of independent delays; LST `Π Lᵢ(s)`.
    Convolution(Vec<Dist>),
}

impl Dist {
    /// Exponential distribution with the given rate.
    pub fn exponential(rate: f64) -> Dist {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        Dist::Exponential { rate }
    }

    /// Erlang distribution with `phases` exponential phases of the given rate.
    ///
    /// Matches the paper's `erlangLT(λ, n)`.
    pub fn erlang(rate: f64, phases: u32) -> Dist {
        assert!(rate > 0.0, "erlang rate must be positive, got {rate}");
        assert!(phases >= 1, "erlang needs at least one phase");
        Dist::Erlang { rate, phases }
    }

    /// Uniform distribution on `[lower, upper]`.
    ///
    /// Matches the paper's `uniformLT(a, b)`.
    pub fn uniform(lower: f64, upper: f64) -> Dist {
        assert!(
            lower >= 0.0 && upper > lower,
            "uniform requires 0 <= lower < upper, got [{lower}, {upper}]"
        );
        Dist::Uniform { lower, upper }
    }

    /// Deterministic delay of exactly `value` time units.
    pub fn deterministic(value: f64) -> Dist {
        assert!(value >= 0.0, "deterministic delay must be non-negative");
        Dist::Deterministic { value }
    }

    /// Instantaneous firing (zero delay) — used for immediate transitions.
    pub fn immediate() -> Dist {
        Dist::Deterministic { value: 0.0 }
    }

    /// Weibull distribution with the given shape and scale.
    pub fn weibull(shape: f64, scale: f64) -> Dist {
        assert!(
            shape > 0.0 && scale > 0.0,
            "weibull parameters must be positive"
        );
        Dist::Weibull { shape, scale }
    }

    /// Probabilistic mixture; weights are normalised and must be non-negative with a
    /// positive sum.
    pub fn mixture(branches: Vec<(f64, Dist)>) -> Dist {
        assert!(!branches.is_empty(), "mixture needs at least one branch");
        let total: f64 = branches.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0.0 && branches.iter().all(|(w, _)| *w >= 0.0),
            "mixture weights must be non-negative with positive sum"
        );
        Dist::Mixture(branches.into_iter().map(|(w, d)| (w / total, d)).collect())
    }

    /// Sum of independent delays.
    pub fn convolution(parts: Vec<Dist>) -> Dist {
        assert!(!parts.is_empty(), "convolution needs at least one part");
        Dist::Convolution(parts)
    }

    /// `Some(rate)` iff this distribution **is** the exponential variant, i.e.
    /// it was built with [`Dist::exponential`].
    ///
    /// The probe is deliberately structural, not distributional: a one-phase
    /// Erlang, a single-branch mixture over an exponential, or a one-part
    /// convolution are all *distributionally* exponential but return `None`.
    /// Callers (the uniformization backend's all-exponential detection) rely
    /// on this strictness so that the memoryless-reduction precondition is
    /// visible in the model text rather than inferred by numeric accident.
    pub fn is_exponential(&self) -> Option<f64> {
        match self {
            Dist::Exponential { rate } => Some(*rate),
            _ => None,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Erlang { rate, phases } => *phases as f64 / rate,
            Dist::Uniform { lower, upper } => 0.5 * (lower + upper),
            Dist::Deterministic { value } => *value,
            Dist::Weibull { shape, scale } => {
                scale * smp_numeric::special::gamma(1.0 + 1.0 / shape)
            }
            Dist::Mixture(branches) => branches.iter().map(|(w, d)| w * d.mean()).sum(),
            Dist::Convolution(parts) => parts.iter().map(|d| d.mean()).sum(),
        }
    }

    /// Raw second moment `E[X²]`.
    pub fn second_moment(&self) -> f64 {
        match self {
            Dist::Exponential { rate } => 2.0 / (rate * rate),
            Dist::Erlang { rate, phases } => {
                let n = *phases as f64;
                n * (n + 1.0) / (rate * rate)
            }
            Dist::Uniform { lower, upper } => {
                (upper.powi(3) - lower.powi(3)) / (3.0 * (upper - lower))
            }
            Dist::Deterministic { value } => value * value,
            Dist::Weibull { shape, scale } => {
                scale * scale * smp_numeric::special::gamma(1.0 + 2.0 / shape)
            }
            Dist::Mixture(branches) => branches.iter().map(|(w, d)| w * d.second_moment()).sum(),
            Dist::Convolution(parts) => {
                // E[(ΣX)²] = Σ E[X²] + 2 Σ_{i<j} E[X_i]E[X_j]
                let mut acc = 0.0;
                let means: Vec<f64> = parts.iter().map(|d| d.mean()).collect();
                for (i, d) in parts.iter().enumerate() {
                    acc += d.second_moment();
                    for mj in means.iter().skip(i + 1) {
                        acc += 2.0 * means[i] * mj;
                    }
                }
                acc
            }
        }
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// Cumulative distribution function `P(X ≤ t)`.
    ///
    /// Returns `None` for compositions without a closed form (convolutions of
    /// non-Erlang parts); all paper-relevant distributions have closed-form CDFs.
    pub fn cdf(&self, t: f64) -> Option<f64> {
        if t < 0.0 {
            return Some(0.0);
        }
        match self {
            Dist::Exponential { rate } => Some(1.0 - (-rate * t).exp()),
            Dist::Erlang { rate, phases } => Some(regularised_gamma_p(*phases as f64, rate * t)),
            Dist::Uniform { lower, upper } => Some(((t - lower) / (upper - lower)).clamp(0.0, 1.0)),
            Dist::Deterministic { value } => Some(if t >= *value { 1.0 } else { 0.0 }),
            Dist::Weibull { shape, scale } => Some(1.0 - (-(t / scale).powf(*shape)).exp()),
            Dist::Mixture(branches) => {
                let mut acc = 0.0;
                for (w, d) in branches {
                    acc += w * d.cdf(t)?;
                }
                Some(acc)
            }
            Dist::Convolution(_) => None,
        }
    }

    /// Draws one sample using the supplied random number generator.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Exponential { rate } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / rate
            }
            Dist::Erlang { rate, phases } => {
                let mut acc = 0.0;
                for _ in 0..*phases {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    acc -= u.ln();
                }
                acc / rate
            }
            Dist::Uniform { lower, upper } => rng.gen_range(*lower..*upper),
            Dist::Deterministic { value } => *value,
            Dist::Weibull { shape, scale } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Dist::Mixture(branches) => {
                let mut u: f64 = rng.gen_range(0.0..1.0);
                for (w, d) in branches {
                    if u < *w {
                        return d.sample(rng);
                    }
                    u -= w;
                }
                // Floating-point slack: fall back to the last branch.
                branches.last().expect("non-empty mixture").1.sample(rng)
            }
            Dist::Convolution(parts) => parts.iter().map(|d| d.sample(rng)).sum(),
        }
    }

    /// Evaluates the Laplace–Stieltjes transform at `s`.
    pub fn lst(&self, s: Complex64) -> Complex64 {
        match self {
            Dist::Exponential { rate } => {
                let lambda = Complex64::real(*rate);
                lambda / (lambda + s)
            }
            Dist::Erlang { rate, phases } => {
                let lambda = Complex64::real(*rate);
                (lambda / (lambda + s)).powi(*phases as i32)
            }
            Dist::Uniform { lower, upper } => uniform_lst(*lower, *upper, s),
            Dist::Deterministic { value } => (-s * *value).exp(),
            Dist::Weibull { shape, scale } => weibull_lst_numeric(*shape, *scale, s),
            Dist::Mixture(branches) => branches
                .iter()
                .map(|(w, d)| d.lst(s).scale(*w))
                .fold(Complex64::ZERO, |a, b| a + b),
            Dist::Convolution(parts) => parts
                .iter()
                .map(|d| d.lst(s))
                .fold(Complex64::ONE, |a, b| a * b),
        }
    }
}

impl LaplaceTransform for Dist {
    fn lst(&self, s: Complex64) -> Complex64 {
        Dist::lst(self, s)
    }
}

/// LST of Uniform(a, b): `(e^{-as} − e^{-bs}) / (s (b − a))`, with a series expansion
/// around `s = 0` where the closed form is numerically indeterminate (0/0).
fn uniform_lst(a: f64, b: f64, s: Complex64) -> Complex64 {
    let width = b - a;
    if s.norm() * width < 1e-6 {
        // e^{-as}(1 - s w/2 + s² w²/6 - ...) expansion of the difference quotient.
        let sw = s * width;
        let series = Complex64::ONE - sw.scale(0.5) + (sw * sw).scale(1.0 / 6.0)
            - (sw * sw * sw).scale(1.0 / 24.0);
        return (-s * a).exp() * series;
    }
    ((-s * a).exp() - (-s * b).exp()) / (s * width)
}

/// Numerical LST of a Weibull distribution by composite Simpson quadrature of
/// `∫ e^{-st} f(t) dt`.  The integration window covers the quantile range
/// `[0, F⁻¹(1 − 1e-12)]` and the resolution adapts to the oscillation frequency
/// `|Im s|` so that each period is sampled at least 16 times.
fn weibull_lst_numeric(shape: f64, scale: f64, s: Complex64) -> Complex64 {
    // Upper integration limit: essentially all the probability mass.
    let t_max = scale * (27.63f64).powf(1.0 / shape); // -ln(1e-12) ≈ 27.63
    let min_points = 2048usize;
    let oscillation = (s.im.abs() * t_max / std::f64::consts::TAU).ceil() as usize;
    let n = (min_points.max(oscillation * 16) | 1).max(3); // odd number of intervals+1
    let h = t_max / (n - 1) as f64;
    let pdf = |t: f64| -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            // Limit of the density at the origin: 0 for shape > 1, λ for shape = 1.
            // For shape < 1 the density diverges; clamp to the first interior value
            // so the quadrature stays finite (accuracy is documented as reduced for
            // shape < 1, which the suite does not use analytically).
            return match shape.partial_cmp(&1.0).expect("shape is finite") {
                std::cmp::Ordering::Greater => 0.0,
                std::cmp::Ordering::Equal => 1.0 / scale,
                std::cmp::Ordering::Less => {
                    let z = (h * 0.5) / scale;
                    (shape / scale) * z.powf(shape - 1.0) * (-z.powf(shape)).exp()
                }
            };
        }
        let z = t / scale;
        (shape / scale) * z.powf(shape - 1.0) * (-z.powf(shape)).exp()
    };
    let mut acc = Complex64::ZERO;
    for i in 0..n {
        let t = i as f64 * h;
        let weight = if i == 0 || i == n - 1 {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        acc += ((-s * t).exp()).scale(weight * pdf(t));
    }
    acc.scale(h / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smp_numeric::stats::RunningStats;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!(
            (a - b).norm() < tol,
            "expected {b}, got {a} (diff {})",
            (a - b).norm()
        );
    }

    #[test]
    fn exponential_lst_and_moments() {
        let d = Dist::exponential(2.0);
        assert_close(
            d.lst(Complex64::real(1.0)),
            Complex64::real(2.0 / 3.0),
            1e-14,
        );
        assert_eq!(d.mean(), 0.5);
        assert_eq!(d.variance(), 0.25);
        assert!((d.cdf(1.0).unwrap() - (1.0 - (-2.0f64).exp())).abs() < 1e-14);
    }

    #[test]
    fn erlang_lst_is_power_of_exponential() {
        let e1 = Dist::exponential(3.0);
        let e3 = Dist::erlang(3.0, 3);
        let s = Complex64::new(0.7, 1.3);
        assert_close(e3.lst(s), e1.lst(s).powi(3), 1e-13);
        assert!((e3.mean() - 1.0).abs() < 1e-14);
        assert!((e3.variance() - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn erlang_matches_paper_example() {
        // erlangLT(0.001, 5) from Fig. 3 of the paper: (0.001 / (0.001 + s))^5.
        let d = Dist::erlang(0.001, 5);
        let s = Complex64::real(0.002);
        let expect = (0.001f64 / 0.003).powi(5);
        assert_close(d.lst(s), Complex64::real(expect), 1e-12);
    }

    #[test]
    fn uniform_lst_matches_closed_form_and_limit() {
        // uniformLT(1.5, 10) from Fig. 3.
        let d = Dist::uniform(1.5, 10.0);
        let s = Complex64::new(0.4, -0.9);
        let expect = ((-s * 1.5).exp() - (-s * 10.0).exp()) / (s * 8.5);
        assert_close(d.lst(s), expect, 1e-12);
        // At s = 0 every LST equals 1.
        assert_close(d.lst(Complex64::ZERO), Complex64::ONE, 1e-12);
        // Tiny s uses the series branch and must stay continuous with the closed form.
        let tiny = Complex64::real(1e-8);
        assert_close(d.lst(tiny), Complex64::ONE - tiny * d.mean(), 1e-9);
    }

    #[test]
    fn deterministic_lst_is_pure_phase() {
        let d = Dist::deterministic(2.0);
        let s = Complex64::imag(3.0);
        let v = d.lst(s);
        assert!((v.norm() - 1.0).abs() < 1e-14);
        assert_close(v, Complex64::from_polar(1.0, -6.0), 1e-13);
        assert_eq!(
            Dist::immediate().lst(Complex64::new(5.0, 2.0)),
            Complex64::ONE
        );
    }

    #[test]
    fn mixture_matches_paper_t5_distribution() {
        // 0.8 * uniformLT(1.5,10,s) + 0.2 * erlangLT(0.001,5,s) — transition t5.
        let d = Dist::mixture(vec![
            (0.8, Dist::uniform(1.5, 10.0)),
            (0.2, Dist::erlang(0.001, 5)),
        ]);
        let s = Complex64::new(0.05, 0.3);
        let expect =
            Dist::uniform(1.5, 10.0).lst(s).scale(0.8) + Dist::erlang(0.001, 5).lst(s).scale(0.2);
        assert_close(d.lst(s), expect, 1e-13);
        let expect_mean = 0.8 * 5.75 + 0.2 * 5000.0;
        assert!((d.mean() - expect_mean).abs() < 1e-9);
    }

    #[test]
    fn mixture_weights_are_normalised() {
        let d = Dist::mixture(vec![
            (2.0, Dist::exponential(1.0)),
            (2.0, Dist::deterministic(3.0)),
        ]);
        assert!((d.mean() - 0.5 * (1.0 + 3.0)).abs() < 1e-14);
        assert_close(d.lst(Complex64::ZERO), Complex64::ONE, 1e-14);
    }

    #[test]
    fn convolution_lst_is_product() {
        let d = Dist::convolution(vec![Dist::exponential(1.0), Dist::deterministic(2.0)]);
        let s = Complex64::new(0.3, 0.4);
        let expect = Dist::exponential(1.0).lst(s) * Dist::deterministic(2.0).lst(s);
        assert_close(d.lst(s), expect, 1e-13);
        assert_eq!(d.mean(), 3.0);
        // Var(X+c) = Var(X)
        assert!((d.variance() - 1.0).abs() < 1e-12);
        assert!(d.cdf(1.0).is_none());
    }

    #[test]
    fn convolution_of_exponentials_equals_erlang() {
        let conv = Dist::convolution(vec![Dist::exponential(2.0); 4]);
        let erl = Dist::erlang(2.0, 4);
        for &sv in &[0.1, 1.0, 5.0] {
            let s = Complex64::new(sv, sv / 2.0);
            assert_close(conv.lst(s), erl.lst(s), 1e-12);
        }
        assert!((conv.mean() - erl.mean()).abs() < 1e-12);
        assert!((conv.second_moment() - erl.second_moment()).abs() < 1e-10);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // Weibull(k=1, scale) is Exp(1/scale); the numerical LST should agree.
        let w = Dist::weibull(1.0, 2.0);
        let e = Dist::exponential(0.5);
        for &s in &[
            Complex64::real(0.1),
            Complex64::new(0.5, 0.4),
            Complex64::new(1.0, -2.0),
        ] {
            assert_close(w.lst(s), e.lst(s), 1e-6);
        }
        assert!((w.mean() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn weibull_moments_and_cdf() {
        let w = Dist::weibull(2.0, 1.0);
        // mean = Γ(1.5) = sqrt(pi)/2
        assert!((w.mean() - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
        assert!((w.cdf(1.0).unwrap() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let dists = vec![
            Dist::exponential(0.5),
            Dist::erlang(2.0, 3),
            Dist::uniform(1.0, 4.0),
            Dist::deterministic(2.5),
            Dist::weibull(1.5, 2.0),
            Dist::mixture(vec![
                (0.8, Dist::uniform(1.5, 10.0)),
                (0.2, Dist::erlang(0.001, 5)),
            ]),
            Dist::convolution(vec![Dist::exponential(1.0), Dist::uniform(0.0, 2.0)]),
        ];
        for d in dists {
            let mut stats = RunningStats::new();
            for _ in 0..60_000 {
                let x = d.sample(&mut rng);
                assert!(x >= 0.0, "negative sample from {d:?}");
                stats.push(x);
            }
            let tol = 4.0 * stats.ci95_half_width() + 1e-9;
            assert!(
                (stats.mean() - d.mean()).abs() < tol,
                "{d:?}: sample mean {} vs analytic {} (tol {tol})",
                stats.mean(),
                d.mean()
            );
        }
    }

    #[test]
    fn cdf_clamps_below_zero() {
        assert_eq!(Dist::exponential(1.0).cdf(-1.0), Some(0.0));
        assert_eq!(Dist::deterministic(0.0).cdf(0.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn invalid_exponential_rejected() {
        Dist::exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "lower < upper")]
    fn invalid_uniform_rejected() {
        Dist::uniform(3.0, 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_mixture_rejected() {
        Dist::mixture(vec![]);
    }

    #[test]
    fn is_exponential_is_structural_not_distributional() {
        assert_eq!(Dist::exponential(2.5).is_exponential(), Some(2.5));
        // Lookalikes that are distributionally exponential (or degenerate
        // wrappers around one) must NOT pass the probe.
        assert_eq!(Dist::erlang(2.5, 1).is_exponential(), None);
        assert_eq!(
            Dist::mixture(vec![(1.0, Dist::exponential(2.5))]).is_exponential(),
            None
        );
        assert_eq!(
            Dist::convolution(vec![Dist::exponential(2.5)]).is_exponential(),
            None
        );
        // Plainly non-exponential shapes.
        assert_eq!(Dist::deterministic(0.4).is_exponential(), None);
        assert_eq!(Dist::uniform(0.0, 1.0).is_exponential(), None);
        assert_eq!(Dist::weibull(2.0, 1.0).is_exponential(), None);
    }

    proptest! {
        /// Every LST satisfies |L(s)| ≤ 1 for Re(s) ≥ 0 and L(0) = 1.
        #[test]
        fn prop_lst_bounded_on_right_half_plane(
            which in 0usize..5,
            a in 0.1f64..5.0,
            b in 0.5f64..6.0,
            re in 0.0f64..10.0,
            im in -20.0f64..20.0)
        {
            let d = match which {
                0 => Dist::exponential(a),
                1 => Dist::erlang(a, 1 + (b as u32 % 5)),
                2 => Dist::uniform(a, a + b),
                3 => Dist::deterministic(a),
                _ => Dist::mixture(vec![(0.3, Dist::exponential(a)), (0.7, Dist::uniform(0.0, b))]),
            };
            let s = Complex64::new(re, im);
            let v = d.lst(s);
            prop_assert!(v.norm() <= 1.0 + 1e-9, "|L({s})| = {} for {d:?}", v.norm());
            let at_zero = d.lst(Complex64::ZERO);
            prop_assert!((at_zero - Complex64::ONE).norm() < 1e-9);
        }

        /// The derivative identity −L'(0) = E[X] holds (finite differences).
        #[test]
        fn prop_lst_derivative_gives_mean(
            which in 0usize..4,
            a in 0.2f64..4.0,
            b in 0.5f64..5.0)
        {
            let d = match which {
                0 => Dist::exponential(a),
                1 => Dist::erlang(a, 3),
                2 => Dist::uniform(a, a + b),
                _ => Dist::convolution(vec![Dist::exponential(a), Dist::deterministic(b)]),
            };
            let h = 1e-6;
            let derivative = (d.lst(Complex64::real(h)).re - d.lst(Complex64::real(-h)).re) / (2.0 * h);
            prop_assert!(
                (-derivative - d.mean()).abs() < 1e-3 * (1.0 + d.mean()),
                "-L'(0) = {} vs mean {}", -derivative, d.mean()
            );
        }

        /// `is_exponential` returns `Some(rate)` exactly for values built via
        /// `Dist::exponential`, and `None` for every lookalike — including a
        /// one-phase Erlang with the same rate, a Weibull with shape 1 (also
        /// distributionally exponential), and trivial mixture/convolution
        /// wrappers around an exponential.
        #[test]
        fn prop_is_exponential_iff_built_as_exponential(
            rate in 0.05f64..50.0,
            which in 0usize..5)
        {
            let built = Dist::exponential(rate);
            prop_assert_eq!(built.is_exponential(), Some(rate));

            let lookalike = match which {
                0 => Dist::erlang(rate, 1),
                1 => Dist::weibull(1.0, 1.0 / rate),
                2 => Dist::mixture(vec![(1.0, Dist::exponential(rate))]),
                3 => Dist::convolution(vec![Dist::exponential(rate)]),
                _ => Dist::deterministic(1.0 / rate),
            };
            prop_assert_eq!(lookalike.is_exponential(), None);
        }

        /// CDFs are monotone non-decreasing and land in [0, 1].
        #[test]
        fn prop_cdf_monotone(
            a in 0.2f64..4.0,
            b in 0.5f64..5.0,
            t1 in 0.0f64..20.0,
            dt in 0.0f64..10.0)
        {
            let dists = [
                Dist::exponential(a),
                Dist::erlang(a, 4),
                Dist::uniform(a, a + b),
                Dist::weibull(1.0 + a, b),
                Dist::mixture(vec![(0.5, Dist::deterministic(a)), (0.5, Dist::exponential(b))]),
            ];
            for d in dists {
                let c1 = d.cdf(t1).unwrap();
                let c2 = d.cdf(t1 + dt).unwrap();
                prop_assert!((0.0..=1.0 + 1e-12).contains(&c1));
                prop_assert!(c2 + 1e-12 >= c1);
            }
        }
    }
}
