//! The constant-space distribution representation of Section 4.
//!
//! > *"calculating sᵢ, 1 ≤ i ≤ n and storing all the distribution transform
//! > functions, sampled at these points, will be sufficient to provide a complete
//! > inversion."*
//!
//! A [`SampledLst`] stores nothing but the LST values of a distribution at the
//! `s`-points planned by the inversion algorithm.  Its three advantages, quoted from
//! the paper, are encoded directly in the API:
//!
//! 1. **constant storage** independent of the distribution type — the struct is a
//!    plain vector with one complex number per planned point;
//! 2. **closure under composition** — [`SampledLst::pointwise_mul`] (convolution),
//!    [`SampledLst::weighted_sum`] (probabilistic choice) and scalar operations
//!    return another `SampledLst` of exactly the same size;
//! 3. **sufficiency** — the stored values are precisely what the inversion needs,
//!    no more, so a completed passage-time computation can be checkpointed and
//!    inverted later without access to the original model.

use crate::lst::LaplaceTransform;
use serde::{Deserialize, Serialize};
use smp_numeric::Complex64;

/// A distribution (or any Laplace-domain function) reduced to its values at a fixed,
/// ordered set of planned `s`-points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledLst {
    points: Vec<Complex64>,
    values: Vec<Complex64>,
}

impl SampledLst {
    /// Samples an arbitrary transform at the given points.
    pub fn from_transform<L: LaplaceTransform + ?Sized>(
        points: &[Complex64],
        transform: &L,
    ) -> Self {
        SampledLst {
            points: points.to_vec(),
            values: points.iter().map(|&s| transform.lst(s)).collect(),
        }
    }

    /// Builds directly from parallel `(point, value)` vectors.
    pub fn from_parts(points: Vec<Complex64>, values: Vec<Complex64>) -> Self {
        assert_eq!(points.len(), values.len(), "points/values length mismatch");
        SampledLst { points, values }
    }

    /// The planned evaluation points.
    pub fn points(&self) -> &[Complex64] {
        &self.points
    }

    /// The stored transform values (same order as [`Self::points`]).
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// Number of stored samples — the "constant space" of the representation.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Looks up the value at a planned point (exact match on the complex value).
    pub fn value_at(&self, s: Complex64) -> Option<Complex64> {
        self.points
            .iter()
            .position(|&p| p == s)
            .map(|i| self.values[i])
    }

    /// Point-wise product — the Laplace-domain equivalent of convolving the two
    /// underlying distributions (summing independent delays).
    ///
    /// # Panics
    /// Panics when the two representations were planned over different point sets;
    /// composition is only meaningful within a single inversion plan.
    pub fn pointwise_mul(&self, other: &SampledLst) -> SampledLst {
        assert_eq!(self.points, other.points, "mismatched s-point plans");
        SampledLst {
            points: self.points.clone(),
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Weighted sum `Σ wᵢ·Lᵢ` — the Laplace-domain equivalent of probabilistic choice
    /// between the underlying distributions.
    pub fn weighted_sum(parts: &[(f64, &SampledLst)]) -> SampledLst {
        assert!(!parts.is_empty(), "weighted_sum needs at least one part");
        let points = parts[0].1.points.clone();
        for (_, p) in parts {
            assert_eq!(p.points, points, "mismatched s-point plans");
        }
        let n = points.len();
        let mut values = vec![Complex64::ZERO; n];
        for (w, part) in parts {
            for (acc, v) in values.iter_mut().zip(&part.values) {
                *acc += v.scale(*w);
            }
        }
        SampledLst { points, values }
    }

    /// Scales every stored value by a real factor (e.g. branching probability).
    pub fn scale(&self, k: f64) -> SampledLst {
        SampledLst {
            points: self.points.clone(),
            values: self.values.iter().map(|v| v.scale(k)).collect(),
        }
    }

    /// Transforms every value as `v ↦ v / s` — turns a density transform into the
    /// transform of the corresponding cumulative distribution function, which is how
    /// the paper obtains Fig. 5 from Fig. 4.
    pub fn integrate(&self) -> SampledLst {
        SampledLst {
            points: self.points.clone(),
            values: self
                .values
                .iter()
                .zip(&self.points)
                .map(|(&v, &s)| v / s)
                .collect(),
        }
    }

    /// Approximate storage footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        2 * self.points.len() * std::mem::size_of::<Complex64>()
    }
}

impl LaplaceTransform for SampledLst {
    /// Evaluation is only defined at planned points; anything else is a logic error
    /// in the caller (it means the inversion is requesting points that were never
    /// computed/checkpointed).
    fn lst(&self, s: Complex64) -> Complex64 {
        self.value_at(s)
            .unwrap_or_else(|| panic!("s-point {s} was not part of the sampling plan"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Dist;

    fn plan() -> Vec<Complex64> {
        (1..=8)
            .map(|k| Complex64::new(0.2 * k as f64, 0.5 * k as f64))
            .collect()
    }

    #[test]
    fn sampling_matches_direct_evaluation() {
        let d = Dist::mixture(vec![
            (0.8, Dist::uniform(1.5, 10.0)),
            (0.2, Dist::erlang(0.001, 5)),
        ]);
        let pts = plan();
        let sampled = SampledLst::from_transform(&pts, &d);
        assert_eq!(sampled.len(), pts.len());
        for (i, &s) in pts.iter().enumerate() {
            assert_eq!(sampled.values()[i], d.lst(s));
            assert_eq!(sampled.value_at(s), Some(d.lst(s)));
            assert_eq!(LaplaceTransform::lst(&sampled, s), d.lst(s));
        }
    }

    #[test]
    fn storage_is_constant_under_composition() {
        let pts = plan();
        let a = SampledLst::from_transform(&pts, &Dist::exponential(1.0));
        let b = SampledLst::from_transform(&pts, &Dist::erlang(2.0, 7));
        let product = a.pointwise_mul(&b);
        let mix = SampledLst::weighted_sum(&[(0.3, &a), (0.7, &b)]);
        assert_eq!(product.memory_bytes(), a.memory_bytes());
        assert_eq!(mix.memory_bytes(), a.memory_bytes());
        // And composing a composition keeps the size constant too.
        let nested = product.pointwise_mul(&mix).scale(0.5).integrate();
        assert_eq!(nested.len(), a.len());
    }

    #[test]
    fn pointwise_mul_equals_convolution_transform() {
        let pts = plan();
        let a = Dist::exponential(1.5);
        let b = Dist::uniform(0.5, 2.0);
        let sa = SampledLst::from_transform(&pts, &a);
        let sb = SampledLst::from_transform(&pts, &b);
        let conv = Dist::convolution(vec![a, b]);
        let direct = SampledLst::from_transform(&pts, &conv);
        let composed = sa.pointwise_mul(&sb);
        for (x, y) in composed.values().iter().zip(direct.values()) {
            assert!((*x - *y).norm() < 1e-13);
        }
    }

    #[test]
    fn weighted_sum_equals_mixture_transform() {
        let pts = plan();
        let a = Dist::deterministic(2.0);
        let b = Dist::erlang(0.8, 3);
        let sa = SampledLst::from_transform(&pts, &a);
        let sb = SampledLst::from_transform(&pts, &b);
        let mixture = Dist::mixture(vec![(0.25, a), (0.75, b)]);
        let direct = SampledLst::from_transform(&pts, &mixture);
        let composed = SampledLst::weighted_sum(&[(0.25, &sa), (0.75, &sb)]);
        for (x, y) in composed.values().iter().zip(direct.values()) {
            assert!((*x - *y).norm() < 1e-13);
        }
    }

    #[test]
    fn integrate_divides_by_s() {
        let pts = plan();
        let d = Dist::exponential(2.0);
        let s = SampledLst::from_transform(&pts, &d).integrate();
        for (i, &p) in pts.iter().enumerate() {
            assert!((s.values()[i] - d.lst(p) / p).norm() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "mismatched s-point plans")]
    fn composition_requires_same_plan() {
        let a = SampledLst::from_transform(&plan(), &Dist::exponential(1.0));
        let other: Vec<Complex64> = vec![Complex64::ONE];
        let b = SampledLst::from_transform(&other, &Dist::exponential(1.0));
        let _ = a.pointwise_mul(&b);
    }

    #[test]
    #[should_panic(expected = "not part of the sampling plan")]
    fn unplanned_point_panics() {
        let a = SampledLst::from_transform(&plan(), &Dist::exponential(1.0));
        let _ = LaplaceTransform::lst(&a, Complex64::new(123.0, 456.0));
    }

    #[test]
    fn empty_plan_is_supported() {
        let a = SampledLst::from_parts(vec![], vec![]);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.value_at(Complex64::ONE), None);
    }
}
