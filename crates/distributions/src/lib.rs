//! # smp-distributions
//!
//! General (non-exponential) holding-time distributions for semi-Markov models.
//!
//! Semi-Markov processes owe their expressiveness to arbitrarily distributed sojourn
//! times; the price is that every distribution must be carried through the analysis
//! pipeline as a *Laplace–Stieltjes transform* (LST) that can be evaluated at the
//! complex `s`-points demanded by numerical inversion (Section 4 of the paper).
//!
//! The crate provides:
//!
//! * [`Dist`] — a composable distribution value: exponential, Erlang, uniform,
//!   deterministic, Weibull, phase-free *mixtures* (probabilistic choice) and
//!   *convolutions* (sums of independent delays).  Every variant knows how to
//!   - evaluate its LST at a complex point ([`Dist::lst`]),
//!   - draw samples for the validation simulator ([`Dist::sample`]),
//!   - report exact moments ([`Dist::mean`], [`Dist::variance`]) and its CDF.
//! * [`SampledLst`] — the paper's **constant-space representation**: a distribution
//!   reduced to its LST values at exactly the `s`-points the chosen inversion
//!   algorithm will request, so that arbitrarily composed distributions never grow
//!   in storage.
//! * [`empirical`] — empirical distribution estimation (histograms / densities /
//!   CDFs) used to post-process simulator output into the curves plotted in
//!   Figs. 4 and 6.

#![forbid(unsafe_code)]

pub mod continuous;
pub mod empirical;
pub mod lst;
pub mod sampled;

pub use continuous::Dist;
pub use empirical::EmpiricalDistribution;
pub use lst::LaplaceTransform;
pub use sampled::SampledLst;
