//! The symbolic/numeric split's correctness contract: workspace-evaluated
//! transforms are **bitwise equal** to the legacy build-per-point path
//! (`build_u_pair` + freshly-allocated iteration buffers) across random SMPs,
//! target sets and `s`-points — and a workspace reused across `s`-point
//! chunks, target sets and thread counts never leaks state from one
//! evaluation into the next.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smp_core::{IterationOptions, PassageTimeSolver, SemiMarkovProcess, SmpBuilder};
use smp_distributions::Dist;
use smp_numeric::Complex64;

/// A random irreducible SMP with a ring backbone, random extra edges, and —
/// importantly for the fill plan — occasional *duplicate* `(from, to)`
/// transitions carrying different distributions, whose contributions the
/// compression must sum in exactly the legacy order.
fn random_smp(seed: u64) -> SemiMarkovProcess {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..12usize);
    let mut b = SmpBuilder::new(n);
    for i in 0..n {
        b.add_transition(
            i,
            (i + 1) % n,
            rng.gen_range(0.5..2.0),
            Dist::exponential(rng.gen_range(0.5..3.0)),
        );
        for _ in 0..rng.gen_range(0..4usize) {
            let to = rng.gen_range(0..n);
            let dist = match rng.gen_range(0..4) {
                0 => Dist::exponential(rng.gen_range(0.2..3.0)),
                1 => Dist::erlang(rng.gen_range(0.5..2.0), rng.gen_range(1..4)),
                2 => Dist::deterministic(rng.gen_range(0.1..2.0)),
                _ => Dist::uniform(0.0, rng.gen_range(0.5..2.0)),
            };
            b.add_transition(i, to, rng.gen_range(0.1..1.5), dist);
        }
        // Parallel duplicate edges to the ring successor.
        if rng.gen_bool(0.4) {
            b.add_transition(
                i,
                (i + 1) % n,
                rng.gen_range(0.1..0.8),
                Dist::erlang(rng.gen_range(0.5..2.0), 2),
            );
        }
        if rng.gen_bool(0.2) {
            b.add_transition(
                i,
                (i + 1) % n,
                rng.gen_range(0.1..0.8),
                Dist::uniform(0.1, rng.gen_range(0.5..1.5)),
            );
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// transform_at == transform_at_legacy, bit for bit: value AND iteration
    /// count, at every probed point of the right half-plane.
    #[test]
    fn workspace_scalar_is_bitwise_legacy(
        seed in 0u64..400,
        re in 0.01f64..3.0,
        im in -6.0f64..6.0,
    ) {
        let smp = random_smp(seed);
        let n = smp.num_states();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let source = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        let solver = PassageTimeSolver::new(&smp, &[source], &[target]).unwrap();
        let s = Complex64::new(re, im);
        let fast = solver.transform_at(s).unwrap();
        let legacy = solver.transform_at_legacy(s).unwrap();
        prop_assert_eq!(fast.value, legacy.value);
        prop_assert_eq!(fast.iterations, legacy.iterations);
    }

    /// Vector form too (the transient path's building block).
    #[test]
    fn workspace_vector_is_bitwise_legacy(
        seed in 0u64..200,
        re in 0.01f64..2.0,
        im in -5.0f64..5.0,
    ) {
        let smp = random_smp(seed);
        let n = smp.num_states();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee3_22d1);
        let targets: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.3)).collect();
        let targets = if targets.is_empty() { vec![n - 1] } else { targets };
        let solver = PassageTimeSolver::new(&smp, &[0], &targets).unwrap();
        let s = Complex64::new(re, im);
        let fast = solver.transform_vector_at(s).unwrap();
        let legacy = solver.transform_vector_at_legacy(s).unwrap();
        prop_assert_eq!(fast, legacy);
    }

    /// Intra-point parallelism is *also* bitwise identical (the column-blocked
    /// scatter assigns every output column to exactly one thread, in the
    /// sequential accumulation order), for every thread count.
    #[test]
    fn threaded_workspace_is_bitwise_legacy(
        seed in 0u64..100,
        re in 0.05f64..2.0,
        threads in 2usize..6,
    ) {
        let smp = random_smp(seed);
        let n = smp.num_states();
        let solver = PassageTimeSolver::new(&smp, &[0], &[n - 1])
            .unwrap()
            .with_intra_point_threads(threads);
        let s = Complex64::new(re, 1.3);
        let fast = solver.transform_at(s).unwrap();
        let legacy = solver.transform_at_legacy(s).unwrap();
        prop_assert_eq!(fast.value, legacy.value);
        prop_assert_eq!(fast.iterations, legacy.iterations);
    }
}

/// A workspace reused across a whole chunk of `s`-points — and interleaved
/// with evaluations of *another* solver over a different target set — returns
/// exactly the same answers as fresh per-point evaluation: no state leaks
/// between points, targets or checkouts.
#[test]
fn workspace_reuse_across_chunks_and_target_sets_never_leaks() {
    let smp = random_smp(7);
    let n = smp.num_states();
    let solver_a = PassageTimeSolver::new(&smp, &[0], &[n - 1]).unwrap();
    let solver_b = PassageTimeSolver::new(&smp, &[0], &[n / 2]).unwrap();
    let points: Vec<Complex64> = (1..=20)
        .map(|k| Complex64::new(0.05 + 0.1 * k as f64, ((k * 7) % 11) as f64 - 5.0))
        .collect();

    // Reference: fresh legacy evaluation per point.
    let ref_a: Vec<_> = points
        .iter()
        .map(|&s| solver_a.transform_at_legacy(s).unwrap())
        .collect();
    let ref_b: Vec<_> = points
        .iter()
        .map(|&s| solver_b.transform_at_legacy(s).unwrap())
        .collect();

    // One workspace per solver, reused across every point, interleaved —
    // evaluated twice over to catch leakage from the first pass.
    let mut ws_a = solver_a.checkout_workspace();
    let mut ws_b = solver_b.checkout_workspace();
    for _round in 0..2 {
        for (i, &s) in points.iter().enumerate() {
            let a = solver_a.transform_at_with(&mut ws_a, s).unwrap();
            let b = solver_b.transform_at_with(&mut ws_b, s).unwrap();
            assert_eq!(a.value, ref_a[i].value, "solver A leaked at point {i}");
            assert_eq!(a.iterations, ref_a[i].iterations);
            assert_eq!(b.value, ref_b[i].value, "solver B leaked at point {i}");
            assert_eq!(b.iterations, ref_b[i].iterations);
        }
    }
    solver_a.give_back(ws_a);
    solver_b.give_back(ws_b);

    // The pool-managed convenience path agrees too, after the workspaces
    // above were returned (checkout reuses them).
    for (i, &s) in points.iter().enumerate() {
        assert_eq!(solver_a.transform_at(s).unwrap().value, ref_a[i].value);
    }

    // Stats reflect the reuse: every point after each workspace's first was
    // served without a rebuild.
    let stats = solver_a.hotpath_stats();
    assert!(stats.matrix_rebuilds_avoided >= 2 * points.len() as u64);
    assert!(stats.pooled_lst_evaluations > 0);
}

/// `r_transition_transform` (the truncated sum) also matches its legacy
/// arithmetic: identical prefix sums of the same iteration.
#[test]
fn r_transition_transform_matches_legacy_iteration_prefixes() {
    let smp = random_smp(11);
    let n = smp.num_states();
    let solver = PassageTimeSolver::new(&smp, &[0], &[n - 1]).unwrap();
    let s = Complex64::new(0.4, 0.9);
    // The truncated transform at r = max_iterations of a capped solver equals
    // the capped iteration's partial sum; spot-check monotone convergence to
    // the converged value instead (exact equality is covered by the solver's
    // own unit tests).
    let full = solver.transform_at(s).unwrap().value;
    let mut last_err = f64::INFINITY;
    for r in [1usize, 4, 16, 64, 256] {
        let err = (solver.r_transition_transform(s, r) - full).norm();
        assert!(err <= last_err + 1e-12);
        last_err = err;
    }
    assert!(last_err < 1e-6);
}

/// An LST underflowing to exactly zero (e.g. `e^{-s·d}` past `Re(s)·d ≈
/// 745`) makes the legacy construction drop the kernel entry structurally;
/// the workspace detects the unfaithful refill and routes the point through
/// the legacy path, so results stay bitwise identical even there.
#[test]
fn lst_underflow_points_fall_back_to_the_legacy_path_bitwise() {
    let mut b = SmpBuilder::new(3);
    b.add_transition(0, 1, 1.0, Dist::deterministic(2.0));
    b.add_transition(1, 2, 1.0, Dist::exponential(1.0));
    b.add_transition(2, 0, 1.0, Dist::exponential(0.5));
    let smp = b.build().unwrap();
    let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
    // e^{-500·2} underflows to exactly 0.0: build_u drops the 0→1 entry.
    for &re in &[500.0, 900.0] {
        let s = Complex64::real(re);
        let fast = solver.transform_at(s).unwrap();
        let legacy = solver.transform_at_legacy(s).unwrap();
        assert_eq!(fast.value, legacy.value);
        assert_eq!(fast.iterations, legacy.iterations);
        assert_eq!(
            solver.transform_vector_at(s).unwrap(),
            solver.transform_vector_at_legacy(s).unwrap()
        );
    }
    // And ordinary points on the same solver still use the fast path.
    let s = Complex64::new(0.5, 1.0);
    assert_eq!(
        solver.transform_at(s).unwrap().value,
        solver.transform_at_legacy(s).unwrap().value
    );
}

/// The memoized embedded-chain solve returns the same α-weights as a fresh
/// solve, and repeated multi-source solver construction over one process hits
/// the cache (same Arc).
#[test]
fn embedded_chain_memoization_is_transparent() {
    let smp = random_smp(13);
    let n = smp.num_states();
    let sources: Vec<usize> = (0..n).step_by(2).collect();
    let first =
        PassageTimeSolver::with_options(&smp, &sources, &[n - 1], IterationOptions::default())
            .unwrap();
    let second =
        PassageTimeSolver::with_options(&smp, &sources, &[n - 1], IterationOptions::default())
            .unwrap();
    assert_eq!(first.alpha(), second.alpha());
    let a = smp.embedded_chain().unwrap();
    let b = smp.embedded_chain().unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "second solve must hit the cache"
    );
    // Clones share the cache.
    let clone = smp.clone();
    let c = clone.embedded_chain().unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&a, &c),
        "clones share the memoized solve"
    );
}
