//! # smp-core
//!
//! Semi-Markov processes and the iterative passage-time / transient analysis
//! algorithm — the primary contribution of Bradley, Dingle, Harrison & Knottenbelt,
//! *"Distributed Computation of Passage Time Quantiles and Transient State
//! Distributions in Large Semi-Markov Models"* (IPDPS 2003).
//!
//! ## What lives here
//!
//! * [`SemiMarkovProcess`] — the time-homogeneous SMP kernel
//!   `R(i,j,t) = p_ij · H_ij(t)`, stored sparsely with a de-duplicated pool of
//!   holding-time distributions, plus the Laplace-domain matrices `U` (and its
//!   absorbing-target variant `U'`) evaluated at any complex `s`-point.
//! * [`embedded`] — the embedded DTMC, its stationary vector and the α-weights of
//!   Eq. (5) for passages starting from multiple source states at steady state.
//! * [`passage`] — the iterative `r`-transition passage-time algorithm of
//!   Section 3 (Eqs. 8–11): repeated sparse vector–matrix products with a vector
//!   accumulator, converging to `L_ij(s)` without ever factorising a matrix, plus a
//!   dense Gaussian-elimination reference solver (the `O(N³)` baseline the paper
//!   compares against).
//! * [`workspace`] — the symbolic/numeric split behind the per-`s`-point hot
//!   path: build the CSR skeleton of `U` and its fill plan once per
//!   (model, target set), refill a reusable values buffer per point, apply
//!   `U'` as a row mask — bitwise identical to the legacy build-per-point
//!   path at a fraction of the cost.
//! * [`shard`] — row-sharded slices of the same iteration (the paper's
//!   distributed memory model): deterministic contiguous state blocks,
//!   per-shard sub-skeletons with halo subscriptions, and an in-process
//!   lockstep [`ShardedSolver`] that is the bitwise-identical executable
//!   spec for the distributed SpMV transport in `smp-pipeline`.
//! * [`transient`] — transient state distributions from passage-time transforms via
//!   Pyke's relations (Eqs. 6–7).
//! * [`steady`] — SMP steady-state probabilities (embedded-chain stationary vector
//!   weighted by mean sojourn times), the asymptote shown in Fig. 7.
//! * [`solver`] — a high-level, single-process driver that goes from an SMP +
//!   source/target sets straight to densities, CDFs, quantiles and transients.
//!   (The distributed work-queue version of the same computation lives in
//!   `smp-pipeline`.)
//! * [`query`] — the typed measure-query layer: [`MeasureRequest`] /
//!   [`MeasureReport`] and the [`Engine`] trait that the analytic, simulation,
//!   distributed and uniformization engines in `smp-pipeline` all implement,
//!   so every consumer-facing quantity (densities, CDFs, transients,
//!   quantiles, moments) is served through one front door.
//! * [`uniform`] — the all-exponential special case: when every holding time
//!   is structurally exponential the SMP reduces exactly to a phase-space
//!   CTMC ([`PhaseCtmc`]) and transients / passage distributions come from
//!   Poisson-weighted power iteration (uniformization) with an a-priori
//!   truncation bound, no Laplace inversion involved.
//!
//! ## Quick example
//!
//! ```
//! use smp_core::{SmpBuilder, solver::PassageTimeAnalysis};
//! use smp_distributions::Dist;
//! use smp_laplace::InversionMethod;
//!
//! // A three-state SMP: 0 --Erlang(2,2)--> 1 --Exp(1)--> 2 --Det(1)--> 0
//! let mut builder = SmpBuilder::new(3);
//! builder.add_transition(0, 1, 1.0, Dist::erlang(2.0, 2));
//! builder.add_transition(1, 2, 1.0, Dist::exponential(1.0));
//! builder.add_transition(2, 0, 1.0, Dist::deterministic(1.0));
//! let smp = builder.build().unwrap();
//!
//! // Density of the passage from state 0 into state 2.
//! let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2]).unwrap();
//! let t_points: Vec<f64> = (1..=20).map(|k| k as f64 * 0.35).collect();
//! let density = analysis.density(InversionMethod::euler(), &t_points).unwrap();
//! let total: f64 = smp_numeric::stats::trapezoid(&t_points, density.values());
//! assert!((total - 0.95).abs() < 0.1); // most of the probability mass is covered
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod embedded;
pub mod error;
pub mod passage;
pub mod query;
pub mod shard;
pub mod smp;
pub mod solver;
pub mod steady;
pub mod transient;
pub mod uniform;
pub mod workspace;

pub use error::SmpError;
pub use passage::{IterationOptions, PassageTimeSolver};
pub use query::{
    CompareOp, Engine, EngineError, MeasureKind, MeasureReport, MeasureRequest, Provenance,
    TargetSpec,
};
pub use shard::{
    plan_exchange, shard_bounds, ConvergenceFold, ExchangePlan, FoldStatus, ShardWorkspace,
    ShardedSkeleton, ShardedSolver,
};
pub use smp::{SemiMarkovProcess, SmpBuilder, StateSet};
pub use solver::{PassageTimeAnalysis, TransientAnalysis};
pub use uniform::{PhaseCtmc, UniformError};
pub use workspace::{HotPathStats, PassageSkeleton, PassageWorkspace, WorkspacePool};
