//! Error types for semi-Markov analysis.

use std::fmt;

/// Errors produced while building or analysing a semi-Markov process.
#[derive(Debug, Clone, PartialEq)]
pub enum SmpError {
    /// A state index was outside `0..num_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// The number of states in the process.
        num_states: usize,
    },
    /// A state has no outgoing transitions; the SMP kernel would not be stochastic.
    DeadlockState {
        /// The state with no outgoing transitions.
        state: usize,
    },
    /// A transition weight was non-positive or non-finite.
    InvalidWeight {
        /// Source state of the transition.
        from: usize,
        /// Destination state of the transition.
        to: usize,
        /// The offending weight.
        weight: f64,
    },
    /// The requested source or target state set was empty.
    EmptyStateSet {
        /// Which set was empty ("source" or "target").
        which: &'static str,
    },
    /// The iterative algorithm failed to converge within the iteration budget.
    ConvergenceFailure {
        /// The `s`-point at which convergence failed (real, imaginary parts).
        s: (f64, f64),
        /// Number of iterations performed.
        iterations: usize,
        /// Magnitude of the last increment.
        last_delta: f64,
    },
    /// The embedded DTMC steady-state computation did not converge.
    SteadyStateFailure {
        /// Residual at the final iteration.
        residual: f64,
    },
    /// The model has no states at all.
    EmptyModel,
}

impl fmt::Display for SmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmpError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range (model has {num_states} states)")
            }
            SmpError::DeadlockState { state } => {
                write!(f, "state {state} has no outgoing transitions (deadlock)")
            }
            SmpError::InvalidWeight { from, to, weight } => {
                write!(f, "invalid weight {weight} on transition {from} -> {to}")
            }
            SmpError::EmptyStateSet { which } => write!(f, "{which} state set is empty"),
            SmpError::ConvergenceFailure {
                s,
                iterations,
                last_delta,
            } => write!(
                f,
                "iterative passage-time sum did not converge at s = {}+{}i after {} iterations (last delta {})",
                s.0, s.1, iterations, last_delta
            ),
            SmpError::SteadyStateFailure { residual } => {
                write!(f, "embedded DTMC steady-state solve did not converge (residual {residual})")
            }
            SmpError::EmptyModel => write!(f, "the model has no states"),
        }
    }
}

impl std::error::Error for SmpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SmpError, &str)> = vec![
            (
                SmpError::StateOutOfRange {
                    state: 7,
                    num_states: 3,
                },
                "state 7",
            ),
            (SmpError::DeadlockState { state: 2 }, "deadlock"),
            (
                SmpError::InvalidWeight {
                    from: 0,
                    to: 1,
                    weight: -1.0,
                },
                "invalid weight",
            ),
            (SmpError::EmptyStateSet { which: "target" }, "target"),
            (
                SmpError::ConvergenceFailure {
                    s: (1.0, 2.0),
                    iterations: 10,
                    last_delta: 0.5,
                },
                "did not converge",
            ),
            (
                SmpError::SteadyStateFailure { residual: 0.1 },
                "steady-state",
            ),
            (SmpError::EmptyModel, "no states"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} does not mention {needle}"
            );
        }
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SmpError::EmptyModel);
        assert!(e.to_string().contains("no states"));
    }
}
