//! The typed measure-query layer: one front door over every solution engine.
//!
//! The paper's headline deliverables are passage-time **quantiles** and
//! transient state distributions, *validated* by cross-checking the distributed
//! numerical results against a simulation of the same high-level model.  This
//! module is the API seam that serves those quantities uniformly:
//!
//! * a [`MeasureRequest`] says *what* is wanted — a measure [`MeasureKind`]
//!   (density, CDF, transient probability, quantiles, mean, higher moment), a
//!   [`TargetSpec`] predicate selecting the target markings, and an evaluation
//!   grid;
//! * a [`MeasureReport`] says what came back — the values plus a [`Provenance`]
//!   record of *how* they were computed (engine, backend, messages and bytes on
//!   the wire, wall time, statistical error bound);
//! * the [`Engine`] trait executes batches of requests.  Implementations live
//!   in `smp-pipeline` (`AnalyticEngine`, `SimulationEngine`,
//!   `DistributedEngine`) so that in-process Laplace inversion, discrete-event
//!   simulation and the distributed master–worker pipeline all sit behind the
//!   same call — the `smpq` CLI's `--engine` flag and `--validate-sim`
//!   cross-check are thin wrappers over [`Engine::solve`].
//!
//! Everything here is plain data with no solver dependencies, which is why it
//! lives in `smp-core`: any future backend (async, GPU, multi-master) plugs in
//! by implementing [`Engine`] against these types.

use std::time::Duration;

// ---------------------------------------------------------------------------
// Target predicates
// ---------------------------------------------------------------------------

/// Comparison operators accepted in a target predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CompareOp {
    Ge,
    Le,
    Gt,
    Lt,
    Eq,
    Ne,
}

impl CompareOp {
    /// The operator's source form, e.g. `>=`.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Ge => ">=",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Lt => "<",
            CompareOp::Eq => "==",
            CompareOp::Ne => "!=",
        }
    }

    /// Every operator with its symbol, in parse-precedence order
    /// (two-character symbols first so `p>=3` is never read as `p > =3`).
    pub const ALL: [(&'static str, CompareOp); 6] = [
        (">=", CompareOp::Ge),
        ("<=", CompareOp::Le),
        ("==", CompareOp::Eq),
        ("!=", CompareOp::Ne),
        (">", CompareOp::Gt),
        ("<", CompareOp::Lt),
    ];
}

/// A token-count predicate `PLACE OP N` selecting a model's target markings —
/// the serializable form of "the set of states the passage ends in".
///
/// The predicate is pure syntax at this level; resolving it against an
/// explored state space happens in `smp-pipeline` (which re-exports this type
/// for backward compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSpec {
    /// The place whose marking is compared.
    pub place: String,
    /// The comparison operator.
    pub op: CompareOp,
    /// The right-hand token count.
    pub count: u32,
}

impl TargetSpec {
    /// True when a token count satisfies the predicate.
    pub fn matches(&self, tokens: u32) -> bool {
        match self.op {
            CompareOp::Ge => tokens >= self.count,
            CompareOp::Le => tokens <= self.count,
            CompareOp::Gt => tokens > self.count,
            CompareOp::Lt => tokens < self.count,
            CompareOp::Eq => tokens == self.count,
            CompareOp::Ne => tokens != self.count,
        }
    }

    /// Parses the source form, e.g. `p2>=3`.  Errors name the offending token
    /// and list the valid operators.
    pub fn parse(text: &str) -> Result<TargetSpec, String> {
        for (symbol, op) in CompareOp::ALL {
            if let Some(pos) = text.find(symbol) {
                let place = text[..pos].trim();
                let count = text[pos + symbol.len()..].trim();
                if place.is_empty() {
                    return Err(format!("predicate '{text}' is missing a place name"));
                }
                let count = count.parse().map_err(|_| {
                    format!(
                        "predicate '{text}' needs an integer token count after '{symbol}' \
                         (got '{count}')"
                    )
                })?;
                return Ok(TargetSpec {
                    place: place.to_string(),
                    op,
                    count,
                });
            }
        }
        Err(format!(
            "predicate '{text}' has no comparison operator \
             (expected PLACE OP N, e.g. p2>=3; valid operators: >= <= > < == !=)"
        ))
    }
}

impl std::fmt::Display for TargetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}{}", self.place, self.op.symbol(), self.count)
    }
}

// ---------------------------------------------------------------------------
// Measure kinds and requests
// ---------------------------------------------------------------------------

/// What quantity a measure request asks for.
///
/// `Density`, `Cdf` and `Transient` are *curve* kinds evaluated on the
/// request's time grid.  `Quantile`, `Mean` and `Moment` are *derived* kinds
/// layered on the same passage-time transform: quantiles invert the CDF, the
/// mean and higher moments read the transform's derivatives at the origin
/// (`E[Tᵏ] = (−1)ᵏ L⁽ᵏ⁾(0)`).
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureKind {
    /// The passage-time density `f(t)` on the time grid.
    Density,
    /// The passage-time cumulative distribution `F(t)` on the time grid.
    Cdf,
    /// The transient state probability `P(Z(t) ∈ targets)` on the time grid.
    Transient,
    /// Passage-time quantiles: for each probability `p`, the earliest time by
    /// which the completion probability reaches `p`.
    Quantile {
        /// The requested probabilities, each in `(0, 1)`.
        probs: Vec<f64>,
    },
    /// The mean passage time `E[T]`.
    Mean,
    /// A raw passage-time moment `E[Tᵏ]` of the given order (`1..=4`).
    Moment {
        /// The moment order `k`.
        order: u32,
    },
}

/// The valid measure-kind names, for error messages and help text.
pub const MEASURE_KIND_NAMES: &str = "density, cdf, transient, quantile, mean, moment";

impl MeasureKind {
    /// Short lower-case name (used in reports and by the `smpq` CLI).
    pub fn name(&self) -> &'static str {
        match self {
            MeasureKind::Density => "density",
            MeasureKind::Cdf => "cdf",
            MeasureKind::Transient => "transient",
            MeasureKind::Quantile { .. } => "quantile",
            MeasureKind::Mean => "mean",
            MeasureKind::Moment { .. } => "moment",
        }
    }

    /// True for the kinds whose values live on the request's time grid.
    pub fn is_curve(&self) -> bool {
        matches!(
            self,
            MeasureKind::Density | MeasureKind::Cdf | MeasureKind::Transient
        )
    }

    /// True for the kinds derived from the first-passage transform (everything
    /// except `Transient`, which uses the transient transform).
    pub fn uses_passage_transform(&self) -> bool {
        !matches!(self, MeasureKind::Transient)
    }
}

/// One typed measure query: kind × target × evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRequest {
    /// What to compute.
    pub kind: MeasureKind,
    /// The target-marking predicate.
    pub target: TargetSpec,
    /// The evaluation time grid.  Curve kinds are evaluated on it; quantile
    /// searches use its last point as the initial search horizon; mean/moment
    /// ignore it.
    pub t_points: Vec<f64>,
}

impl MeasureRequest {
    /// A density request (grid filled in later with
    /// [`MeasureRequest::with_t_points`] or at construction).
    pub fn density(target: TargetSpec, t_points: &[f64]) -> Self {
        MeasureRequest {
            kind: MeasureKind::Density,
            target,
            t_points: t_points.to_vec(),
        }
    }

    /// A CDF request.
    pub fn cdf(target: TargetSpec, t_points: &[f64]) -> Self {
        MeasureRequest {
            kind: MeasureKind::Cdf,
            target,
            t_points: t_points.to_vec(),
        }
    }

    /// A transient state-probability request.
    pub fn transient(target: TargetSpec, t_points: &[f64]) -> Self {
        MeasureRequest {
            kind: MeasureKind::Transient,
            target,
            t_points: t_points.to_vec(),
        }
    }

    /// A quantile request for the given probabilities.
    pub fn quantile(target: TargetSpec, probs: &[f64]) -> Self {
        MeasureRequest {
            kind: MeasureKind::Quantile {
                probs: probs.to_vec(),
            },
            target,
            t_points: Vec::new(),
        }
    }

    /// A mean passage-time request.
    pub fn mean(target: TargetSpec) -> Self {
        MeasureRequest {
            kind: MeasureKind::Mean,
            target,
            t_points: Vec::new(),
        }
    }

    /// A raw-moment request of the given order.
    pub fn moment(target: TargetSpec, order: u32) -> Self {
        MeasureRequest {
            kind: MeasureKind::Moment { order },
            target,
            t_points: Vec::new(),
        }
    }

    /// Replaces the evaluation grid (builder style).  The CLI parses measures
    /// before it knows the grid flags, so requests are built grid-less and
    /// filled in here.
    pub fn with_t_points(mut self, t_points: &[f64]) -> Self {
        self.t_points = t_points.to_vec();
        self
    }

    /// The request's display name, e.g. `density:p2>=3` or
    /// `quantile:p2>=3@0.5,0.9,0.99`.
    pub fn name(&self) -> String {
        match &self.kind {
            MeasureKind::Quantile { probs } => {
                let list: Vec<String> = probs.iter().map(|p| format!("{p}")).collect();
                format!("quantile:{}@{}", self.target, list.join(","))
            }
            MeasureKind::Moment { order } => format!("moment:{}@{order}", self.target),
            kind => format!("{}:{}", kind.name(), self.target),
        }
    }

    /// Parses the `smpq` measure syntax `KIND:TARGET[@ARGS]`:
    ///
    /// * `density:p2>=3`, `cdf:p2>=3`, `transient:p6==0`
    /// * `quantile:p2>=3@0.5,0.9,0.99` — probabilities after `@`
    /// * `mean:p2>=3`
    /// * `moment:p2>=3@2` — the moment order after `@`
    ///
    /// The returned request has an empty time grid; callers fill it in with
    /// [`MeasureRequest::with_t_points`].  Errors name the offending token and
    /// list the valid kinds and operators.
    pub fn parse(text: &str) -> Result<MeasureRequest, String> {
        Self::parse_impl(text, None)
    }

    /// Like [`MeasureRequest::parse`], but kind errors speak for a specific
    /// engine: an unknown kind token lists the kinds *that engine* supports
    /// (rather than the global token list), and a well-formed kind outside
    /// `supported_kinds` is rejected outright.
    ///
    /// `supported_kinds` is the engine's comma-separated kind list — normally
    /// [`Engine::supported_kinds`].
    pub fn parse_for_engine(
        text: &str,
        engine: &str,
        supported_kinds: &str,
    ) -> Result<MeasureRequest, String> {
        let request = Self::parse_impl(text, Some((engine, supported_kinds)))?;
        let kind = request.kind.name();
        if supported_kinds.split(',').map(str::trim).any(|k| k == kind) {
            Ok(request)
        } else {
            Err(format!(
                "measure kind '{kind}' in '{text}' is not supported by the {engine} engine \
                 (kinds supported by the {engine} engine: {supported_kinds})"
            ))
        }
    }

    fn parse_impl(text: &str, engine: Option<(&str, &str)>) -> Result<MeasureRequest, String> {
        let Some((kind_text, rest)) = text.split_once(':') else {
            return Err(format!(
                "measure '{text}' is missing its kind prefix \
                 (expected KIND:TARGET, where KIND is one of {MEASURE_KIND_NAMES})"
            ));
        };
        // Split the optional @ARGS suffix off the target predicate.
        let (target_text, args) = match rest.split_once('@') {
            Some((target, args)) => (target, Some(args)),
            None => (rest, None),
        };
        let reject_args = |kind: &str| -> Result<(), String> {
            match args {
                Some(extra) => Err(format!(
                    "measure kind '{kind}' takes no '@' arguments (got '@{extra}' in '{text}')"
                )),
                None => Ok(()),
            }
        };
        let target = TargetSpec::parse(target_text)?;
        let kind = match kind_text {
            "density" => {
                reject_args("density")?;
                MeasureKind::Density
            }
            "cdf" => {
                reject_args("cdf")?;
                MeasureKind::Cdf
            }
            "transient" => {
                reject_args("transient")?;
                MeasureKind::Transient
            }
            "mean" => {
                reject_args("mean")?;
                MeasureKind::Mean
            }
            "quantile" => {
                let Some(args) = args else {
                    return Err(format!(
                        "quantile measure '{text}' is missing its probabilities \
                         (expected quantile:TARGET@P1,P2,..., e.g. quantile:{target}@0.5,0.9)"
                    ));
                };
                let mut probs = Vec::new();
                for token in args.split(',') {
                    let token = token.trim();
                    let p: f64 = token.parse().map_err(|_| {
                        format!("quantile probability '{token}' in '{text}' is not a number")
                    })?;
                    if !(p > 0.0 && p < 1.0) {
                        return Err(format!(
                            "quantile probability '{token}' in '{text}' must lie strictly \
                             between 0 and 1"
                        ));
                    }
                    probs.push(p);
                }
                if probs.is_empty() {
                    return Err(format!(
                        "quantile measure '{text}' lists no probabilities after '@'"
                    ));
                }
                MeasureKind::Quantile { probs }
            }
            "moment" => {
                let Some(args) = args else {
                    return Err(format!(
                        "moment measure '{text}' is missing its order \
                         (expected moment:TARGET@K, e.g. moment:{target}@2)"
                    ));
                };
                let order: u32 = args
                    .trim()
                    .parse()
                    .map_err(|_| format!("moment order '{args}' in '{text}' is not an integer"))?;
                if !(1..=4).contains(&order) {
                    return Err(format!(
                        "moment order {order} in '{text}' is out of range (supported: 1..=4)"
                    ));
                }
                MeasureKind::Moment { order }
            }
            other => {
                return Err(match engine {
                    Some((engine, kinds)) => format!(
                        "unknown measure kind '{other}' in '{text}' \
                         (kinds supported by the {engine} engine: {kinds})"
                    ),
                    None => format!(
                        "unknown measure kind '{other}' in '{text}' \
                         (valid kinds: {MEASURE_KIND_NAMES})"
                    ),
                })
            }
        };
        Ok(MeasureRequest {
            kind,
            target,
            t_points: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Reports and provenance
// ---------------------------------------------------------------------------

/// Where a report's numbers came from: the audit trail of one measure.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// The engine that produced the values (`analytic`, `simulation`,
    /// `distributed`).
    pub engine: &'static str,
    /// The engine's backend: transport name for the distributed engine
    /// (`in-process`, `sim-latency`, `tcp`), a replication/seed summary for
    /// the simulation engine, `sequential` for the analytic engine.
    pub backend: String,
    /// Workers (threads, processes or replication threads) that contributed.
    pub workers: usize,
    /// Reachable markings of the explored state space, when the engine
    /// explored it in-process (`None` when workers explored it remotely, or
    /// for the simulation engine which never builds the state space).
    pub states: Option<usize>,
    /// Protocol messages exchanged with workers (0 for purely local engines).
    pub messages: usize,
    /// Bytes shipped (or accounted) on the wire; 0 for purely local engines.
    pub bytes_on_wire: u64,
    /// Transform evaluations (analytic/distributed) or simulation
    /// replications (simulation) spent on this measure.
    pub evaluations: usize,
    /// Kernel-matrix constructions the symbolic/numeric split avoided: one
    /// per `s`-point served by refilling a prebuilt CSR skeleton instead of
    /// rebuilding the `(U, U')` pair (see `smp_core::workspace`).  Zero for
    /// engines that never ran a local evaluator (e.g. TCP workers count on
    /// their side of the wire).
    pub matrix_rebuilds_avoided: u64,
    /// Pooled Laplace–Stieltjes transform evaluations spent: one per
    /// *distinct* holding-time distribution per `s`-point, never one per
    /// transition.
    pub pooled_lst_evaluations: u64,
    /// Evaluation-grid points satisfied from a warm cache or checkpoint.
    pub cache_hits: usize,
    /// Evaluation-grid points shared with other measures of the same solve.
    pub shared_hits: usize,
    /// Wall-clock time of the run that produced this measure.
    pub wall: Duration,
    /// A statistical error bound on the values, when the engine has one (the
    /// simulation engine reports a 95% confidence half-width; deterministic
    /// engines report `None`).
    pub error_bound: Option<f64>,
    /// Time the request spent queued behind the admission controller before a
    /// solve slot opened (always zero outside the query server).
    pub queue_wait: Duration,
    /// Model-level artifacts served from a warm cache: compiled model sets
    /// (parse + state-space exploration + target resolution) and memoized
    /// engine-routing probes reused across requests.  Always zero outside the
    /// query server.
    pub model_cache_hits: usize,
    /// Model-level artifacts built from scratch for this request (each miss is
    /// a state-space exploration the cache could not avoid).  Always zero
    /// outside the query server.
    pub model_cache_misses: usize,
    /// Contiguous row shards the state space was partitioned into (0 when the
    /// solve was not row-sharded).
    pub shards: usize,
    /// Reachable markings owned per shard (empty when not sharded).  The
    /// entries sum to `states`; the largest is the per-worker memory
    /// high-water mark of the run.
    pub shard_states: Vec<usize>,
    /// Bytes of boundary (halo) vector entries shipped between shards during
    /// lockstep sparse matrix–vector rounds.
    pub halo_bytes: u64,
    /// Boundary-exchange rounds driven across all sharded evaluation points.
    pub exchange_rounds: u64,
    /// Connection or admission attempts retried with backoff (worker dials,
    /// client reconnects) before the run succeeded.
    pub retries: u64,
    /// Injected or real faults the run absorbed and recovered from without
    /// changing a value: requeued chunks after a worker loss, resharded
    /// sessions, refused-and-recovered corrupt frames.
    pub recovered_faults: u64,
    /// Lockstep rounds *skipped* because a solve resumed mid-point from a
    /// per-shard iterate checkpoint instead of redoing them (0 for cold
    /// runs).
    pub resumed_rounds: u64,
}

impl Provenance {
    /// A provenance skeleton for a purely local, deterministic engine.
    pub fn local(engine: &'static str, backend: impl Into<String>) -> Self {
        Provenance {
            engine,
            backend: backend.into(),
            workers: 1,
            states: None,
            messages: 0,
            bytes_on_wire: 0,
            evaluations: 0,
            matrix_rebuilds_avoided: 0,
            pooled_lst_evaluations: 0,
            cache_hits: 0,
            shared_hits: 0,
            wall: Duration::ZERO,
            error_bound: None,
            queue_wait: Duration::ZERO,
            model_cache_hits: 0,
            model_cache_misses: 0,
            shards: 0,
            shard_states: Vec::new(),
            halo_bytes: 0,
            exchange_rounds: 0,
            retries: 0,
            recovered_faults: 0,
            resumed_rounds: 0,
        }
    }
}

/// The outcome of one [`MeasureRequest`]: values plus provenance.
#[derive(Debug, Clone)]
pub struct MeasureReport {
    /// The request's display name ([`MeasureRequest::name`]).
    pub name: String,
    /// The request's kind (echoed back).
    pub kind: MeasureKind,
    /// The abscissae the values live on: the time grid for curve kinds, the
    /// requested probabilities for quantiles, `[order]` for mean/moment.
    pub points: Vec<f64>,
    /// The computed values, aligned with `points`.
    pub values: Vec<f64>,
    /// How the values were computed.
    pub provenance: Provenance,
}

impl MeasureReport {
    /// Iterates over `(point, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied().zip(self.values.iter().copied())
    }

    /// The single value of a scalar report (mean/moment), if that is what
    /// this is.
    pub fn scalar(&self) -> Option<f64> {
        match self.kind {
            MeasureKind::Mean | MeasureKind::Moment { .. } => self.values.first().copied(),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The engine trait
// ---------------------------------------------------------------------------

/// Why an engine could not answer a batch of requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The model is unreadable, unparsable, or a request names a place the
    /// model does not have.
    Model(String),
    /// The engine (or its current backend) cannot compute this kind of
    /// measure.
    Unsupported(String),
    /// The computation itself failed (solver divergence, transport loss,
    /// unreachable quantile, …).
    Analysis(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Model(m) => write!(f, "model error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported measure: {m}"),
            EngineError::Analysis(m) => write!(f, "analysis error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A measure engine: anything that can answer a batch of [`MeasureRequest`]s
/// with [`MeasureReport`]s.
///
/// The contract every implementation honours:
///
/// * reports come back **in request order**, one per request;
/// * deterministic engines (analytic inversion, the distributed pipeline)
///   return **bitwise-identical** values for the same requests regardless of
///   backend, worker count or chunking;
/// * stochastic engines (simulation) are deterministic for a fixed seed and
///   populate [`Provenance::error_bound`] so callers can cross-validate — the
///   paper's analytic-vs-simulation check as an API property.
pub trait Engine {
    /// The engine's short name (`analytic`, `simulation`, `distributed`,
    /// `uniformization`).
    fn name(&self) -> &'static str;

    /// The measure kinds this engine can answer, as the comma-separated list
    /// used by [`MeasureRequest::parse_for_engine`] in user-facing errors.
    ///
    /// Every shipped engine answers the full kind set, so the default returns
    /// [`MEASURE_KIND_NAMES`]; a restricted engine overrides this and parse
    /// errors then name *its* kinds instead of the global token list.
    fn supported_kinds(&self) -> &'static str {
        MEASURE_KIND_NAMES
    }

    /// Answers a batch of requests, in order.
    fn solve(&self, requests: &[MeasureRequest]) -> Result<Vec<MeasureReport>, EngineError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(text: &str) -> TargetSpec {
        TargetSpec::parse(text).unwrap()
    }

    #[test]
    fn target_parse_and_match_round_trip() {
        let cases = [
            ("p>=3", 3, true),
            ("p>=3", 2, false),
            ("p<=1", 1, true),
            ("p>0", 0, false),
            ("p<5", 4, true),
            ("p==2", 2, true),
            ("p!=2", 2, false),
        ];
        for (text, tokens, expect) in cases {
            let spec = target(text);
            assert_eq!(spec.matches(tokens), expect, "{text} with {tokens}");
            assert_eq!(spec.to_string(), text);
        }
    }

    #[test]
    fn target_parse_errors_name_the_token_and_list_operators() {
        let no_op = TargetSpec::parse("p2").unwrap_err();
        assert!(no_op.contains("'p2'"), "{no_op}");
        assert!(no_op.contains(">= <= > < == !="), "{no_op}");
        let bad_count = TargetSpec::parse("p2>=x").unwrap_err();
        assert!(bad_count.contains("'x'"), "{bad_count}");
        let no_place = TargetSpec::parse(">=3").unwrap_err();
        assert!(no_place.contains("place name"), "{no_place}");
    }

    #[test]
    fn measure_parse_all_kinds() {
        let d = MeasureRequest::parse("density:p2>=3").unwrap();
        assert_eq!(d.kind, MeasureKind::Density);
        assert_eq!(d.name(), "density:p2>=3");

        let q = MeasureRequest::parse("quantile:p2>=3@0.5,0.9,0.99").unwrap();
        assert_eq!(
            q.kind,
            MeasureKind::Quantile {
                probs: vec![0.5, 0.9, 0.99]
            }
        );
        assert_eq!(q.name(), "quantile:p2>=3@0.5,0.9,0.99");

        let m = MeasureRequest::parse("mean:p2>=3").unwrap();
        assert_eq!(m.kind, MeasureKind::Mean);

        let mm = MeasureRequest::parse("moment:p2>=3@2").unwrap();
        assert_eq!(mm.kind, MeasureKind::Moment { order: 2 });
        assert_eq!(mm.name(), "moment:p2>=3@2");

        let t = MeasureRequest::parse("transient:p6==0").unwrap();
        assert_eq!(t.kind, MeasureKind::Transient);
        assert!(!t.kind.uses_passage_transform());
        assert!(t.kind.is_curve());
        assert!(!mm.kind.is_curve());
    }

    #[test]
    fn measure_parse_errors_are_specific() {
        let missing_kind = MeasureRequest::parse("p2>=3").unwrap_err();
        assert!(
            missing_kind.contains("missing its kind prefix"),
            "{missing_kind}"
        );
        assert!(missing_kind.contains(MEASURE_KIND_NAMES), "{missing_kind}");

        let unknown = MeasureRequest::parse("meen:p2>=3").unwrap_err();
        assert!(unknown.contains("'meen'"), "{unknown}");
        assert!(unknown.contains(MEASURE_KIND_NAMES), "{unknown}");

        let no_probs = MeasureRequest::parse("quantile:p2>=3").unwrap_err();
        assert!(no_probs.contains("missing its probabilities"), "{no_probs}");

        let bad_prob = MeasureRequest::parse("quantile:p2>=3@0.5,two").unwrap_err();
        assert!(bad_prob.contains("'two'"), "{bad_prob}");

        let out_of_range = MeasureRequest::parse("quantile:p2>=3@1.5").unwrap_err();
        assert!(out_of_range.contains("between 0 and 1"), "{out_of_range}");

        let stray_args = MeasureRequest::parse("density:p2>=3@0.5").unwrap_err();
        assert!(
            stray_args.contains("takes no '@' arguments"),
            "{stray_args}"
        );

        let bad_order = MeasureRequest::parse("moment:p2>=3@9").unwrap_err();
        assert!(bad_order.contains("out of range"), "{bad_order}");

        let no_order = MeasureRequest::parse("moment:p2>=3").unwrap_err();
        assert!(no_order.contains("missing its order"), "{no_order}");
    }

    #[test]
    fn engine_scoped_parse_errors_name_the_engines_kinds() {
        // Unknown kind: the error lists the kinds supported by the named
        // engine, not the global token list.
        let unknown =
            MeasureRequest::parse_for_engine("meen:p2>=3", "uniform", "density, cdf").unwrap_err();
        assert_eq!(
            unknown,
            "unknown measure kind 'meen' in 'meen:p2>=3' \
             (kinds supported by the uniform engine: density, cdf)"
        );

        // Known kind outside the engine's supported set: rejected, naming both
        // the engine and its kind list.
        let unsupported =
            MeasureRequest::parse_for_engine("transient:p2>=1", "uniform", "density, cdf")
                .unwrap_err();
        assert_eq!(
            unsupported,
            "measure kind 'transient' in 'transient:p2>=1' is not supported by the \
             uniform engine (kinds supported by the uniform engine: density, cdf)"
        );

        // Supported kinds parse exactly as the plain parser would.
        let ok = MeasureRequest::parse_for_engine("cdf:p2>=1", "uniform", "density, cdf").unwrap();
        assert_eq!(ok, MeasureRequest::parse("cdf:p2>=1").unwrap());

        // The full kind list accepts everything, matching the Engine default.
        for text in ["density:p>=1", "transient:p>=1", "quantile:p>=1@0.5"] {
            MeasureRequest::parse_for_engine(text, "analytic", MEASURE_KIND_NAMES).unwrap();
        }
    }

    #[test]
    fn request_builders_and_grid_fill() {
        let ts = [1.0, 2.0, 3.0];
        let r = MeasureRequest::parse("cdf:p2>=3")
            .unwrap()
            .with_t_points(&ts);
        assert_eq!(r.t_points, ts);
        assert_eq!(r, MeasureRequest::cdf(target("p2>=3"), &ts));
        assert_eq!(
            MeasureRequest::quantile(target("p2>=3"), &[0.5]).name(),
            "quantile:p2>=3@0.5"
        );
        assert_eq!(MeasureRequest::mean(target("p2>=3")).name(), "mean:p2>=3");
        assert_eq!(
            MeasureRequest::moment(target("p2>=3"), 3).name(),
            "moment:p2>=3@3"
        );
    }

    #[test]
    fn report_scalar_accessor() {
        let report = MeasureReport {
            name: "mean:p>=1".into(),
            kind: MeasureKind::Mean,
            points: vec![1.0],
            values: vec![4.2],
            provenance: Provenance::local("analytic", "sequential"),
        };
        assert_eq!(report.scalar(), Some(4.2));
        assert_eq!(report.iter().count(), 1);
        let curve = MeasureReport {
            name: "cdf:p>=1".into(),
            kind: MeasureKind::Cdf,
            points: vec![1.0, 2.0],
            values: vec![0.1, 0.2],
            provenance: Provenance::local("analytic", "sequential"),
        };
        assert_eq!(curve.scalar(), None);
    }
}
