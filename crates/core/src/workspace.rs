//! Symbolic/numeric split for the per-`s`-point hot path.
//!
//! The paper's cost model (Section 4) is *number of transform evaluations ×
//! cost per evaluation*, yet the kernel matrix `U(s)` of Eq. (9) has a fixed
//! sparsity **structure** for a given model — only its numeric entries vary
//! with the transform variable `s`.  This module factors the per-point work
//! accordingly:
//!
//! * [`PassageSkeleton`] — the one-time *symbolic* phase per `(model, target
//!   set)` pair: the sorted CSR skeleton (`indptr` / `col_indices`) of `U`
//!   plus a per-nonzero fill plan of `(pool distribution id, probability)`
//!   contributions, and the target-set bookkeeping the iteration needs
//!   (membership mask, ascending index list).
//! * [`PassageWorkspace`] — the reusable *numeric* state: a CSR matrix whose
//!   values buffer is refilled in place per `s`-point (each pooled LST
//!   evaluated exactly once), and the iteration scratch vectors, so a batch
//!   of `s`-points allocates nothing after the first.
//! * [`WorkspacePool`] — a shared checkout pool so several worker threads can
//!   evaluate points of one measure concurrently, each amortising its own
//!   workspace, with aggregate [`HotPathStats`] for provenance reports.
//!
//! `U'` (targets made absorbing, Eq. 9) is never materialised: the masked
//! sparse kernels of `smp-sparse` (`vec_mul_into_masked` /
//! `mul_vec_into_masked`) apply the target-row mask on the fly, which is
//! bitwise identical to multiplying by `U.zero_rows(mask)`.
//!
//! ## Bitwise equivalence with the legacy path
//!
//! [`PassageWorkspace::refill`] reproduces `SemiMarkovProcess::build_u`
//! exactly: the skeleton is built by running the *same* triplet compression
//! (`TripletMatrix::to_csr`) with each entry's identity as the payload, so
//! duplicate `(row, col)` contributions are summed in the same order the
//! legacy path sums them, and every slot holds bit-for-bit the value the
//! legacy construction would produce.  The one structural difference:
//! `build_u` drops entries whose value is *exactly* zero at a particular `s`
//! (possible when an LST underflows at extreme `Re(s)·delay`, e.g.
//! `e^{-s·d}` past ~745), where the fixed skeleton keeps the slot.  `refill`
//! detects this and returns `false`; the solvers then route that point
//! through the legacy path, so results are bitwise identical
//! **unconditionally**.

use crate::smp::{DistId, SemiMarkovProcess, StateSet};
use smp_numeric::Complex64;
use smp_sparse::{CsrMatrix, Scalar, TripletMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregate counters of the symbolic/numeric split, surfaced through
/// `Provenance` so reports can show what the workspace saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotPathStats {
    /// Matrix constructions avoided: one per `s`-point served by refilling an
    /// existing skeleton instead of building the `(U, U')` pair from triplets.
    pub matrix_rebuilds_avoided: u64,
    /// Pooled Laplace–Stieltjes transform evaluations performed (one per
    /// *distinct* holding-time distribution per `s`-point — never one per
    /// transition).
    pub pooled_lst_evaluations: u64,
    /// Symbolic skeleton builds (one per `(model, target set)` per workspace
    /// actually created — bounded by the number of concurrent threads).
    pub skeleton_builds: u64,
}

impl HotPathStats {
    /// Element-wise sum of two stat snapshots.
    pub fn merged(self, other: HotPathStats) -> HotPathStats {
        HotPathStats {
            matrix_rebuilds_avoided: self.matrix_rebuilds_avoided + other.matrix_rebuilds_avoided,
            pooled_lst_evaluations: self.pooled_lst_evaluations + other.pooled_lst_evaluations,
            skeleton_builds: self.skeleton_builds + other.skeleton_builds,
        }
    }

    /// Element-wise difference against an earlier snapshot of the same
    /// counters (saturating, so a reset pool cannot underflow).
    pub fn since(self, earlier: HotPathStats) -> HotPathStats {
        HotPathStats {
            matrix_rebuilds_avoided: self
                .matrix_rebuilds_avoided
                .saturating_sub(earlier.matrix_rebuilds_avoided),
            pooled_lst_evaluations: self
                .pooled_lst_evaluations
                .saturating_sub(earlier.pooled_lst_evaluations),
            skeleton_builds: self.skeleton_builds.saturating_sub(earlier.skeleton_builds),
        }
    }
}

/// The target-independent half of the symbolic phase: the sorted CSR
/// structure of `U` and its per-nonzero fill plan.  Every target set over one
/// model shares it, so it is memoized per [`SemiMarkovProcess`]
/// (`SemiMarkovProcess::u_structure`) and building a [`PassageSkeleton`] for
/// another target set of an already-analysed process costs only `O(N)` for
/// the target bookkeeping — which is what keeps `TransientSolver`'s
/// one-cycle-solver-per-target construction (and its large-target-set
/// per-point fallback) cheap.
#[derive(Debug)]
pub(crate) struct UStructure {
    num_states: usize,
    num_dists: usize,
    indptr: Vec<u64>,
    col_indices: Vec<u32>,
    /// `slot_ptr[k] .. slot_ptr[k + 1]` indexes the contributions of CSR slot
    /// `k` in `contrib_dist` / `contrib_prob`, in legacy summation order.
    slot_ptr: Vec<u32>,
    /// True when every slot has exactly one contribution (no duplicate
    /// `(row, col)` transitions) — the common case, refilled by a plain zip.
    uniform_slots: bool,
    contrib_dist: Vec<DistId>,
    contrib_prob: Vec<f64>,
}

/// The symbolic phase: everything about `U(s)` and the target set that does
/// not depend on `s`, computed once per `(model, target set)` pair (the
/// target-independent structure is shared across skeletons of one process).
#[derive(Debug)]
pub struct PassageSkeleton {
    structure: Arc<UStructure>,
    target_mask: Vec<bool>,
    /// Target indices in ascending order — the order the legacy `dot_e`
    /// mask-filter visits them in, so the inner products sum identically.
    target_indices: Vec<usize>,
    /// Column-blocked layout of the row-masked `U'` view for the
    /// *bitwise-deterministic* parallel scatter — built lazily on the first
    /// threaded step, since intra-point parallelism is opt-in and the layout
    /// costs ~12 B per nonzero.
    blocked: std::sync::OnceLock<BlockedLayout>,
}

/// The column-blocked `U'` layout of the deterministic parallel scatter (see
/// [`PassageSkeleton`]): entries regrouped into fixed-width column blocks
/// ([`COLUMN_BLOCK_WIDTH`]), each block holding row *segments* in ascending
/// row order.  Every output column belongs to exactly one block and receives
/// its contributions in ascending source row order — the same order as the
/// sequential full-scan scatter — so the result is bit-identical for any
/// thread count, including one.
///
/// `blk_seg_ptr[b] .. blk_seg_ptr[b+1]` are block `b`'s segments; segment `g`
/// is row `seg_row[g]`, entries `seg_ptr[g] .. seg_ptr[g+1]` of `blk_cols` /
/// the workspace's mirrored blocked values (`blk_from_u`).
#[derive(Debug)]
struct BlockedLayout {
    blk_seg_ptr: Vec<u32>,
    seg_row: Vec<u32>,
    seg_ptr: Vec<u32>,
    blk_cols: Vec<u32>,
    blk_from_u: Vec<u32>,
}

impl UStructure {
    /// Runs the same triplet compression as `SemiMarkovProcess::build_u`, with
    /// each raw entry's index as the payload, so the resulting slot order and
    /// per-slot contribution order match the legacy construction exactly.
    pub(crate) fn build(smp: &SemiMarkovProcess) -> UStructure {
        let n = smp.num_states();
        // The raw entry stream of build_u, in push order.
        let mut entry_dist = Vec::with_capacity(smp.num_transitions());
        let mut entry_prob = Vec::with_capacity(smp.num_transitions());
        let mut tracer = TripletMatrix::<Complex64>::with_capacity(n, n, smp.num_transitions());
        for i in 0..n {
            for tr in smp.transitions(i) {
                // Payload: this entry's index, smuggled through the value bits
                // so the compression applies the identical permutation it
                // applies to the real values (same element type, same keys).
                let index = entry_dist.len() as u64;
                entry_dist.push(tr.dist);
                entry_prob.push(tr.probability);
                tracer.push(i, tr.target, Complex64::new(f64::from_bits(index), 1.0));
            }
        }
        // The compression merges duplicate coordinates (summing the payloads,
        // whose im = 1.0 keeps every merged value nonzero so no slot is
        // dropped); only its *structure* is kept.
        let traced = tracer.to_csr();

        // Recover each slot's contribution order by replaying the sort on the
        // raw stream: counting-sort by row (stable, matching to_csr), then
        // the identical `sort_unstable_by_key` call on `(u32, Complex64)`
        // pairs — same element type, same key sequence, same permutation.
        let mut row_counts = vec![0usize; n + 1];
        for i in 0..n {
            row_counts[i + 1] = row_counts[i] + smp.transitions(i).len();
        }
        let mut slot_ptr: Vec<u32> = Vec::with_capacity(traced.nnz() + 1);
        let mut contrib_dist: Vec<DistId> = Vec::with_capacity(entry_dist.len());
        let mut contrib_prob: Vec<f64> = Vec::with_capacity(entry_prob.len());
        slot_ptr.push(0);
        let mut scratch: Vec<(u32, Complex64)> = Vec::new();
        for (i, &row_base) in row_counts.iter().take(n).enumerate() {
            scratch.clear();
            for (offset, tr) in smp.transitions(i).iter().enumerate() {
                let index = (row_base + offset) as u64;
                scratch.push((tr.target as u32, Complex64::new(f64::from_bits(index), 1.0)));
            }
            // The exact call to_csr makes on the same element type with the
            // same key sequence — guaranteed to apply the same permutation.
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0usize;
            while k < scratch.len() {
                let c = scratch[k].0;
                while k < scratch.len() && scratch[k].0 == c {
                    let index = scratch[k].1.re.to_bits() as usize;
                    contrib_dist.push(entry_dist[index]);
                    contrib_prob.push(entry_prob[index]);
                    k += 1;
                }
                slot_ptr.push(contrib_dist.len() as u32);
            }
        }
        debug_assert_eq!(slot_ptr.len(), traced.nnz() + 1);
        let uniform_slots = slot_ptr.windows(2).all(|w| w[1] - w[0] == 1);

        UStructure {
            num_states: n,
            num_dists: smp.num_distributions(),
            indptr: traced.indptr().to_vec(),
            col_indices: traced.col_indices().to_vec(),
            slot_ptr,
            uniform_slots,
            contrib_dist,
            contrib_prob,
        }
    }

    // Read-only views for the row-sharded slices (`crate::shard`), which carve
    // per-shard sub-skeletons out of one memoized structure.

    pub(crate) fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    pub(crate) fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    pub(crate) fn slot_ptr(&self) -> &[u32] {
        &self.slot_ptr
    }

    pub(crate) fn contrib_dist(&self) -> &[DistId] {
        &self.contrib_dist
    }

    pub(crate) fn contrib_prob(&self) -> &[f64] {
        &self.contrib_prob
    }
}

impl PassageSkeleton {
    /// Builds the skeleton for a process and target set.
    ///
    /// The expensive target-independent structure (CSR skeleton + fill plan)
    /// comes from the process's memoized copy; only the `O(N)` target
    /// bookkeeping is built here.
    pub fn build(smp: &SemiMarkovProcess, targets: &StateSet) -> PassageSkeleton {
        let target_mask = targets.mask().to_vec();
        let target_indices: Vec<usize> = target_mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        PassageSkeleton {
            structure: smp.u_structure(),
            target_mask,
            target_indices,
            blocked: std::sync::OnceLock::new(),
        }
    }

    /// The column-blocked `U'` layout, built on first use (threaded steps
    /// only): bucket each unmasked row's entries by column block, rows in
    /// ascending order within every block.
    fn blocked_layout(&self) -> &BlockedLayout {
        self.blocked.get_or_init(|| {
            let n = self.structure.num_states;
            let indptr = &self.structure.indptr;
            let cols = &self.structure.col_indices;
            let num_blocks = n.div_ceil(COLUMN_BLOCK_WIDTH).max(1);
            let mut blk_segments: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); num_blocks];
            for r in 0..n {
                if self.target_mask[r] {
                    continue;
                }
                let (a, b) = (indptr[r] as usize, indptr[r + 1] as usize);
                let mut k = a;
                while k < b {
                    let block = cols[k] as usize / COLUMN_BLOCK_WIDTH;
                    let start = k;
                    // Columns are ascending within the row, so a block's
                    // entries form one contiguous run.
                    while k < b && cols[k] as usize / COLUMN_BLOCK_WIDTH == block {
                        k += 1;
                    }
                    blk_segments[block].push((r as u32, start as u32, (k - start) as u32));
                }
            }
            let mut blk_seg_ptr = Vec::with_capacity(num_blocks + 1);
            let mut seg_row = Vec::new();
            let mut seg_ptr = vec![0u32];
            let mut blk_cols = Vec::new();
            let mut blk_from_u = Vec::new();
            blk_seg_ptr.push(0u32);
            for segments in &blk_segments {
                for &(r, start, len) in segments {
                    seg_row.push(r);
                    for k in start..start + len {
                        blk_cols.push(cols[k as usize]);
                        blk_from_u.push(k);
                    }
                    seg_ptr.push(blk_cols.len() as u32);
                }
                blk_seg_ptr.push(seg_row.len() as u32);
            }
            BlockedLayout {
                blk_seg_ptr,
                seg_row,
                seg_ptr,
                blk_cols,
                blk_from_u,
            }
        })
    }

    /// Number of states (matrix dimension).
    pub fn num_states(&self) -> usize {
        self.structure.num_states
    }

    /// Number of stored non-zeros in the `U` skeleton.
    pub fn nnz(&self) -> usize {
        self.structure.col_indices.len()
    }

    /// The target-state membership mask (the row mask of the `U'` view).
    pub fn target_mask(&self) -> &[bool] {
        &self.target_mask
    }

    /// The target-state indices, ascending — the summation order of the
    /// `· ẽ` inner products of Eq. (9)/(10).
    pub fn target_indices(&self) -> &[usize] {
        &self.target_indices
    }

    /// Inner product of a state-indexed vector with the target indicator `ẽ`,
    /// in the same ascending order (and therefore with bitwise the same value)
    /// as the legacy full-mask filter — but in `O(|targets|)` instead of
    /// `O(N)` per transition.
    #[inline]
    pub fn dot_e(&self, vec: &[Complex64]) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for &t in &self.target_indices {
            acc += vec[t];
        }
        acc
    }

    /// An all-zero CSR matrix with this skeleton's structure, ready for
    /// refilling.
    fn empty_matrix(&self) -> CsrMatrix<Complex64> {
        CsrMatrix::from_raw_parts(
            self.structure.num_states,
            self.structure.num_states,
            self.structure.indptr.clone(),
            self.structure.col_indices.clone(),
            vec![Complex64::ZERO; self.structure.col_indices.len()],
        )
    }
}

/// Leave the sparse active-list iteration mode once the live fraction of the
/// term vector exceeds `1 / DENSE_SWITCH_DIVISOR` — past that point the plain
/// full-scan scatter's predictable branches beat the list bookkeeping.
const DENSE_SWITCH_DIVISOR: usize = 4;

/// Column-block width of the deterministic parallel scatter layout.  Each
/// block's 8192-column output slice (128 KiB of `Complex64`) stays
/// cache-resident per thread, and a ~100K-state model still yields a dozen
/// blocks to balance across threads.
const COLUMN_BLOCK_WIDTH: usize = 8192;

/// The numeric phase: reusable per-thread buffers for evaluating the
/// passage-time iteration at one `s`-point after another without allocating.
///
/// Obtain one from a [`WorkspacePool`] (or directly via
/// [`PassageWorkspace::new`]) and pass it to
/// `PassageTimeSolver::transform_at_with` to evaluate a whole chunk of
/// `s`-points through a single workspace.
#[derive(Debug)]
pub struct PassageWorkspace {
    skeleton: Arc<PassageSkeleton>,
    pub(crate) u: CsrMatrix<Complex64>,
    /// Values of the column-blocked `U'` layout, mirrored out of `u`'s values
    /// buffer lazily (first parallel step after each refill).  Intra-point
    /// threading is opt-in, so the buffer itself is only allocated on the
    /// first threaded step — a sequential workspace never pays the extra
    /// 16 B/nnz.
    blk_values: Vec<Complex64>,
    blk_filled: bool,
    pool_values: Vec<Complex64>,
    /// Iteration scratch, all `num_states` long.
    pub(crate) term: Vec<Complex64>,
    pub(crate) acc: Vec<Complex64>,
    pub(crate) scratch: Vec<Complex64>,
    /// Sparse-phase bookkeeping for the `term · U'` steps: the rows where
    /// `term` may be nonzero, ascending (empty + `dense = true` once the
    /// frontier saturates).  The passage iteration's term vector starts with
    /// a handful of nonzeros (the source states' successors) and fills in
    /// over the transitions — the active list makes the early iterations cost
    /// `O(live rows)` instead of `O(N)`.
    active: Vec<u32>,
    touched: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    dense: bool,
    filled: bool,
    stats: HotPathStats,
}

impl PassageWorkspace {
    /// Creates a workspace over a shared skeleton.
    pub fn new(skeleton: Arc<PassageSkeleton>) -> PassageWorkspace {
        let n = skeleton.structure.num_states;
        let u = skeleton.empty_matrix();
        let pool_values = vec![Complex64::ZERO; skeleton.structure.num_dists];
        PassageWorkspace {
            skeleton,
            u,
            blk_values: Vec::new(),
            blk_filled: false,
            pool_values,
            term: vec![Complex64::ZERO; n],
            acc: vec![Complex64::ZERO; n],
            scratch: vec![Complex64::ZERO; n],
            active: Vec::new(),
            touched: Vec::new(),
            stamp: vec![0; n],
            generation: 0,
            dense: true,
            filled: false,
            stats: HotPathStats {
                skeleton_builds: 0,
                ..HotPathStats::default()
            },
        }
    }

    /// The shared symbolic skeleton.
    pub fn skeleton(&self) -> &PassageSkeleton {
        &self.skeleton
    }

    /// The skeleton's shared handle (lets the iteration hold the skeleton
    /// while mutably borrowing the scratch buffers).
    pub(crate) fn skeleton_arc(&self) -> &Arc<PassageSkeleton> {
        &self.skeleton
    }

    /// The refilled `U(s)` matrix of the most recent [`PassageWorkspace::refill`].
    ///
    /// Use the masked products of `smp-sparse` with
    /// [`PassageSkeleton::target_mask`] to read it as `U'`.
    pub fn u(&self) -> &CsrMatrix<Complex64> {
        &self.u
    }

    /// Numeric phase: evaluates each pooled LST once at `s` and refills the
    /// values buffer in place — no triplet matrix, no sort, no allocation.
    ///
    /// Returns `true` when the refilled matrix is bit-for-bit what
    /// `SemiMarkovProcess::build_u(s)` would construct (see the module docs).
    /// The one case where it is not: a kernel entry evaluating to *exactly*
    /// zero (an LST underflowing at extreme `Re(s)·delay`, or duplicate
    /// contributions cancelling), which the legacy construction drops
    /// structurally while the fixed skeleton keeps the slot.  Callers fall
    /// back to the legacy path for such points, so results stay bitwise
    /// identical unconditionally.
    #[must_use = "a false return means the skeleton does not reproduce build_u at this point"]
    pub fn refill(&mut self, smp: &SemiMarkovProcess, s: Complex64) -> bool {
        debug_assert_eq!(smp.num_states(), self.skeleton.structure.num_states);
        for (id, slot) in self.pool_values.iter_mut().enumerate() {
            *slot = smp.distribution(id as DistId).lst(s);
        }
        let sk = &*self.skeleton.structure;
        let mut faithful = true;
        if sk.uniform_slots {
            // One contribution per slot — refill is a straight zip.
            for ((value, &dist), &prob) in self
                .u
                .values_mut()
                .iter_mut()
                .zip(&sk.contrib_dist)
                .zip(&sk.contrib_prob)
            {
                let v = self.pool_values[dist as usize].scale(prob);
                faithful &= !v.is_zero();
                *value = v;
            }
        } else {
            for (k, value) in self.u.values_mut().iter_mut().enumerate() {
                let start = sk.slot_ptr[k] as usize;
                let end = sk.slot_ptr[k + 1] as usize;
                // Same accumulation order as to_csr's duplicate merge: first
                // contribution initialises, the rest add in sorted-stream order.
                // A legacy zero *contribution* is skipped pre-sort, so any
                // zero factor (not just a zero sum) voids faithfulness.
                let mut acc =
                    self.pool_values[sk.contrib_dist[start] as usize].scale(sk.contrib_prob[start]);
                faithful &= !acc.is_zero();
                for j in start + 1..end {
                    let v = self.pool_values[sk.contrib_dist[j] as usize].scale(sk.contrib_prob[j]);
                    faithful &= !v.is_zero();
                    acc += v;
                }
                faithful &= !acc.is_zero();
                *value = acc;
            }
        }
        self.blk_filled = false;
        if faithful {
            if self.filled {
                self.stats.matrix_rebuilds_avoided += 1;
            }
            self.filled = true;
        }
        self.stats.pooled_lst_evaluations += self.pool_values.len() as u64;
        faithful
    }

    /// Prepares the sparse/dense iteration state for a fresh `s`-point, after
    /// the caller has written the point's initial vector into `term`: scans
    /// `term` once for its live rows, (re-)zeroes `scratch`, and picks the
    /// starting mode.  Must be called before the first
    /// [`PassageWorkspace::step_term_times_u_prime`] of every point.
    pub(crate) fn begin_point(&mut self) {
        let n = self.skeleton.structure.num_states;
        for slot in self.scratch.iter_mut() {
            *slot = Complex64::ZERO;
        }
        self.active.clear();
        for (r, value) in self.term.iter().enumerate() {
            if !value.is_zero() {
                self.active.push(r as u32);
            }
        }
        self.dense = self.active.len() > n / DENSE_SWITCH_DIVISOR;
    }

    /// One `term ← term · U'` step of the iteration (Eq. 10), exploiting term
    /// sparsity while it lasts.
    ///
    /// Sparse mode scatters only the rows on the active list — ascending, so
    /// each output accumulates its contributions in exactly the order the
    /// full-scan scatter produces them (rows absent from the list hold exact
    /// zeros, which the full scan skips anyway): bitwise identical to
    /// `U.zero_rows(targets).vec_mul_into(term, out)`, at `O(live)` instead
    /// of `O(N + nnz)`.  Once the live fraction saturates, the step switches
    /// to the full-scan masked scatter — or, with `threads > 1`, to the
    /// column-blocked *deterministic parallel* scatter, which partitions the
    /// output columns so every column is accumulated by exactly one thread
    /// in the same ascending row order: bit-identical for every thread
    /// count.
    pub(crate) fn step_term_times_u_prime(&mut self, threads: usize) {
        let sk = &*self.skeleton;
        if self.dense {
            // More than one column block is needed for the split to help.
            if threads > 1 && sk.num_states() > COLUMN_BLOCK_WIDTH {
                self.parallel_dense_step(threads);
            } else {
                self.u
                    .vec_mul_into_masked(&self.term, &mut self.scratch, &sk.target_mask);
            }
            std::mem::swap(&mut self.term, &mut self.scratch);
            return;
        }
        // Sparse mode invariant: scratch is all-zero here (established by
        // begin_point and restored below), so first touches need no clear.
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // A wrapped generation could collide with stale stamps and drop a
            // live row from the active list; reset instead.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.touched.clear();
        let indptr = self.u.indptr();
        let cols = self.u.col_indices();
        let values = self.u.values();
        for &r in &self.active {
            let r = r as usize;
            if sk.target_mask[r] {
                continue;
            }
            let xr = self.term[r];
            if xr.is_zero() {
                continue;
            }
            let start = indptr[r] as usize;
            let end = indptr[r + 1] as usize;
            for (&v, &c) in values[start..end].iter().zip(&cols[start..end]) {
                let c = c as usize;
                if self.stamp[c] != self.generation {
                    self.stamp[c] = self.generation;
                    self.touched.push(c as u32);
                }
                self.scratch[c] += v * xr;
            }
        }
        // Restore the all-zero invariant on the buffer about to become
        // scratch: only the old active rows can be nonzero in it.
        for &r in &self.active {
            self.term[r as usize] = Complex64::ZERO;
        }
        std::mem::swap(&mut self.term, &mut self.scratch);
        // The next round's active rows, ascending for the bitwise order: an
        // O(touched·log) sort while the frontier is small, an O(N) sequential
        // stamp scan once sorting would cost more.
        if self.touched.len() < sk.num_states() / 32 {
            self.touched.sort_unstable();
            std::mem::swap(&mut self.active, &mut self.touched);
        } else {
            self.active.clear();
            let generation = self.generation;
            for (c, &stamp) in self.stamp.iter().enumerate() {
                if stamp == generation {
                    self.active.push(c as u32);
                }
            }
        }
        if self.active.len() > sk.num_states() / DENSE_SWITCH_DIVISOR {
            self.dense = true;
        }
    }

    /// The dense-phase column-partitioned parallel scatter (see
    /// [`PassageWorkspace::step_term_times_u_prime`]): block `b` of the
    /// output is cleared and accumulated entirely by one thread, contributions
    /// per column in ascending source-row order — bit-identical to the
    /// sequential full-scan scatter for every thread count.
    fn parallel_dense_step(&mut self, threads: usize) {
        let blocked = self.skeleton.blocked_layout();
        if !self.blk_filled {
            if self.blk_values.len() != blocked.blk_cols.len() {
                self.blk_values = vec![Complex64::ZERO; blocked.blk_cols.len()];
            }
            let u_values = self.u.values();
            for (slot, &src) in self.blk_values.iter_mut().zip(&blocked.blk_from_u) {
                *slot = u_values[src as usize];
            }
            self.blk_filled = true;
        }
        let term = &self.term;
        let blk_values = &self.blk_values;
        let num_blocks = blocked.blk_seg_ptr.len() - 1;
        let threads = threads.min(num_blocks).max(1);
        let slices: Vec<(usize, &mut [Complex64])> = self
            .scratch
            .chunks_mut(COLUMN_BLOCK_WIDTH)
            .enumerate()
            .collect();
        let mut per_thread: Vec<Vec<(usize, &mut [Complex64])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, entry) in slices.into_iter().enumerate() {
            per_thread[i % threads].push(entry);
        }
        crossbeam::scope(|scope| {
            for group in per_thread {
                scope.spawn(move |_| {
                    for (b, slice) in group {
                        let base = b * COLUMN_BLOCK_WIDTH;
                        for out in slice.iter_mut() {
                            *out = Complex64::ZERO;
                        }
                        let s0 = blocked.blk_seg_ptr[b] as usize;
                        let s1 = blocked.blk_seg_ptr[b + 1] as usize;
                        for g in s0..s1 {
                            let xr = term[blocked.seg_row[g] as usize];
                            if xr.is_zero() {
                                continue;
                            }
                            let e0 = blocked.seg_ptr[g] as usize;
                            let e1 = blocked.seg_ptr[g + 1] as usize;
                            for (&c, &v) in blocked.blk_cols[e0..e1].iter().zip(&blk_values[e0..e1])
                            {
                                slice[c as usize - base] += v * xr;
                            }
                        }
                    }
                });
            }
        })
        .expect("parallel dense step scope failed");
    }

    /// Counters accumulated by this workspace since creation (or the last
    /// [`WorkspacePool`] check-in, which drains them into the pool).
    pub fn stats(&self) -> HotPathStats {
        self.stats
    }

    fn take_stats(&mut self) -> HotPathStats {
        std::mem::take(&mut self.stats)
    }
}

/// A checkout pool of [`PassageWorkspace`]s over one shared
/// [`PassageSkeleton`].
///
/// Solvers are shared across worker threads (`transform_fn` closures are
/// `Sync`), so the per-point buffers cannot live in the solver directly; the
/// pool hands each thread its own workspace and takes it back afterwards.
/// The number of workspaces ever created is bounded by the peak number of
/// concurrent threads, and each is reused for every subsequent point its
/// thread evaluates — which is what amortises the symbolic phase across a
/// whole work-queue chunk.
pub struct WorkspacePool {
    skeleton: Arc<PassageSkeleton>,
    idle: parking_lot::Mutex<Vec<PassageWorkspace>>,
    rebuilds_avoided: AtomicU64,
    lst_evaluations: AtomicU64,
    skeleton_builds: AtomicU64,
    created: AtomicU64,
}

impl std::fmt::Debug for WorkspacePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspacePool")
            .field("states", &self.skeleton.num_states())
            .field("nnz", &self.skeleton.nnz())
            .field("created", &self.created.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkspacePool {
    /// Builds the skeleton for `(smp, targets)` and an initially-empty pool
    /// over it.
    pub fn build(smp: &SemiMarkovProcess, targets: &StateSet) -> WorkspacePool {
        WorkspacePool {
            skeleton: Arc::new(PassageSkeleton::build(smp, targets)),
            idle: parking_lot::Mutex::new(Vec::new()),
            rebuilds_avoided: AtomicU64::new(0),
            lst_evaluations: AtomicU64::new(0),
            skeleton_builds: AtomicU64::new(1),
            created: AtomicU64::new(0),
        }
    }

    /// The shared skeleton.
    pub fn skeleton(&self) -> &Arc<PassageSkeleton> {
        &self.skeleton
    }

    /// Checks a workspace out (reusing an idle one when available).
    pub fn checkout(&self) -> PassageWorkspace {
        if let Some(ws) = self.idle.lock().pop() {
            return ws;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        PassageWorkspace::new(self.skeleton.clone())
    }

    /// Returns a workspace to the pool, folding its counters into the pool's
    /// aggregate stats.
    ///
    /// # Panics
    /// Panics if the workspace was built over a different skeleton — adopting
    /// it would hand later checkouts the wrong target set.
    pub fn give_back(&self, mut workspace: PassageWorkspace) {
        assert!(
            Arc::ptr_eq(&workspace.skeleton, &self.skeleton),
            "workspace returned to a pool it was not checked out from"
        );
        let stats = workspace.take_stats();
        self.rebuilds_avoided
            .fetch_add(stats.matrix_rebuilds_avoided, Ordering::Relaxed);
        self.lst_evaluations
            .fetch_add(stats.pooled_lst_evaluations, Ordering::Relaxed);
        self.skeleton_builds
            .fetch_add(stats.skeleton_builds, Ordering::Relaxed);
        self.idle.lock().push(workspace);
    }

    /// Aggregate counters over everything this pool's workspaces have done
    /// (checked-in work only; a workspace currently on loan reports at
    /// check-in).
    pub fn stats(&self) -> HotPathStats {
        HotPathStats {
            matrix_rebuilds_avoided: self.rebuilds_avoided.load(Ordering::Relaxed),
            pooled_lst_evaluations: self.lst_evaluations.load(Ordering::Relaxed),
            skeleton_builds: self.skeleton_builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use smp_distributions::Dist;

    /// A kernel with duplicate (row, col) transitions carrying different
    /// distributions — the case where contribution order matters.
    fn duplicate_edge_smp() -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(0, 1, 2.0, Dist::erlang(2.0, 2));
        b.add_transition(0, 1, 0.5, Dist::uniform(0.1, 0.9));
        b.add_transition(0, 2, 1.0, Dist::deterministic(0.4));
        b.add_transition(1, 2, 1.0, Dist::exponential(3.0));
        b.add_transition(1, 0, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(2, 0, 1.0, Dist::exponential(0.7));
        b.build().unwrap()
    }

    #[test]
    fn refilled_matrix_is_bitwise_build_u() {
        let smp = duplicate_edge_smp();
        let targets = StateSet::new(3, &[2]).unwrap();
        let pool = WorkspacePool::build(&smp, &targets);
        let mut ws = pool.checkout();
        for &(re, im) in &[(0.5, 0.0), (1.0, 2.0), (0.2, -3.0), (3.0, 7.0), (0.5, 0.0)] {
            let s = Complex64::new(re, im);
            assert!(ws.refill(&smp, s), "refill not faithful at s={s}");
            let legacy = smp.build_u(s);
            assert_eq!(ws.u().indptr(), legacy.indptr());
            assert_eq!(ws.u().col_indices(), legacy.col_indices());
            assert_eq!(ws.u().values(), legacy.values(), "values differ at s={s}");
        }
        pool.give_back(ws);
        let stats = pool.stats();
        assert_eq!(stats.matrix_rebuilds_avoided, 4); // 5 refills, first builds
        assert_eq!(
            stats.pooled_lst_evaluations,
            5 * smp.num_distributions() as u64
        );
        assert_eq!(stats.skeleton_builds, 1);
    }

    #[test]
    fn masked_view_matches_zero_rows_bitwise() {
        let smp = duplicate_edge_smp();
        let targets = StateSet::new(3, &[1, 2]).unwrap();
        let pool = WorkspacePool::build(&smp, &targets);
        let mut ws = pool.checkout();
        let s = Complex64::new(0.8, 1.3);
        assert!(ws.refill(&smp, s), "refill not faithful at s={s}");
        let (u, u_prime) = smp.build_u_pair(s, &targets);
        let x = vec![
            Complex64::new(1.0, -0.25),
            Complex64::new(0.5, 0.75),
            Complex64::new(-2.0, 0.125),
        ];
        let mut masked = vec![Complex64::ZERO; 3];
        ws.u()
            .vec_mul_into_masked(&x, &mut masked, pool.skeleton().target_mask());
        assert_eq!(masked, u_prime.vec_mul(&x));
        ws.u()
            .mul_vec_into_masked(&x, &mut masked, pool.skeleton().target_mask());
        assert_eq!(masked, u_prime.mul_vec(&x));
        assert_eq!(ws.u().values(), u.values());
    }

    #[test]
    fn dot_e_matches_mask_filter_order() {
        let smp = duplicate_edge_smp();
        // Insertion order deliberately descending: dot_e must still sum in
        // ascending state order like the legacy mask filter.
        let targets = StateSet::new(3, &[2, 0]).unwrap();
        let skeleton = PassageSkeleton::build(&smp, &targets);
        assert_eq!(skeleton.target_indices(), &[0, 2]);
        let v = vec![
            Complex64::new(0.1, 0.2),
            Complex64::new(9.0, 9.0),
            Complex64::new(0.4, -0.3),
        ];
        let legacy: Complex64 = v
            .iter()
            .zip(targets.mask())
            .filter(|(_, &m)| m)
            .map(|(c, _)| *c)
            .sum();
        assert_eq!(skeleton.dot_e(&v), legacy);
    }

    #[test]
    fn parallel_dense_step_is_bitwise_on_multi_block_models() {
        use crate::passage::PassageTimeSolver;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // More states than one column block, so the threaded step genuinely
        // partitions the output; long-range random edges make the term vector
        // saturate (dense phase) within a few transitions.
        let n = COLUMN_BLOCK_WIDTH + 2_000;
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = SmpBuilder::new(n);
        for i in 0..n {
            b.add_transition(
                i,
                (i + 1) % n,
                1.0,
                Dist::exponential(1.0 + (i % 7) as f64 * 0.3),
            );
            for _ in 0..3 {
                b.add_transition(
                    i,
                    rng.gen_range(0..n),
                    rng.gen_range(0.2..1.0),
                    Dist::erlang(1.5, 2),
                );
            }
        }
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[n - 1]).unwrap();
        let threaded = PassageTimeSolver::new(&smp, &[0], &[n - 1])
            .unwrap()
            .with_intra_point_threads(4);
        for &(re, im) in &[(0.6, 1.1), (0.2, -2.5)] {
            let s = Complex64::new(re, im);
            let legacy = solver.transform_at_legacy(s).unwrap();
            let sequential = solver.transform_at(s).unwrap();
            let parallel = threaded.transform_at(s).unwrap();
            assert_eq!(sequential.value, legacy.value);
            assert_eq!(parallel.value, legacy.value, "threaded mismatch at {s}");
            assert_eq!(parallel.iterations, legacy.iterations);
        }
    }

    #[test]
    fn pool_checkout_bounded_by_concurrency() {
        let smp = duplicate_edge_smp();
        let targets = StateSet::new(3, &[2]).unwrap();
        let pool = WorkspacePool::build(&smp, &targets);
        for _ in 0..10 {
            let ws = pool.checkout();
            pool.give_back(ws);
        }
        assert_eq!(pool.created.load(Ordering::Relaxed), 1);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.give_back(a);
        pool.give_back(b);
        assert_eq!(pool.created.load(Ordering::Relaxed), 2);
    }
}
