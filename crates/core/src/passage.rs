//! The iterative passage-time algorithm (Section 3 of the paper).
//!
//! For a target set `j`, the `r`-transition passage-time transform is
//!
//! ```text
//!   L̃^{(r)}_j(s) = U (I + U' + U'² + … + U'^{(r−1)}) ẽ           (Eq. 9)
//! ```
//!
//! where `U` has entries `u_pq = r*_pq(s)`, `U'` is `U` with the rows of target
//! states zeroed (targets made absorbing), and `ẽ_k = 1` iff `k ∈ j`.  With multiple
//! source states weighted by `α` (Eq. 5) this becomes
//!
//! ```text
//!   L^{(r)}_{i→j}(s) = (αU + αUU' + … + αUU'^{(r−1)}) ẽ          (Eq. 10)
//! ```
//!
//! which is evaluated with a row-vector accumulator: the accumulator is initialised
//! to `αU`, post-multiplied by `U'` at every step, and each term's inner product with
//! `ẽ` is added to the running result.  Convergence is declared when both the real
//! and the imaginary part of the increment fall below `ε` (Eq. 11).  The worst-case
//! cost is `O(N²r)` — compare the `O(N³)` of the dense solver in
//! [`dense_reference_solve`], which this module also provides as the validation
//! baseline.

use crate::error::SmpError;
use crate::smp::{SemiMarkovProcess, StateSet};
use crate::workspace::{HotPathStats, PassageWorkspace, WorkspacePool};
use smp_distributions::LaplaceTransform;
use smp_numeric::Complex64;
use smp_sparse::CsrMatrix;
use std::sync::Arc;

/// Convergence controls for the iterative sum (Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationOptions {
    /// Tolerance `ε` applied separately to the real and imaginary parts of the
    /// increment.
    pub epsilon: f64,
    /// Hard cap on the number of transitions `r` considered.
    pub max_iterations: usize,
    /// Number of consecutive sub-tolerance increments required before the sum is
    /// declared converged.  A value above 1 guards against passages whose shortest
    /// path to the target set is longer than the first quiet stretch of increments.
    pub consecutive: usize,
}

impl Default for IterationOptions {
    fn default() -> Self {
        IterationOptions {
            epsilon: smp_numeric::DEFAULT_EPSILON,
            max_iterations: 1_000_000,
            consecutive: 3,
        }
    }
}

/// The result of evaluating the passage-time transform at one `s`-point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassagePoint {
    /// The converged transform value `L_{i→j}(s)`.
    pub value: Complex64,
    /// The number of transitions `r` at which the sum converged.
    pub iterations: usize,
}

/// Evaluates passage-time transforms for one (source set, target set) pair of a
/// semi-Markov process.
///
/// Construction runs the one-time *symbolic* phase: the CSR skeleton of `U`
/// and its per-nonzero fill plan (see [`crate::workspace`]), the complex
/// α-vector, and the target-index list of the `· ẽ` inner products.  Each
/// [`PassageTimeSolver::transform_at`] call then performs only the *numeric*
/// phase — evaluate each pooled LST once, refill a reusable values buffer,
/// iterate — through a checked-out [`PassageWorkspace`], so a batch of
/// `s`-points allocates nothing after the first.  Results are bitwise
/// identical to the legacy build-per-point path
/// ([`PassageTimeSolver::transform_at_legacy`]).
#[derive(Debug, Clone)]
pub struct PassageTimeSolver<'a> {
    smp: &'a SemiMarkovProcess,
    sources: StateSet,
    targets: StateSet,
    alpha: Vec<f64>,
    options: IterationOptions,
    /// `α` lifted to ℂ once (the legacy path re-materialised it per point).
    alpha_c: Vec<Complex64>,
    /// Shared symbolic skeleton + reusable numeric workspaces.
    pool: Arc<WorkspacePool>,
    /// Intra-point parallelism (threads for the masked products); 1 =
    /// sequential and bitwise reproducible — see
    /// [`PassageTimeSolver::with_intra_point_threads`].
    intra_threads: usize,
}

impl<'a> PassageTimeSolver<'a> {
    /// Creates a solver for the passage from `sources` into `targets`.
    ///
    /// With a single source state no steady-state solve is needed (`α` is a unit
    /// vector); with several sources the embedded DTMC is solved to obtain the
    /// α-weights of Eq. (5).
    pub fn new(
        smp: &'a SemiMarkovProcess,
        sources: &[usize],
        targets: &[usize],
    ) -> Result<Self, SmpError> {
        Self::with_options(smp, sources, targets, IterationOptions::default())
    }

    /// Creates a solver with explicit convergence options.
    pub fn with_options(
        smp: &'a SemiMarkovProcess,
        sources: &[usize],
        targets: &[usize],
        options: IterationOptions,
    ) -> Result<Self, SmpError> {
        let n = smp.num_states();
        let sources = StateSet::new(n, sources)?;
        let targets = StateSet::new(n, targets)?;
        if sources.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "source" });
        }
        if targets.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "target" });
        }
        let alpha = if sources.len() == 1 {
            let mut a = vec![0.0; n];
            a[sources.indices()[0]] = 1.0;
            a
        } else {
            // Memoized per process: a batch of solvers over one model runs
            // the embedded steady-state solve exactly once.
            smp.embedded_chain()?.alpha_weights(&sources)?
        };
        Ok(Self::assemble(smp, sources, targets, alpha, options))
    }

    /// Shared tail of the constructors: precomputes the complex α-vector and
    /// the symbolic skeleton (the one-time phase of the symbolic/numeric
    /// split).
    fn assemble(
        smp: &'a SemiMarkovProcess,
        sources: StateSet,
        targets: StateSet,
        alpha: Vec<f64>,
        options: IterationOptions,
    ) -> Self {
        let alpha_c: Vec<Complex64> = alpha.iter().map(|&a| Complex64::real(a)).collect();
        let pool = Arc::new(WorkspacePool::build(smp, &targets));
        PassageTimeSolver {
            smp,
            sources,
            targets,
            alpha,
            options,
            alpha_c,
            pool,
            intra_threads: 1,
        }
    }

    /// Creates a solver with caller-supplied α-weights (must be a full-length vector
    /// summing to 1 and supported on the source set).  Used when the start-of-passage
    /// distribution is known from context — e.g. a transient analysis started from a
    /// specific initial marking rather than from steady state.
    pub fn with_alpha(
        smp: &'a SemiMarkovProcess,
        alpha: Vec<f64>,
        targets: &[usize],
        options: IterationOptions,
    ) -> Result<Self, SmpError> {
        let n = smp.num_states();
        if alpha.len() != n {
            return Err(SmpError::StateOutOfRange {
                state: alpha.len(),
                num_states: n,
            });
        }
        let targets = StateSet::new(n, targets)?;
        if targets.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "target" });
        }
        let source_indices: Vec<usize> = alpha
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| i)
            .collect();
        if source_indices.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "source" });
        }
        let sources = StateSet::new(n, &source_indices)?;
        Ok(Self::assemble(smp, sources, targets, alpha, options))
    }

    /// Opts in to intra-point parallelism: the dense-phase `x·U'` products of
    /// the iteration are split over `threads` threads through the skeleton's
    /// column-blocked layout.
    ///
    /// The paper parallelises across independent `s`-points first; this is
    /// the second-level split for very large state spaces.  Every output
    /// column is accumulated by exactly one thread in the same ascending
    /// source-row order as the sequential scatter, so results stay **bitwise
    /// identical for every thread count** — including the legacy
    /// build-per-point path.
    ///
    /// Each dense-phase step currently spawns its scoped threads afresh
    /// (tens of microseconds per step), so the split only pays off when a
    /// single step's scatter work dominates that overhead — roughly
    /// `num_states ≫ 10⁵`.  Leave it at 1 for smaller models.
    pub fn with_intra_point_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads.max(1);
        self
    }

    /// The source state set.
    pub fn sources(&self) -> &StateSet {
        &self.sources
    }

    /// The target state set.
    pub fn targets(&self) -> &StateSet {
        &self.targets
    }

    /// The α-weights in use (Eq. 5).
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The convergence options in use.
    pub fn options(&self) -> &IterationOptions {
        &self.options
    }

    /// The underlying process.
    pub fn smp(&self) -> &SemiMarkovProcess {
        self.smp
    }

    /// The closure form of this solver consumed by the distributed pipeline's
    /// measure specs and scalability sweeps: evaluate the transform, keep the
    /// converged value, stringify the error.  Every call site used to spell
    /// this closure out by hand; it is the canonical evaluator-from-solver
    /// constructor now.
    pub fn transform_fn(&self) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync + '_ {
        move |s| {
            self.transform_at(s)
                .map(|p| p.value)
                .map_err(|e| e.to_string())
        }
    }

    /// A workspace built over another solver's skeleton would silently
    /// compute against the wrong target set; the pointer comparison is free
    /// next to a transform evaluation, so this guards release builds too.
    fn check_workspace(&self, ws: &PassageWorkspace) {
        assert!(
            Arc::ptr_eq(ws.skeleton_arc(), self.pool.skeleton()),
            "workspace belongs to a different solver (checkout_workspace \
             and transform_at_with must use the same solver)"
        );
    }

    /// Checks a reusable workspace out of this solver's pool.  Pair with
    /// [`PassageTimeSolver::give_back`] around a batch of
    /// [`PassageTimeSolver::transform_at_with`] calls to evaluate a whole
    /// chunk of `s`-points through one workspace explicitly (the convenience
    /// wrappers do this per call, which costs one pool lock round-trip).
    pub fn checkout_workspace(&self) -> PassageWorkspace {
        self.pool.checkout()
    }

    /// Returns a workspace to the pool, folding its counters into
    /// [`PassageTimeSolver::hotpath_stats`].
    pub fn give_back(&self, workspace: PassageWorkspace) {
        self.pool.give_back(workspace);
    }

    /// Runs `f` with a workspace checked out of this solver's pool and
    /// returns it afterwards — the scoped form of
    /// [`PassageTimeSolver::checkout_workspace`] /
    /// [`PassageTimeSolver::give_back`] that centralises the return-to-pool
    /// discipline (early `?` returns inside `f` still give the workspace
    /// back; a panic merely forfeits one pooled buffer).
    pub fn with_workspace<R>(&self, f: impl FnOnce(&mut PassageWorkspace) -> R) -> R {
        let mut ws = self.pool.checkout();
        let result = f(&mut ws);
        self.pool.give_back(ws);
        result
    }

    /// Aggregate symbolic/numeric-split counters for this solver (matrix
    /// rebuilds avoided, pooled LST evaluations) — surfaced through
    /// `Provenance` in engine reports.
    pub fn hotpath_stats(&self) -> HotPathStats {
        self.pool.stats()
    }

    /// Evaluates the α-weighted passage-time transform `L_{i→j}(s)` at one complex
    /// point by the iterative algorithm of Eq. (10).
    pub fn transform_at(&self, s: Complex64) -> Result<PassagePoint, SmpError> {
        self.with_workspace(|ws| self.transform_at_with(ws, s))
    }

    /// [`PassageTimeSolver::transform_at`] through an explicit, reusable
    /// workspace: the numeric phase refills the workspace's `U` values in
    /// place (one pooled LST evaluation per distinct distribution) and runs
    /// the iteration in its scratch buffers — no matrix construction, no
    /// sort, no allocation.
    pub fn transform_at_with(
        &self,
        ws: &mut PassageWorkspace,
        s: Complex64,
    ) -> Result<PassagePoint, SmpError> {
        self.check_workspace(ws);
        if !ws.refill(self.smp, s) {
            // A kernel entry evaluated to exact zero (an LST underflowing at
            // extreme Re(s)·delay, or cancelling duplicates): the fixed
            // skeleton cannot reproduce build_u's structural drop, so this
            // point takes the legacy path — bitwise identity holds
            // unconditionally.
            return self.transform_at_legacy(s);
        }
        let sk = Arc::clone(ws.skeleton_arc());
        // Accumulator initialised to αU (the leading U term of Eq. 9/10 ensures
        // cycle times L_ii register correctly instead of collapsing to zero).
        ws.u.vec_mul_into(&self.alpha_c, &mut ws.term);
        ws.begin_point();
        let mut total = sk.dot_e(&ws.term);
        let mut quiet = 0usize;
        let mut last_delta = f64::INFINITY;
        for r in 1..=self.options.max_iterations {
            self.masked_vec_mul_step(ws);
            let delta = sk.dot_e(&ws.term);
            total += delta;
            last_delta = delta.re.abs().max(delta.im.abs());
            // Also require the whole accumulator to have gone quiet: a passage
            // whose shortest route to the target is long produces exact zero
            // increments for the first few transitions even though mass is
            // still in flight.  `term_is_quiet` reaches the same decision as
            // the legacy full `max(norm)` fold, lazily.
            if last_delta < self.options.epsilon && term_is_quiet(&ws.term, self.options.epsilon) {
                quiet += 1;
                if quiet >= self.options.consecutive {
                    return Ok(PassagePoint {
                        value: total,
                        iterations: r,
                    });
                }
            } else {
                quiet = 0;
            }
        }
        Err(SmpError::ConvergenceFailure {
            s: (s.re, s.im),
            iterations: self.options.max_iterations,
            last_delta,
        })
    }

    /// One `term ← term · U'` step through the workspace's sparsity-aware
    /// kernels, split over the configured intra-point threads when the dense
    /// phase is reached (bit-identical for every thread count — see
    /// `PassageWorkspace::step_term_times_u_prime`).
    fn masked_vec_mul_step(&self, ws: &mut PassageWorkspace) {
        ws.step_term_times_u_prime(self.intra_threads);
    }

    /// Evaluates the full vector `L̃_j(s) = (L_{1j}(s), …, L_{Nj}(s))` at one complex
    /// point by the column-oriented form of Eq. (9).  One call yields the passage
    /// transform from *every* source state into the target set — this is what the
    /// transient computation (Eq. 7) consumes, since it needs `L_{ik}(s)` together
    /// with the cycle-time transforms `L_{kk}(s)`.
    pub fn transform_vector_at(&self, s: Complex64) -> Result<Vec<Complex64>, SmpError> {
        self.with_workspace(|ws| self.transform_vector_at_with(ws, s))
    }

    /// [`PassageTimeSolver::transform_vector_at`] through an explicit,
    /// reusable workspace.
    pub fn transform_vector_at_with(
        &self,
        ws: &mut PassageWorkspace,
        s: Complex64,
    ) -> Result<Vec<Complex64>, SmpError> {
        self.check_workspace(ws);
        if !ws.refill(self.smp, s) {
            // See transform_at_with: exact-zero kernel entries take the
            // legacy path so results stay bitwise identical.
            return self.transform_vector_at_legacy(s);
        }
        let sk = Arc::clone(ws.skeleton_arc());
        let mask = sk.target_mask();
        // v_r = U'^r ẽ ;   acc = Σ_{r=0}^{R-1} v_r ;   L̃ = U · acc
        // (v lives in ws.term, U'·v in ws.scratch.)
        for (k, slot) in ws.term.iter_mut().enumerate() {
            *slot = if self.targets.contains(k) {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
        }
        ws.acc.copy_from_slice(&ws.term);
        let mut quiet = 0usize;
        let mut iterations = 0usize;
        while iterations < self.options.max_iterations {
            iterations += 1;
            ws.u.mul_vec_into_masked(&ws.term, &mut ws.scratch, mask);
            std::mem::swap(&mut ws.term, &mut ws.scratch);
            let mut max_delta = 0.0f64;
            for (a, d) in ws.acc.iter_mut().zip(&ws.term) {
                *a += *d;
                max_delta = max_delta.max(d.re.abs()).max(d.im.abs());
            }
            if max_delta < self.options.epsilon {
                quiet += 1;
                if quiet >= self.options.consecutive {
                    return Ok(ws.u.mul_vec(&ws.acc));
                }
            } else {
                quiet = 0;
            }
        }
        Err(SmpError::ConvergenceFailure {
            s: (s.re, s.im),
            iterations,
            last_delta: ws.term.iter().map(|c| c.norm()).fold(0.0, f64::max),
        })
    }

    /// Evaluates the truncated `r`-transition transform `L^{(r)}_{i→j}(s)` exactly —
    /// no convergence test, precisely `r` terms of the sum.  Used to study the
    /// convergence behaviour of the iteration (the paper's stated future work) and
    /// by the ablation benchmarks.
    pub fn r_transition_transform(&self, s: Complex64, r: usize) -> Complex64 {
        if r == 0 {
            return Complex64::ZERO;
        }
        let mut ws = self.pool.checkout();
        if !ws.refill(self.smp, s) {
            // See transform_at_with: exact-zero kernel entries take the
            // legacy path so results stay bitwise identical.
            self.pool.give_back(ws);
            return self.r_transition_transform_legacy(s, r);
        }
        let sk = Arc::clone(ws.skeleton_arc());
        ws.u.vec_mul_into(&self.alpha_c, &mut ws.term);
        ws.begin_point();
        let mut total = sk.dot_e(&ws.term);
        for _ in 1..r {
            self.masked_vec_mul_step(&mut ws);
            total += sk.dot_e(&ws.term);
        }
        self.pool.give_back(ws);
        total
    }

    /// The legacy build-per-point form of the truncated transform (the
    /// exact-zero fallback of [`PassageTimeSolver::r_transition_transform`]).
    fn r_transition_transform_legacy(&self, s: Complex64, r: usize) -> Complex64 {
        let (u, u_prime) = self.smp.build_u_pair(s, &self.targets);
        let alpha_c: Vec<Complex64> = self.alpha.iter().map(|&a| Complex64::real(a)).collect();
        let e_mask = self.targets.mask();
        let dot_e = |vec: &[Complex64]| -> Complex64 {
            vec.iter()
                .zip(e_mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| *v)
                .sum()
        };
        if r == 0 {
            return Complex64::ZERO;
        }
        let mut term = u.vec_mul(&alpha_c);
        let mut total = dot_e(&term);
        let mut scratch = vec![Complex64::ZERO; term.len()];
        for _ in 1..r {
            u_prime.vec_mul_into(&term, &mut scratch);
            std::mem::swap(&mut term, &mut scratch);
            total += dot_e(&term);
        }
        total
    }

    // -----------------------------------------------------------------------
    // Legacy build-per-point path — the validation baseline.
    // -----------------------------------------------------------------------

    /// The legacy per-point evaluation: materialises the `(U, U')` pair from
    /// triplets at every call (`SemiMarkovProcess::build_u_pair`) and iterates
    /// with freshly-allocated buffers.
    ///
    /// Kept as the validation baseline for the symbolic/numeric split: the
    /// equivalence proptests and `bench_hotpath` assert that
    /// [`PassageTimeSolver::transform_at`] reproduces this bitwise while
    /// skipping all of the per-point construction.
    pub fn transform_at_legacy(&self, s: Complex64) -> Result<PassagePoint, SmpError> {
        let (u, u_prime) = self.smp.build_u_pair(s, &self.targets);
        self.iterate_row_legacy(&u, &u_prime, s)
    }

    /// The legacy build-per-point form of
    /// [`PassageTimeSolver::transform_vector_at`] (see
    /// [`PassageTimeSolver::transform_at_legacy`]).
    pub fn transform_vector_at_legacy(&self, s: Complex64) -> Result<Vec<Complex64>, SmpError> {
        let (u, u_prime) = self.smp.build_u_pair(s, &self.targets);
        let n = self.smp.num_states();
        let mut v: Vec<Complex64> = (0..n)
            .map(|k| {
                if self.targets.contains(k) {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                }
            })
            .collect();
        let mut acc = v.clone();
        let mut scratch = vec![Complex64::ZERO; n];
        let mut quiet = 0usize;
        let mut iterations = 0usize;
        while iterations < self.options.max_iterations {
            iterations += 1;
            u_prime.mul_vec_into(&v, &mut scratch);
            std::mem::swap(&mut v, &mut scratch);
            let mut max_delta = 0.0f64;
            for (a, d) in acc.iter_mut().zip(&v) {
                *a += *d;
                max_delta = max_delta.max(d.re.abs()).max(d.im.abs());
            }
            if max_delta < self.options.epsilon {
                quiet += 1;
                if quiet >= self.options.consecutive {
                    return Ok(u.mul_vec(&acc));
                }
            } else {
                quiet = 0;
            }
        }
        Err(SmpError::ConvergenceFailure {
            s: (s.re, s.im),
            iterations,
            last_delta: v.iter().map(|c| c.norm()).fold(0.0, f64::max),
        })
    }

    fn iterate_row_legacy(
        &self,
        u: &CsrMatrix<Complex64>,
        u_prime: &CsrMatrix<Complex64>,
        s: Complex64,
    ) -> Result<PassagePoint, SmpError> {
        let alpha_c: Vec<Complex64> = self.alpha.iter().map(|&a| Complex64::real(a)).collect();
        let mut term = u.vec_mul(&alpha_c);
        let e_mask = self.targets.mask();
        let dot_e = |vec: &[Complex64]| -> Complex64 {
            vec.iter()
                .zip(e_mask)
                .filter(|(_, &m)| m)
                .map(|(v, _)| *v)
                .sum()
        };
        let mut total = dot_e(&term);
        let mut scratch = vec![Complex64::ZERO; term.len()];
        let mut quiet = 0usize;
        let mut last_delta = f64::INFINITY;
        for r in 1..=self.options.max_iterations {
            u_prime.vec_mul_into(&term, &mut scratch);
            std::mem::swap(&mut term, &mut scratch);
            let delta = dot_e(&term);
            total += delta;
            last_delta = delta.re.abs().max(delta.im.abs());
            let term_mass: f64 = term.iter().map(|c| c.norm()).fold(0.0, f64::max);
            if last_delta < self.options.epsilon && term_mass < self.options.epsilon {
                quiet += 1;
                if quiet >= self.options.consecutive {
                    return Ok(PassagePoint {
                        value: total,
                        iterations: r,
                    });
                }
            } else {
                quiet = 0;
            }
        }
        Err(SmpError::ConvergenceFailure {
            s: (s.re, s.im),
            iterations: self.options.max_iterations,
            last_delta,
        })
    }
}

/// Exactly the legacy quiet test `max_i |term_i| < ε` (the fold of `hypot`
/// norms compared against ε), decided lazily: `hypot(a, b) ≥ max(|a|, |b|)`
/// holds in floating point, so any component at or above ε settles the answer
/// without computing the norm — and this runs at all only on iterations whose
/// increment already went quiet (the `&&` above short-circuits), instead of
/// `N` square roots on *every* transition.
///
/// NaN components mirror the legacy `f64::max` fold, which ignores NaN: a NaN
/// norm contributes nothing, while an infinite component (whose norm is +∞
/// even when the other component is NaN) is loud.
///
/// The test is per-element and order-independent, so the row-sharded solver
/// (`crate::shard`) applies it to each shard's slice of the term vector and
/// ANDs the verdicts — exactly the whole-vector answer.
pub(crate) fn term_is_quiet(term: &[Complex64], epsilon: f64) -> bool {
    // The legacy fold starts at 0.0, so its mass is never below a
    // non-positive (or NaN) ε.
    if epsilon.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return false;
    }
    let half = epsilon * 0.5;
    for c in term {
        let a = c.re.abs();
        let b = c.im.abs();
        // Provably quiet without the hypot: both components below ε/2 bound
        // the true norm by √2·ε/2 ≈ 0.707·ε, and correct rounding cannot
        // carry that across ε.  Near convergence this covers almost every
        // element.
        if a < half && b < half {
            continue;
        }
        if a.is_nan() || b.is_nan() {
            if a == f64::INFINITY || b == f64::INFINITY {
                return false;
            }
            continue;
        }
        if a >= epsilon || b >= epsilon {
            return false;
        }
        if a.hypot(b) >= epsilon {
            return false;
        }
    }
    true
}

impl LaplaceTransform for PassageTimeSolver<'_> {
    /// A passage-time solver *is* a Laplace transform: evaluating it at `s` runs the
    /// iterative algorithm.  This lets the inversion and pipeline layers treat
    /// passage-time transforms exactly like any closed-form distribution.
    ///
    /// # Panics
    /// Panics if the iteration fails to converge; use [`PassageTimeSolver::transform_at`]
    /// for explicit error handling.
    fn lst(&self, s: Complex64) -> Complex64 {
        self.transform_at(s)
            .unwrap_or_else(|e| panic!("passage-time iteration failed: {e}"))
            .value
    }
}

/// Solves Eq. (2) directly by dense complex Gaussian elimination with partial
/// pivoting — the `O(N³)` baseline against which the paper motivates the `O(N²r)`
/// iterative method.  Returns the full vector `(L_{1j}(s), …, L_{Nj}(s))`.
///
/// # Panics
/// Panics for models above 2 500 states (a dense complex matrix would need more
/// memory than the iterative method by orders of magnitude — which is the point).
pub fn dense_reference_solve(
    smp: &SemiMarkovProcess,
    targets: &StateSet,
    s: Complex64,
) -> Vec<Complex64> {
    let n = smp.num_states();
    assert!(
        n <= 2_500,
        "dense reference solver refuses models above 2500 states ({n} requested)"
    );
    let u = smp.build_u(s);
    // A = I − U·D (D zeroes the columns of target states);  b_i = Σ_{k∈j} u_ik.
    let mut a = vec![vec![Complex64::ZERO; n]; n];
    let mut b = vec![Complex64::ZERO; n];
    for i in 0..n {
        a[i][i] = Complex64::ONE;
        for (k, v) in u.row(i) {
            if targets.contains(k) {
                b[i] += v;
            } else {
                a[i][k] -= v;
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let (pivot_row, _) = (col..n)
            .map(|r| (r, a[r][col].norm()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .expect("non-empty pivot search");
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        assert!(
            pivot.norm() > 1e-300,
            "singular passage-time system at column {col}"
        );
        let (pivot_rows, lower_rows) = a.split_at_mut(col + 1);
        let pivot_cells = &pivot_rows[col][col..n];
        for (off, row_cells) in lower_rows.iter_mut().enumerate() {
            let factor = row_cells[col] / pivot;
            if factor.norm() == 0.0 {
                continue;
            }
            for (cell, &p) in row_cells[col..n].iter_mut().zip(pivot_cells) {
                let sub = factor * p;
                *cell -= sub;
            }
            let sub = factor * b[col];
            b[col + 1 + off] -= sub;
        }
    }
    // Back substitution.
    let mut x = vec![Complex64::ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use proptest::prelude::*;
    use smp_distributions::Dist;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).norm() < tol
    }

    fn test_points() -> Vec<Complex64> {
        vec![
            Complex64::new(0.5, 0.0),
            Complex64::new(1.0, 2.0),
            Complex64::new(0.2, -3.0),
            Complex64::new(3.0, 7.0),
        ]
    }

    #[test]
    fn single_hop_passage_is_the_holding_distribution() {
        // 0 --Exp(2)--> 1, 1 --Exp(5)--> 0 ; passage 0 -> 1 is just Exp(2).
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(5.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[1]).unwrap();
        for s in test_points() {
            let got = solver.transform_at(s).unwrap();
            assert!(close(got.value, Dist::exponential(2.0).lst(s), 1e-8));
            assert!(got.iterations < 100);
        }
    }

    #[test]
    fn series_passage_is_a_convolution() {
        // 0 -> 1 -> 2 -> (back to 0); passage 0 -> 2 is the convolution of the two
        // holding distributions on the way.
        let d01 = Dist::erlang(2.0, 2);
        let d12 = Dist::uniform(0.5, 1.5);
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, d01.clone());
        b.add_transition(1, 2, 1.0, d12.clone());
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        for s in test_points() {
            let expect = d01.lst(s) * d12.lst(s);
            let got = solver.transform_at(s).unwrap().value;
            assert!(close(got, expect, 1e-8), "at {s}: {got} vs {expect}");
        }
    }

    #[test]
    fn branching_passage_weights_by_probability() {
        // From 0, with prob 0.3 go to 1 (Exp(1)); with prob 0.7 go to 2 (Det(2)).
        // Passage 0 -> {1, 2} has transform 0.3·L_exp + 0.7·L_det.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 0.3, Dist::exponential(1.0));
        b.add_transition(0, 2, 0.7, Dist::deterministic(2.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[1, 2]).unwrap();
        for s in test_points() {
            let expect = Dist::exponential(1.0).lst(s).scale(0.3)
                + Dist::deterministic(2.0).lst(s).scale(0.7);
            let got = solver.transform_at(s).unwrap().value;
            assert!(close(got, expect, 1e-8));
        }
    }

    #[test]
    fn cycle_time_uses_leading_u_term() {
        // 0 -> 1 -> 0 ; the cycle time L_00 is the convolution of both holding times.
        // Without the leading U term of Eq. (9) this would evaluate to zero.
        let d01 = Dist::exponential(1.0);
        let d10 = Dist::erlang(3.0, 2);
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, d01.clone());
        b.add_transition(1, 0, 1.0, d10.clone());
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[0]).unwrap();
        for s in test_points() {
            let expect = d01.lst(s) * d10.lst(s);
            let got = solver.transform_at(s).unwrap().value;
            assert!(close(got, expect, 1e-8), "at {s}: {got} vs {expect}");
        }
    }

    #[test]
    fn geometric_retry_passage() {
        // 0 retries itself with probability q and succeeds to 1 with probability p:
        // analytic transform L(s) = p·H(s) / (1 − q·H(s)).
        let p = 0.25;
        let q = 0.75;
        let h = Dist::exponential(2.0);
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 0, q, h.clone());
        b.add_transition(0, 1, p, h.clone());
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[1]).unwrap();
        for s in test_points() {
            let hs = h.lst(s);
            let expect = hs.scale(p) / (Complex64::ONE - hs.scale(q));
            let got = solver.transform_at(s).unwrap().value;
            assert!(close(got, expect, 1e-7), "at {s}: {got} vs {expect}");
        }
    }

    #[test]
    fn transform_vector_matches_scalar_per_source() {
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(0, 2, 2.0, Dist::erlang(2.0, 2));
        b.add_transition(1, 3, 1.0, Dist::uniform(0.0, 1.0));
        b.add_transition(2, 3, 1.0, Dist::deterministic(0.5));
        b.add_transition(3, 0, 1.0, Dist::exponential(3.0));
        let smp = b.build().unwrap();
        let s = Complex64::new(0.8, 1.1);
        let targets = &[3usize];
        let vector_solver = PassageTimeSolver::new(&smp, &[0], targets).unwrap();
        let vec = vector_solver.transform_vector_at(s).unwrap();
        for (source, &from_vector) in vec.iter().enumerate().take(3) {
            let scalar = PassageTimeSolver::new(&smp, &[source], targets)
                .unwrap()
                .transform_at(s)
                .unwrap()
                .value;
            assert!(close(from_vector, scalar, 1e-7), "source {source}");
        }
    }

    #[test]
    fn iterative_matches_dense_reference() {
        let mut b = SmpBuilder::new(5);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(0, 2, 3.0, Dist::uniform(0.2, 0.7));
        b.add_transition(1, 2, 1.0, Dist::erlang(2.0, 3));
        b.add_transition(1, 3, 1.0, Dist::deterministic(1.0));
        b.add_transition(2, 4, 2.0, Dist::exponential(0.5));
        b.add_transition(2, 0, 1.0, Dist::exponential(2.0));
        b.add_transition(3, 4, 1.0, Dist::uniform(0.0, 0.5));
        b.add_transition(4, 0, 1.0, Dist::erlang(1.0, 2));
        let smp = b.build().unwrap();
        let targets_vec = vec![4usize];
        let targets = StateSet::new(5, &targets_vec).unwrap();
        for s in test_points() {
            let dense = dense_reference_solve(&smp, &targets, s);
            let solver = PassageTimeSolver::new(&smp, &[0], &targets_vec).unwrap();
            let iter_vec = solver.transform_vector_at(s).unwrap();
            for (i, (a, b)) in dense.iter().zip(&iter_vec).enumerate() {
                assert!(
                    close(*a, *b, 1e-7),
                    "state {i} at {s}: dense {a} vs iter {b}"
                );
            }
        }
    }

    #[test]
    fn multiple_sources_alpha_weighting() {
        // Symmetric ring: sources {0, 1} have equal alpha; passage to state 2.
        let mut b = SmpBuilder::new(3);
        for i in 0..3 {
            b.add_transition(i, (i + 1) % 3, 1.0, Dist::exponential(1.0));
        }
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0, 1], &[2]).unwrap();
        assert!((solver.alpha()[0] - 0.5).abs() < 1e-9);
        assert!((solver.alpha()[1] - 0.5).abs() < 1e-9);
        let s = Complex64::new(1.0, 0.5);
        let exp = Dist::exponential(1.0).lst(s);
        // From 1: one hop (Exp); from 0: two hops (Exp²); weighted 50/50.
        let expect = (exp + exp * exp).scale(0.5);
        let got = solver.transform_at(s).unwrap().value;
        assert!(close(got, expect, 1e-8));
    }

    #[test]
    fn with_alpha_overrides_steady_state() {
        let mut b = SmpBuilder::new(3);
        for i in 0..3 {
            b.add_transition(i, (i + 1) % 3, 1.0, Dist::exponential(1.0));
        }
        let smp = b.build().unwrap();
        let mut alpha = vec![0.0; 3];
        alpha[0] = 0.9;
        alpha[1] = 0.1;
        let solver =
            PassageTimeSolver::with_alpha(&smp, alpha, &[2], IterationOptions::default()).unwrap();
        let s = Complex64::new(0.7, 0.0);
        let exp = Dist::exponential(1.0).lst(s);
        let expect = exp * exp * 0.9 + exp * 0.1;
        assert!(close(solver.transform_at(s).unwrap().value, expect, 1e-8));
    }

    #[test]
    fn unreachable_target_gives_zero_transform() {
        // Two disjoint cycles {0,1} and {2,3}; target 2 unreachable from source 0.
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 3, 1.0, Dist::exponential(1.0));
        b.add_transition(3, 2, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let s = Complex64::new(0.5, 1.0);
        let got = solver.transform_at(s).unwrap();
        assert!(got.value.norm() < 1e-9);
    }

    #[test]
    fn passage_transform_at_small_s_approaches_one() {
        // For an irreducible SMP the passage completes with probability 1, so
        // L(s) -> 1 as s -> 0+.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::uniform(0.1, 0.3));
        b.add_transition(1, 2, 2.0, Dist::exponential(4.0));
        b.add_transition(1, 0, 1.0, Dist::erlang(5.0, 2));
        b.add_transition(2, 0, 1.0, Dist::deterministic(0.2));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let got = solver.transform_at(Complex64::real(1e-6)).unwrap().value;
        assert!((got - Complex64::ONE).norm() < 1e-3, "L(0+) = {got}");
    }

    #[test]
    fn r_transition_transform_increases_towards_limit() {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(3.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let s = Complex64::real(0.3);
        let full = solver.transform_at(s).unwrap().value;
        let mut last_err = f64::INFINITY;
        for r in [1usize, 2, 4, 8, 16, 32, 64] {
            let partial = solver.r_transition_transform(s, r);
            let err = (partial - full).norm();
            assert!(err <= last_err + 1e-12, "error should not increase with r");
            last_err = err;
        }
        assert!(last_err < 1e-6);
        assert_eq!(solver.r_transition_transform(s, 0), Complex64::ZERO);
    }

    #[test]
    fn convergence_failure_reported() {
        // An unreachable target probed at s = 0: the probability mass cycles forever
        // in the source component without decaying (|U'| entries have magnitude 1)
        // and never reaches the target, so the iteration must report a
        // ConvergenceFailure rather than silently returning a wrong answer.
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 3, 1.0, Dist::exponential(1.0));
        b.add_transition(3, 2, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::with_options(
            &smp,
            &[0],
            &[2],
            IterationOptions {
                epsilon: 1e-12,
                max_iterations: 200,
                consecutive: 2,
            },
        )
        .unwrap();
        let err = solver.transform_at(Complex64::ZERO).unwrap_err();
        assert!(matches!(err, SmpError::ConvergenceFailure { .. }));
        // The same probe at Re(s) > 0 converges (the cycling mass decays) to zero.
        let ok = solver.transform_at(Complex64::real(0.5)).unwrap();
        assert!(ok.value.norm() < 1e-9);
    }

    #[test]
    fn empty_sets_rejected() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        assert!(matches!(
            PassageTimeSolver::new(&smp, &[], &[1]),
            Err(SmpError::EmptyStateSet { which: "source" })
        ));
        assert!(matches!(
            PassageTimeSolver::new(&smp, &[0], &[]),
            Err(SmpError::EmptyStateSet { which: "target" })
        ));
        assert!(matches!(
            PassageTimeSolver::new(&smp, &[0], &[9]),
            Err(SmpError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn laplace_transform_impl_delegates() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::erlang(1.0, 2));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[1]).unwrap();
        let s = Complex64::new(0.4, 0.6);
        assert_eq!(
            LaplaceTransform::lst(&solver, s),
            solver.transform_at(s).unwrap().value
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        /// On random irreducible SMPs the iterative algorithm agrees with the dense
        /// O(N³) reference solver at every probed s-point.
        #[test]
        fn prop_iterative_matches_dense(seed in 0u64..300) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..10usize);
            let mut b = SmpBuilder::new(n);
            for i in 0..n {
                // ring edge for irreducibility plus random extra edges
                b.add_transition(i, (i + 1) % n, rng.gen_range(0.5..2.0), Dist::exponential(rng.gen_range(0.5..3.0)));
                for _ in 0..rng.gen_range(0..3usize) {
                    let to = rng.gen_range(0..n);
                    let dist = match rng.gen_range(0..4) {
                        0 => Dist::exponential(rng.gen_range(0.2..3.0)),
                        1 => Dist::erlang(rng.gen_range(0.5..2.0), rng.gen_range(1..4)),
                        2 => Dist::deterministic(rng.gen_range(0.1..2.0)),
                        _ => Dist::uniform(0.0, rng.gen_range(0.5..2.0)),
                    };
                    b.add_transition(i, to, rng.gen_range(0.1..1.5), dist);
                }
            }
            let smp = b.build().unwrap();
            let target = rng.gen_range(0..n);
            let source = rng.gen_range(0..n);
            let targets = StateSet::new(n, &[target]).unwrap();
            let s = Complex64::new(rng.gen_range(0.05..2.0), rng.gen_range(-4.0..4.0));
            let dense = dense_reference_solve(&smp, &targets, s);
            let solver = PassageTimeSolver::new(&smp, &[source], &[target]).unwrap();
            let iterative = solver.transform_vector_at(s).unwrap();
            for (i, (a, b)) in dense.iter().zip(&iterative).enumerate() {
                prop_assert!((*a - *b).norm() < 1e-6, "state {i}: dense {a} vs iterative {b}");
            }
            // And the scalar α-weighted value agrees with the vector entry.
            let scalar = solver.transform_at(s).unwrap().value;
            prop_assert!((scalar - iterative[source]).norm() < 1e-6);
        }

        /// |L(s)| ≤ 1 on the right half-plane (it is the transform of a distribution).
        #[test]
        fn prop_transform_is_bounded(seed in 0u64..100, re in 0.01f64..3.0, im in -6.0f64..6.0) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..8usize);
            let mut b = SmpBuilder::new(n);
            for i in 0..n {
                b.add_transition(i, (i + 1) % n, 1.0, Dist::erlang(rng.gen_range(0.5..2.0), rng.gen_range(1..3)));
                if rng.gen_bool(0.5) {
                    b.add_transition(i, rng.gen_range(0..n), rng.gen_range(0.2..1.0), Dist::uniform(0.0, rng.gen_range(0.5..2.0)));
                }
            }
            let smp = b.build().unwrap();
            let solver = PassageTimeSolver::new(&smp, &[0], &[n - 1]).unwrap();
            let value = solver.transform_at(Complex64::new(re, im)).unwrap().value;
            prop_assert!(value.norm() <= 1.0 + 1e-7, "|L| = {}", value.norm());
        }
    }
}
