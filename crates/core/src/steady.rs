//! Steady-state probabilities of a semi-Markov process.
//!
//! The SMP spends, in the long run, a fraction of time in state `j` proportional to
//! `π_j · m_j`, where `π` is the stationary vector of the embedded DTMC and `m_j` the
//! mean sojourn time in `j`.  Fig. 7 of the paper plots exactly this value as the
//! horizontal asymptote that the transient distribution approaches as `t → ∞`.

use crate::embedded::EmbeddedChain;
use crate::error::SmpError;
use crate::smp::{SemiMarkovProcess, StateSet};

/// Long-run (time-average) state probabilities of the SMP.
pub fn smp_steady_state(smp: &SemiMarkovProcess) -> Result<Vec<f64>, SmpError> {
    let chain = EmbeddedChain::solve(smp)?;
    Ok(weight_by_sojourn(smp, chain.pi()))
}

/// Long-run probability of being in any state of `targets`.
pub fn steady_state_probability(
    smp: &SemiMarkovProcess,
    targets: &StateSet,
) -> Result<f64, SmpError> {
    let probs = smp_steady_state(smp)?;
    Ok(targets.indices().iter().map(|&j| probs[j]).sum())
}

/// Converts an embedded-DTMC stationary vector into SMP time-average probabilities
/// by weighting with mean sojourn times and renormalising.
pub fn weight_by_sojourn(smp: &SemiMarkovProcess, pi: &[f64]) -> Vec<f64> {
    assert_eq!(pi.len(), smp.num_states());
    let weighted: Vec<f64> = pi
        .iter()
        .enumerate()
        .map(|(j, &p)| p * smp.mean_sojourn(j))
        .collect();
    let total: f64 = weighted.iter().sum();
    if total <= 0.0 {
        return vec![0.0; pi.len()];
    }
    weighted.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use smp_distributions::Dist;

    #[test]
    fn two_state_alternating_process() {
        // Alternating renewal process: sojourn in 0 has mean 2, in 1 has mean 1;
        // time-average probabilities are 2/3 and 1/3 regardless of the shapes.
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::uniform(1.0, 3.0)); // mean 2
        b.add_transition(1, 0, 1.0, Dist::erlang(2.0, 2)); // mean 1
        let smp = b.build().unwrap();
        let p = smp_steady_state(&smp).unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn markov_chain_special_case() {
        // With exponential sojourns the SMP is a CTMC; check against the CTMC's
        // balance equations for a 2-state chain with rates λ = 3 (0→1), μ = 1 (1→0):
        // p_0 = μ/(λ+μ) = 0.25.
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(3.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let p = smp_steady_state(&smp).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-9);
        assert!((p[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn set_probability_sums_members() {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::deterministic(1.0));
        b.add_transition(1, 2, 1.0, Dist::deterministic(2.0));
        b.add_transition(2, 0, 1.0, Dist::deterministic(3.0));
        let smp = b.build().unwrap();
        let p = smp_steady_state(&smp).unwrap();
        // Deterministic cycle: probabilities proportional to the sojourn durations.
        assert!((p[0] - 1.0 / 6.0).abs() < 1e-9);
        assert!((p[2] - 0.5).abs() < 1e-9);
        let set = StateSet::new(3, &[1, 2]).unwrap();
        let prob = steady_state_probability(&smp, &set).unwrap();
        assert!((prob - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 2.0, Dist::exponential(1.0));
        b.add_transition(0, 2, 1.0, Dist::uniform(0.0, 4.0));
        b.add_transition(1, 3, 1.0, Dist::erlang(3.0, 2));
        b.add_transition(2, 3, 1.0, Dist::deterministic(0.5));
        b.add_transition(3, 0, 1.0, Dist::exponential(2.0));
        let smp = b.build().unwrap();
        let p = smp_steady_state(&smp).unwrap();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }
}
