//! The embedded DTMC and the multiple-source α-weights of Eq. (5).
//!
//! When a passage has several source states `i`, the paper weights each source
//! state's passage-time transform by the probability `α_k` of the SMP being in state
//! `k ∈ i` *at the starting instant of the passage*, computed from the stationary
//! vector `π` of the embedded discrete-time Markov chain:
//!
//! ```text
//!   α_k = π_k / Σ_{j ∈ i} π_j     for k ∈ i,   0 otherwise.
//! ```

use crate::error::SmpError;
use crate::smp::{SemiMarkovProcess, StateSet};
use smp_sparse::steady_state::{gauss_seidel_steady_state, SteadyStateOptions};

/// The stationary vector of the embedded DTMC, cached so that repeated passage /
/// transient queries against the same process do not re-solve it.
#[derive(Debug, Clone)]
pub struct EmbeddedChain {
    pi: Vec<f64>,
    iterations: usize,
}

impl EmbeddedChain {
    /// Solves `π P = π` for the embedded chain of the process.
    ///
    /// Memoized per process: the first call over a given
    /// [`SemiMarkovProcess`] runs the solver, later calls (from any solver or
    /// clone of the process) reuse the shared result — see
    /// [`SemiMarkovProcess::embedded_chain`], which returns the cached value
    /// without cloning the stationary vector.
    pub fn solve(smp: &SemiMarkovProcess) -> Result<Self, SmpError> {
        Ok((*smp.embedded_chain()?).clone())
    }

    /// Solves `π P = π` without consulting or filling the per-process cache.
    pub(crate) fn solve_uncached(smp: &SemiMarkovProcess) -> Result<Self, SmpError> {
        Self::solve_with(smp, &SteadyStateOptions::default())
    }

    /// Solves the stationary vector with explicit solver options.
    pub fn solve_with(
        smp: &SemiMarkovProcess,
        options: &SteadyStateOptions,
    ) -> Result<Self, SmpError> {
        let p = smp.embedded_dtmc();
        let result = gauss_seidel_steady_state(&p, options);
        if !result.converged {
            return Err(SmpError::SteadyStateFailure {
                residual: result.residual,
            });
        }
        Ok(EmbeddedChain {
            pi: result.pi,
            iterations: result.iterations,
        })
    }

    /// The stationary probability vector of the embedded DTMC.
    pub fn pi(&self) -> &[f64] {
        &self.pi
    }

    /// Number of solver iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The α-weights of Eq. (5) for a set of source states: the conditional
    /// stationary probability of each source state given that the process is in the
    /// source set, expressed as a full-length vector (zero outside the set).
    pub fn alpha_weights(&self, sources: &StateSet) -> Result<Vec<f64>, SmpError> {
        if sources.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "source" });
        }
        let total: f64 = sources.indices().iter().map(|&k| self.pi[k]).sum();
        let mut alpha = vec![0.0; self.pi.len()];
        if total <= 0.0 {
            // The source states have zero stationary probability (e.g. transient
            // states of a reducible chain).  Fall back to a uniform distribution over
            // the source set so that the passage is still well defined — this matches
            // the behaviour of conditioning on an arbitrary start within the set.
            let w = 1.0 / sources.len() as f64;
            for &k in sources.indices() {
                alpha[k] = w;
            }
            return Ok(alpha);
        }
        for &k in sources.indices() {
            alpha[k] = self.pi[k] / total;
        }
        Ok(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use smp_distributions::Dist;

    fn ring_smp(n: usize) -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(n);
        for i in 0..n {
            b.add_transition(i, (i + 1) % n, 1.0, Dist::exponential(1.0 + i as f64));
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_has_uniform_embedded_stationary_vector() {
        // The embedded chain of a ring visits every state equally often regardless of
        // the sojourn times.
        let smp = ring_smp(5);
        let chain = EmbeddedChain::solve(&smp).unwrap();
        for &p in chain.pi() {
            assert!((p - 0.2).abs() < 1e-9);
        }
        assert!(chain.iterations() > 0);
    }

    #[test]
    fn alpha_weights_normalise_over_source_set() {
        let smp = ring_smp(4);
        let chain = EmbeddedChain::solve(&smp).unwrap();
        let sources = StateSet::new(4, &[0, 2]).unwrap();
        let alpha = chain.alpha_weights(&sources).unwrap();
        assert!((alpha[0] - 0.5).abs() < 1e-9);
        assert!((alpha[2] - 0.5).abs() < 1e-9);
        assert_eq!(alpha[1], 0.0);
        assert_eq!(alpha[3], 0.0);
        let total: f64 = alpha.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_weights_follow_stationary_ratios() {
        // Two-state chain with asymmetric probabilities.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 3.0, Dist::exponential(1.0));
        b.add_transition(0, 2, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let chain = EmbeddedChain::solve(&smp).unwrap();
        // π = (0.5, 0.375, 0.125): state 0 every other step, 1 and 2 split 3:1.
        let sources = StateSet::new(3, &[1, 2]).unwrap();
        let alpha = chain.alpha_weights(&sources).unwrap();
        assert!((alpha[1] - 0.75).abs() < 1e-6, "alpha = {alpha:?}");
        assert!((alpha[2] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn empty_source_set_rejected() {
        let smp = ring_smp(3);
        let chain = EmbeddedChain::solve(&smp).unwrap();
        let empty = StateSet::new(3, &[]).unwrap();
        assert!(matches!(
            chain.alpha_weights(&empty),
            Err(SmpError::EmptyStateSet { .. })
        ));
    }

    #[test]
    fn zero_probability_sources_fall_back_to_uniform() {
        // States 2 is transient (never returned to once left), so π_2 = 0.
        let mut b = SmpBuilder::new(3);
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let chain = EmbeddedChain::solve(&smp).unwrap();
        let sources = StateSet::new(3, &[2]).unwrap();
        let alpha = chain.alpha_weights(&sources).unwrap();
        assert!((alpha[2] - 1.0).abs() < 1e-12);
    }
}
