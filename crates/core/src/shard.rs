//! Row-sharded slices of the passage-time iteration (the paper's distributed
//! memory model).
//!
//! The source paper runs its iterative algorithm on a cluster where no single
//! node holds the whole kernel matrix: the state space is partitioned into
//! contiguous blocks, each worker stores only its slice of `U`, and every
//! iteration exchanges the boundary ("halo") entries of the iterate between
//! neighbours.  This module is that partitioning, kept **bitwise identical**
//! to the unsharded solver for every shard count:
//!
//! * [`shard_bounds`] — the deterministic block boundaries, a pure function of
//!   `(N, shards)`: shard `k` owns states `⌊kN/S⌋ .. ⌊(k+1)N/S⌋`.
//! * [`ShardedSkeleton`] — one shard's symbolic slice of the memoized
//!   `U`-structure: the kernel entries that *land in* its owned columns
//!   (the row-vector iteration `term ← term · U'` writes column `c`, so the
//!   shard owning `c` stores column `c`'s entries), the fill plan and LST
//!   pool restricted to those entries, and the sorted list of external rows
//!   whose iterate values the shard needs each round ([`ShardedSkeleton::need_rows`]).
//! * [`ShardWorkspace`] — the numeric per-shard state: refill values in
//!   place per `s`-point, apply a received halo, take one gather step.
//! * [`plan_exchange`] / [`ExchangePlan`] — the master-side routing: which
//!   owned rows each shard must publish per iteration (the union of the other
//!   shards' needs).
//! * [`ConvergenceFold`] — the master-side convergence bookkeeping, the exact
//!   accumulation sequence of `PassageTimeSolver::transform_at_with`.
//! * [`ShardedSolver`] — an in-process lockstep driver over all shards: the
//!   executable specification that the distributed transport in `smp-pipeline`
//!   reproduces frame by frame, and the oracle its conformance tests solve
//!   against.
//!
//! ## Why the result is bitwise shard-count-invariant
//!
//! The sequential step zeroes the output vector and scatters unmasked rows in
//! ascending order, so output column `c` accumulates `ZERO += v·x_r` over its
//! entries in ascending row order.  A shard owning `c` stores exactly those
//! entries in the same order and folds them with the same skipped-zero rules
//! (`x_r` exactly zero, or `r` masked) into a local accumulator initialised to
//! `ZERO` — the identical floating-point sequence.  Halo values are shipped
//! bit-exactly (the wire codec is the `f64`-bit-pattern codec), zero values
//! are elided on the wire because both sides skip exact zeros anyway, and the
//! convergence fold sums shard target-slices in shard order = ascending state
//! order, matching `PassageSkeleton::dot_e`.  Points where the fixed skeleton
//! cannot reproduce `build_u` (an LST underflowing to exact zero) are detected
//! by the same per-slot faithfulness test, partitioned across shards, and
//! routed through the same legacy fallback.

use crate::error::SmpError;
use crate::passage::{term_is_quiet, IterationOptions, PassagePoint, PassageTimeSolver};
use crate::smp::{SemiMarkovProcess, StateSet};
use smp_distributions::Dist;
use smp_numeric::Complex64;
use smp_sparse::Scalar;
use std::sync::Arc;

/// Sentinel `entry_x` slot for entries whose source row is masked (a target
/// state): the step skips them, exactly as the full masked scatter skips
/// masked rows, and init never reads the iterate at all.
const SKIP: u32 = u32::MAX;

/// The contiguous state block owned by shard `shard` of `shards`, as a
/// half-open range — a pure function of `(num_states, shards)`, so every
/// process in a cluster computes identical boundaries with no negotiation.
///
/// Blocks cover `0..num_states` exactly, are ascending, and differ in size by
/// at most one state; with more shards than states the trailing shards own
/// empty blocks.
///
/// # Panics
/// Panics when `shards == 0` or `shard >= shards`.
pub fn shard_bounds(num_states: usize, shards: usize, shard: usize) -> (usize, usize) {
    assert!(shards >= 1, "shard count must be at least 1");
    assert!(
        shard < shards,
        "shard index {shard} out of range 0..{shards}"
    );
    (
        shard * num_states / shards,
        (shard + 1) * num_states / shards,
    )
}

/// The shard whose block contains `row` (the inverse of [`shard_bounds`]).
///
/// # Panics
/// Panics when `row >= num_states` or `shards == 0`.
pub fn owner_of(num_states: usize, shards: usize, row: usize) -> usize {
    assert!(row < num_states, "row {row} out of range 0..{num_states}");
    assert!(shards >= 1, "shard count must be at least 1");
    // Binary search for the first shard whose upper bound exceeds `row`.
    let (mut lo, mut hi) = (0usize, shards);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if shard_bounds(num_states, shards, mid).1 <= row {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One shard's symbolic slice of the kernel structure: everything about its
/// owned column block of `U` that does not depend on `s`.
///
/// Built from the process's memoized `U`-structure, but self-contained
/// afterwards — it holds its own (restricted, re-indexed) distribution pool,
/// so a worker process can drop the full model once its slice is built.  That
/// is the memory claim of the distributed layer: the resident per-point state
/// is `O(nnz(slice) + N/S)`, not `O(nnz(U) + N)`.
#[derive(Debug)]
pub struct ShardedSkeleton {
    num_states: usize,
    shards: usize,
    shard: usize,
    lo: usize,
    hi: usize,
    source: usize,
    /// Entries of owned column `c` (local index) are
    /// `col_ptr[c] .. col_ptr[c+1]`, in ascending global-row order — the
    /// accumulation order of the sequential scatter.
    col_ptr: Vec<u32>,
    /// Global source row of each entry.
    entry_row: Vec<u32>,
    /// Iterate slot of each entry: `< owned` = owned block, `>= owned` =
    /// halo slot, [`SKIP`] = masked row (skipped by the step, like the full
    /// masked scatter; kept for the fill plan's faithfulness test and init).
    entry_x: Vec<u32>,
    /// Fill plan: contributions of entry `e` are `slot_ptr[e]..slot_ptr[e+1]`
    /// of `contrib_dist` / `contrib_prob`, in legacy summation order.
    slot_ptr: Vec<u32>,
    /// True when every slice entry has exactly one contribution.
    uniform_slots: bool,
    contrib_dist: Vec<u32>,
    contrib_prob: Vec<f64>,
    /// The restricted LST pool: only distributions referenced by this slice,
    /// re-indexed densely (`contrib_dist` holds local ids).
    pool: Vec<Dist>,
    /// External (other-shard) unmasked rows whose iterate values the step
    /// reads, ascending — the shard's halo subscription.
    need_rows: Vec<u32>,
    /// Entries whose source row is the α-source (global indices into the
    /// entry arrays, ascending by owned column) — the slice of the `α·U`
    /// initialisation.
    init_entries: Vec<u32>,
    /// Global indices of target states inside the owned block, ascending —
    /// this shard's summands of the `· ẽ` inner product.
    owned_targets: Vec<u32>,
}

impl ShardedSkeleton {
    /// Carves shard `shard` of `shards` out of the process's memoized
    /// `U`-structure for the passage from single source `source` into
    /// `targets`.
    ///
    /// # Panics
    /// Panics when `shards == 0`, `shard >= shards` or `source` is out of
    /// range (callers validate state sets beforehand).
    pub fn build(
        smp: &SemiMarkovProcess,
        targets: &StateSet,
        source: usize,
        shards: usize,
        shard: usize,
    ) -> ShardedSkeleton {
        let n = smp.num_states();
        assert!(source < n, "source state {source} out of range 0..{n}");
        let (lo, hi) = shard_bounds(n, shards, shard);
        let owned = hi - lo;
        let structure = smp.u_structure();
        let mask = targets.mask();

        // Pass 1: bucket the slice's entries by owned column (rows arrive
        // ascending, so each bucket is already in scatter order) and collect
        // the halo subscription.
        let indptr = structure.indptr();
        let cols = structure.col_indices();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); owned];
        let mut need_rows: Vec<u32> = Vec::new();
        for r in 0..n {
            let (a, b) = (indptr[r] as usize, indptr[r + 1] as usize);
            // Columns are sorted within the row: the owned range is one
            // contiguous run of entries.
            let row_cols = &cols[a..b];
            let s = a + row_cols.partition_point(|&c| (c as usize) < lo);
            let e = a + row_cols.partition_point(|&c| (c as usize) < hi);
            if s == e {
                continue;
            }
            if !mask[r] && (r < lo || r >= hi) {
                need_rows.push(r as u32);
            }
            for k in s..e {
                buckets[cols[k] as usize - lo].push(k as u32);
            }
        }

        // Pass 2: flatten column-major, restricting the fill plan and the
        // distribution pool to the slice.
        let g_slot_ptr = structure.slot_ptr();
        let g_dist = structure.contrib_dist();
        let g_prob = structure.contrib_prob();
        let mut local_of: Vec<u32> = vec![u32::MAX; smp.num_distributions()];
        let mut pool: Vec<Dist> = Vec::new();
        let mut col_ptr: Vec<u32> = Vec::with_capacity(owned + 1);
        let mut entry_row: Vec<u32> = Vec::new();
        let mut entry_x: Vec<u32> = Vec::new();
        let mut slot_ptr: Vec<u32> = vec![0];
        let mut contrib_dist: Vec<u32> = Vec::new();
        let mut contrib_prob: Vec<f64> = Vec::new();
        let mut init_entries: Vec<u32> = Vec::new();
        col_ptr.push(0);
        for bucket in &buckets {
            for &k in bucket {
                let r = {
                    // Recover the entry's global row from its CSR position.
                    // `indptr` is monotone, so this is a binary search for the
                    // last row starting at or before `k`.
                    let mut lo_r = 0usize;
                    let mut hi_r = n;
                    while lo_r + 1 < hi_r {
                        let mid = lo_r + (hi_r - lo_r) / 2;
                        if indptr[mid] as usize <= k as usize {
                            lo_r = mid;
                        } else {
                            hi_r = mid;
                        }
                    }
                    lo_r
                };
                let x_slot = if mask[r] {
                    SKIP
                } else if r >= lo && r < hi {
                    (r - lo) as u32
                } else {
                    let pos = need_rows
                        .binary_search(&(r as u32))
                        .expect("external unmasked row must be subscribed");
                    (owned + pos) as u32
                };
                if r == source {
                    init_entries.push(entry_row.len() as u32);
                }
                entry_row.push(r as u32);
                entry_x.push(x_slot);
                let (cs, ce) = (
                    g_slot_ptr[k as usize] as usize,
                    g_slot_ptr[k as usize + 1] as usize,
                );
                for j in cs..ce {
                    let gd = g_dist[j] as usize;
                    if local_of[gd] == u32::MAX {
                        local_of[gd] = pool.len() as u32;
                        pool.push(smp.distribution(g_dist[j]).clone());
                    }
                    contrib_dist.push(local_of[gd]);
                    contrib_prob.push(g_prob[j]);
                }
                slot_ptr.push(contrib_dist.len() as u32);
            }
            col_ptr.push(entry_row.len() as u32);
        }
        let uniform_slots = slot_ptr.windows(2).all(|w| w[1] - w[0] == 1);
        let owned_targets: Vec<u32> = (lo..hi).filter(|&t| mask[t]).map(|t| t as u32).collect();

        ShardedSkeleton {
            num_states: n,
            shards,
            shard,
            lo,
            hi,
            source,
            col_ptr,
            entry_row,
            entry_x,
            slot_ptr,
            uniform_slots,
            contrib_dist,
            contrib_prob,
            pool,
            need_rows,
            init_entries,
            owned_targets,
        }
    }

    /// Total number of states in the (unsharded) model.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The shard count this slice was cut for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// This slice's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The owned state block as a half-open range (= [`shard_bounds`]).
    pub fn bounds(&self) -> (usize, usize) {
        (self.lo, self.hi)
    }

    /// Number of states in the owned block.
    pub fn owned_states(&self) -> usize {
        self.hi - self.lo
    }

    /// Number of kernel entries stored by this slice.
    pub fn nnz(&self) -> usize {
        self.entry_row.len()
    }

    /// Number of distributions in the restricted LST pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The external unmasked rows whose iterate values this shard needs every
    /// round, ascending.
    pub fn need_rows(&self) -> &[u32] {
        &self.need_rows
    }

    /// Global indices of target states in the owned block, ascending.
    pub fn owned_targets(&self) -> &[u32] {
        &self.owned_targets
    }

    /// The single α-source state this slice was built for.
    pub fn source(&self) -> usize {
        self.source
    }
}

/// The numeric per-shard state: refilled values, the iterate slice and its
/// halo, and the gather output buffer.  Reused across `s`-points and
/// iterations without allocating.
#[derive(Debug)]
pub struct ShardWorkspace {
    skeleton: Arc<ShardedSkeleton>,
    pool_values: Vec<Complex64>,
    values: Vec<Complex64>,
    /// The owned slice of the current term vector.
    x_owned: Vec<Complex64>,
    /// Halo slots, in `need_rows` order.
    x_halo: Vec<Complex64>,
    y: Vec<Complex64>,
}

impl ShardWorkspace {
    /// Creates a workspace over a shared slice skeleton.
    pub fn new(skeleton: Arc<ShardedSkeleton>) -> ShardWorkspace {
        let owned = skeleton.owned_states();
        let halo = skeleton.need_rows.len();
        let nnz = skeleton.nnz();
        let dists = skeleton.pool.len();
        ShardWorkspace {
            skeleton,
            pool_values: vec![Complex64::ZERO; dists],
            values: vec![Complex64::ZERO; nnz],
            x_owned: vec![Complex64::ZERO; owned],
            x_halo: vec![Complex64::ZERO; halo],
            y: vec![Complex64::ZERO; owned],
        }
    }

    /// The shared slice skeleton.
    pub fn skeleton(&self) -> &ShardedSkeleton {
        &self.skeleton
    }

    /// Numeric phase for one `s`-point: evaluates each pooled LST once and
    /// refills the slice's entry values — the same arithmetic as
    /// `PassageWorkspace::refill`, restricted to this shard's entries.
    ///
    /// Returns `false` when any entry (or contribution) evaluates to exact
    /// zero: the per-slot faithfulness test of the full refill, partitioned —
    /// every slice entry is a slot of the full skeleton and the slices cover
    /// all slots, so the AND of the shards' verdicts equals the full verdict
    /// and the solve falls back to the legacy path on the same points.
    #[must_use = "a false verdict from any shard must route the point through the legacy path"]
    pub fn refill(&mut self, s: Complex64) -> bool {
        let sk = &*self.skeleton;
        for (slot, dist) in self.pool_values.iter_mut().zip(&sk.pool) {
            *slot = dist.lst(s);
        }
        let mut faithful = true;
        if sk.uniform_slots {
            for ((value, &dist), &prob) in self
                .values
                .iter_mut()
                .zip(&sk.contrib_dist)
                .zip(&sk.contrib_prob)
            {
                let v = self.pool_values[dist as usize].scale(prob);
                faithful &= !v.is_zero();
                *value = v;
            }
        } else {
            for (e, value) in self.values.iter_mut().enumerate() {
                let start = sk.slot_ptr[e] as usize;
                let end = sk.slot_ptr[e + 1] as usize;
                let mut acc =
                    self.pool_values[sk.contrib_dist[start] as usize].scale(sk.contrib_prob[start]);
                faithful &= !acc.is_zero();
                for j in start + 1..end {
                    let v = self.pool_values[sk.contrib_dist[j] as usize].scale(sk.contrib_prob[j]);
                    faithful &= !v.is_zero();
                    acc += v;
                }
                faithful &= !acc.is_zero();
                *value = acc;
            }
        }
        faithful
    }

    /// Writes the owned slice of the initial accumulator `term₀ = α·U` (α the
    /// unit vector at the source state): zero, then scatter the source row's
    /// entries — the exact arithmetic of `u.vec_mul_into(α, term)`, whose only
    /// surviving row is the source.  Also clears the halo slots.
    pub fn init(&mut self) {
        let sk = &*self.skeleton;
        for slot in self.x_owned.iter_mut() {
            *slot = Complex64::ZERO;
        }
        for slot in self.x_halo.iter_mut() {
            *slot = Complex64::ZERO;
        }
        let alpha = Complex64::real(1.0);
        for &e in &sk.init_entries {
            // Column index of entry `e`: its bucket in col_ptr.  init_entries
            // is sparse (≤ out-degree of the source), so a binary search per
            // entry is fine.
            let c = sk.col_ptr.partition_point(|&p| p <= e) - 1;
            self.x_owned[c] += self.values[e as usize] * alpha;
        }
    }

    /// Installs a round's halo: zeroes all halo slots, then writes the
    /// received `(global row, value)` entries.  Rows absent from the message
    /// held exact zeros at their owner (elided on the wire); the step skips
    /// exact-zero iterate entries anyway, so elision is bitwise-neutral.
    ///
    /// Returns an error for a row this shard never subscribed to (a protocol
    /// violation, not a numeric condition).
    pub fn apply_halo(&mut self, entries: &[(u32, Complex64)]) -> Result<(), SmpError> {
        for slot in self.x_halo.iter_mut() {
            *slot = Complex64::ZERO;
        }
        for &(row, value) in entries {
            let pos = self.skeleton.need_rows.binary_search(&row).map_err(|_| {
                SmpError::StateOutOfRange {
                    state: row as usize,
                    num_states: self.skeleton.num_states,
                }
            })?;
            self.x_halo[pos] = value;
        }
        Ok(())
    }

    /// One `term ← term · U'` step for the owned block: gathers each owned
    /// column from the current iterate (owned slice + halo), skipping masked
    /// rows and exact-zero iterate entries — the identical accumulation
    /// sequence as the sequential full-scan masked scatter restricted to
    /// these columns (see the module docs).  The halo must have been applied
    /// for this round first.
    pub fn step(&mut self) {
        let sk = &*self.skeleton;
        let owned = sk.owned_states();
        for (c, out) in self.y.iter_mut().enumerate() {
            let start = sk.col_ptr[c] as usize;
            let end = sk.col_ptr[c + 1] as usize;
            let mut acc = Complex64::ZERO;
            for e in start..end {
                let slot = sk.entry_x[e];
                if slot == SKIP {
                    continue;
                }
                let xr = if (slot as usize) < owned {
                    self.x_owned[slot as usize]
                } else {
                    self.x_halo[slot as usize - owned]
                };
                if xr.is_zero() {
                    continue;
                }
                acc += self.values[e] * xr;
            }
            *out = acc;
        }
        std::mem::swap(&mut self.x_owned, &mut self.y);
    }

    /// Folds this shard's target-state values of the current term into `acc`
    /// (ascending state order).  Calling this per shard in shard order
    /// reproduces `PassageSkeleton::dot_e`'s exact summation sequence.
    pub fn fold_targets(&self, acc: &mut Complex64) {
        let sk = &*self.skeleton;
        for &t in &sk.owned_targets {
            *acc += self.x_owned[t as usize - sk.lo];
        }
    }

    /// Pushes this shard's target-state values of the current term, ascending
    /// — the wire form of [`ShardWorkspace::fold_targets`]: the master folds
    /// the shipped values in the same order with the same `+=`.
    pub fn collect_targets(&self, out: &mut Vec<Complex64>) {
        let sk = &*self.skeleton;
        for &t in &sk.owned_targets {
            out.push(self.x_owned[t as usize - sk.lo]);
        }
    }

    /// Publishes the current term values at the requested owned rows,
    /// eliding exact zeros (receivers skip them regardless — see
    /// [`ShardWorkspace::apply_halo`]).  `rows` must be ascending owned
    /// indices; the output preserves that order.
    pub fn export_values(&self, rows: &[u32], out: &mut Vec<(u32, Complex64)>) {
        let lo = self.skeleton.lo;
        for &r in rows {
            let v = self.x_owned[r as usize - lo];
            if !v.is_zero() {
                out.push((r, v));
            }
        }
    }

    /// Whether this shard's slice of the term has gone quiet under `epsilon`
    /// — the per-element legacy test; AND the shards' verdicts for the
    /// whole-vector answer.
    pub fn is_quiet(&self, epsilon: f64) -> bool {
        term_is_quiet(&self.x_owned, epsilon)
    }

    /// The owned slice of the current term vector (tests and diagnostics).
    pub fn owned_term(&self) -> &[Complex64] {
        &self.x_owned
    }

    /// Appends the nonzero entries of the owned term slice keyed by *global*
    /// row, ascending — the shard-layout-independent snapshot form used by
    /// crash checkpoints.  A pure read: calling it at any cadence cannot
    /// perturb the iteration.  Exact zeros are elided (the restore side
    /// zero-fills first), mirroring [`ShardWorkspace::export_values`].
    pub fn save_term(&self, out: &mut Vec<(u32, Complex64)>) {
        let lo = self.skeleton.lo;
        for (offset, &v) in self.x_owned.iter().enumerate() {
            if !v.is_zero() {
                out.push(((lo + offset) as u32, v));
            }
        }
    }

    /// Overwrites the owned term slice from snapshot entries keyed by global
    /// row: all owned slots are zeroed, then each entry falling in this
    /// shard's row range is written (entries owned by other shards are
    /// skipped, so every shard can be handed the full global snapshot).  The
    /// halo is zeroed too — the next round's [`ShardWorkspace::apply_halo`]
    /// rebuilds it from the resumed exchange.
    ///
    /// Returns an error for a row at or beyond the state count (a corrupted
    /// snapshot, not a numeric condition).
    pub fn load_term(&mut self, entries: &[(u32, Complex64)]) -> Result<(), SmpError> {
        let sk = &*self.skeleton;
        let lo = sk.lo;
        let owned = sk.owned_states();
        for slot in self.x_owned.iter_mut() {
            *slot = Complex64::ZERO;
        }
        for slot in self.x_halo.iter_mut() {
            *slot = Complex64::ZERO;
        }
        for &(row, value) in entries {
            let row = row as usize;
            if row >= sk.num_states {
                return Err(SmpError::StateOutOfRange {
                    state: row,
                    num_states: sk.num_states,
                });
            }
            if row >= lo && row < lo + owned {
                self.x_owned[row - lo] = value;
            }
        }
        Ok(())
    }
}

/// The master-side halo routing for one sharded session: which owned rows
/// each shard must publish every round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    exports: Vec<Vec<u32>>,
}

impl ExchangePlan {
    /// The ascending owned rows shard `k` must publish each round.
    pub fn exports(&self, k: usize) -> &[u32] {
        &self.exports[k]
    }

    /// Total subscribed boundary rows across all shards (diagnostics).
    pub fn total_exports(&self) -> usize {
        self.exports.iter().map(Vec::len).sum()
    }
}

/// Computes the exchange routing from every shard's halo subscription
/// (`needs[k]` = shard `k`'s [`ShardedSkeleton::need_rows`]): shard `k`'s
/// export list is the sorted union of the rows it owns across all other
/// shards' needs.
pub fn plan_exchange(num_states: usize, shards: usize, needs: &[&[u32]]) -> ExchangePlan {
    assert_eq!(needs.len(), shards, "one need list per shard");
    let mut exports: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for need in needs {
        for &r in *need {
            exports[owner_of(num_states, shards, r as usize)].push(r);
        }
    }
    for list in exports.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    ExchangePlan { exports }
}

/// What [`ConvergenceFold::push`] decided about the iteration so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FoldStatus {
    /// Keep iterating.
    Continue,
    /// Converged: the final transform value.
    Converged(Complex64),
}

/// The master-side convergence bookkeeping of the sharded solve — the exact
/// accumulation sequence of `PassageTimeSolver::transform_at_with` (total,
/// per-round delta magnitude, consecutive-quiet counting), fed per-round
/// deltas and the AND of the shards' quiet verdicts.
#[derive(Debug, Clone)]
pub struct ConvergenceFold {
    options: IterationOptions,
    total: Complex64,
    quiet: usize,
    last_delta: f64,
}

impl ConvergenceFold {
    /// Starts a fold with the round-0 total (the `α·U · ẽ` inner product).
    pub fn new(options: IterationOptions, initial: Complex64) -> ConvergenceFold {
        ConvergenceFold {
            options,
            total: initial,
            quiet: 0,
            last_delta: f64::INFINITY,
        }
    }

    /// Folds one round's delta (the term's `· ẽ` inner product after the
    /// step) and the whole-term quiet verdict.
    pub fn push(&mut self, delta: Complex64, term_quiet: bool) -> FoldStatus {
        self.total += delta;
        self.last_delta = delta.re.abs().max(delta.im.abs());
        if self.last_delta < self.options.epsilon && term_quiet {
            self.quiet += 1;
            if self.quiet >= self.options.consecutive {
                return FoldStatus::Converged(self.total);
            }
        } else {
            self.quiet = 0;
        }
        FoldStatus::Continue
    }

    /// Magnitude of the most recent delta (for the convergence-failure
    /// report).
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Resumes a fold from checkpointed state: the running total, the quiet
    /// streak and the last delta magnitude exactly as a prior fold left them
    /// after its round-`r` [`ConvergenceFold::push`].  Continuing with round
    /// `r + 1` pushes then replays the original accumulation sequence bit
    /// for bit — `total` is the only accumulated quantity, and it crossed
    /// the checkpoint as an exact bit pattern.
    pub fn resume(
        options: IterationOptions,
        total: Complex64,
        quiet: usize,
        last_delta: f64,
    ) -> ConvergenceFold {
        ConvergenceFold {
            options,
            total,
            quiet,
            last_delta,
        }
    }

    /// The running total (checkpointed by the crash-recovery layer).
    pub fn total(&self) -> Complex64 {
        self.total
    }

    /// The current consecutive-quiet streak (checkpointed alongside the
    /// total).
    pub fn quiet_rounds(&self) -> usize {
        self.quiet
    }
}

/// An in-process lockstep driver over all shards of one passage measure: the
/// executable specification of the distributed protocol, bitwise identical to
/// `PassageTimeSolver::transform_at` for every shard count.
///
/// The distributed transport in `smp-pipeline` runs the same slices behind
/// wire frames; its conformance tests solve through this driver (and through
/// the unsharded solver) as the oracle.
pub struct ShardedSolver<'a> {
    fallback: PassageTimeSolver<'a>,
    options: IterationOptions,
    slices: Vec<ShardWorkspace>,
    plan: ExchangePlan,
    num_states: usize,
    shards: usize,
    exports: Vec<Vec<(u32, Complex64)>>,
    halos: Vec<Vec<(u32, Complex64)>>,
}

impl<'a> ShardedSolver<'a> {
    /// Builds `shards` slices for the passage from single source `source`
    /// into `targets`, with explicit convergence options.
    pub fn new(
        smp: &'a SemiMarkovProcess,
        source: usize,
        targets: &[usize],
        options: IterationOptions,
        shards: usize,
    ) -> Result<ShardedSolver<'a>, SmpError> {
        assert!(shards >= 1, "shard count must be at least 1");
        // The fallback solver also validates the source/target sets.
        let fallback = PassageTimeSolver::with_options(smp, &[source], targets, options)?;
        let n = smp.num_states();
        let target_set = StateSet::new(n, targets)?;
        let slices: Vec<ShardWorkspace> = (0..shards)
            .map(|k| {
                ShardWorkspace::new(Arc::new(ShardedSkeleton::build(
                    smp,
                    &target_set,
                    source,
                    shards,
                    k,
                )))
            })
            .collect();
        let needs: Vec<&[u32]> = slices.iter().map(|ws| ws.skeleton().need_rows()).collect();
        let plan = plan_exchange(n, shards, &needs);
        Ok(ShardedSolver {
            fallback,
            options,
            slices,
            plan,
            num_states: n,
            shards,
            exports: vec![Vec::new(); shards],
            halos: vec![Vec::new(); shards],
        })
    }

    /// The per-shard slices (diagnostics: owned states, nnz, pool sizes).
    pub fn slices(&self) -> &[ShardWorkspace] {
        &self.slices
    }

    /// The exchange routing in use.
    pub fn plan(&self) -> &ExchangePlan {
        &self.plan
    }

    /// Publishes every shard's boundary values and assembles each shard's
    /// halo for the coming round.
    fn exchange(&mut self) {
        for (k, ws) in self.slices.iter().enumerate() {
            self.exports[k].clear();
            ws.export_values(self.plan.exports(k), &mut self.exports[k]);
        }
        for (k, ws) in self.slices.iter().enumerate() {
            let halo = &mut self.halos[k];
            halo.clear();
            for &r in ws.skeleton().need_rows() {
                let owner = owner_of(self.num_states, self.shards, r as usize);
                if let Ok(pos) = self.exports[owner].binary_search_by_key(&r, |&(row, _)| row) {
                    halo.push(self.exports[owner][pos]);
                }
            }
        }
    }

    /// Evaluates the α-weighted passage-time transform at one `s`-point
    /// through the sharded iteration — bitwise identical to
    /// `PassageTimeSolver::transform_at` for any shard count.
    pub fn transform_at(&mut self, s: Complex64) -> Result<PassagePoint, SmpError> {
        let mut faithful = true;
        for ws in self.slices.iter_mut() {
            faithful &= ws.refill(s);
        }
        if !faithful {
            // Same branch as the unsharded workspace path: an exact-zero
            // kernel entry routes the whole point through the legacy
            // build-per-point solve.
            return self.fallback.transform_at_legacy(s);
        }
        for ws in self.slices.iter_mut() {
            ws.init();
        }
        let mut initial = Complex64::ZERO;
        for ws in &self.slices {
            ws.fold_targets(&mut initial);
        }
        let mut fold = ConvergenceFold::new(self.options, initial);
        for r in 1..=self.options.max_iterations {
            self.exchange();
            for (k, ws) in self.slices.iter_mut().enumerate() {
                ws.apply_halo(&self.halos[k])
                    .expect("planned halo rows are always subscribed");
                ws.step();
            }
            let mut delta = Complex64::ZERO;
            let mut quiet = true;
            for ws in &self.slices {
                ws.fold_targets(&mut delta);
                quiet &= ws.is_quiet(self.options.epsilon);
            }
            if let FoldStatus::Converged(value) = fold.push(delta, quiet) {
                return Ok(PassagePoint {
                    value,
                    iterations: r,
                });
            }
        }
        Err(SmpError::ConvergenceFailure {
            s: (s.re, s.im),
            iterations: self.options.max_iterations,
            last_delta: fold.last_delta(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use smp_distributions::Dist;

    fn duplicate_edge_smp() -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(0, 1, 2.0, Dist::erlang(2.0, 2));
        b.add_transition(0, 1, 0.5, Dist::uniform(0.1, 0.9));
        b.add_transition(0, 2, 1.0, Dist::deterministic(0.4));
        b.add_transition(1, 2, 1.0, Dist::exponential(3.0));
        b.add_transition(1, 0, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(2, 0, 1.0, Dist::exponential(0.7));
        b.build().unwrap()
    }

    fn random_smp(n: usize, seed: u64) -> SemiMarkovProcess {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SmpBuilder::new(n);
        for i in 0..n {
            b.add_transition(
                i,
                (i + 1) % n,
                rng.gen_range(0.5..2.0),
                Dist::exponential(rng.gen_range(0.5..3.0)),
            );
            for _ in 0..rng.gen_range(0..3usize) {
                let to = rng.gen_range(0..n);
                let dist = match rng.gen_range(0..4) {
                    0 => Dist::exponential(rng.gen_range(0.2..3.0)),
                    1 => Dist::erlang(rng.gen_range(0.5..2.0), rng.gen_range(1..4)),
                    2 => Dist::deterministic(rng.gen_range(0.1..2.0)),
                    _ => Dist::uniform(0.0, rng.gen_range(0.5..2.0)),
                };
                b.add_transition(i, to, rng.gen_range(0.1..1.5), dist);
            }
        }
        b.build().unwrap()
    }

    fn test_points() -> Vec<Complex64> {
        vec![
            Complex64::new(0.5, 0.0),
            Complex64::new(1.0, 2.0),
            Complex64::new(0.2, -3.0),
            Complex64::new(3.0, 7.0),
        ]
    }

    #[test]
    fn bounds_partition_the_state_space() {
        for n in [0usize, 1, 3, 7, 100, 101] {
            for shards in 1..=6usize {
                let mut cursor = 0;
                for k in 0..shards {
                    let (lo, hi) = shard_bounds(n, shards, k);
                    assert_eq!(lo, cursor, "n={n} shards={shards} k={k}");
                    assert!(hi >= lo);
                    cursor = hi;
                }
                assert_eq!(cursor, n);
                // Block sizes differ by at most one.
                let sizes: Vec<usize> = (0..shards)
                    .map(|k| {
                        let (lo, hi) = shard_bounds(n, shards, k);
                        hi - lo
                    })
                    .collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} shards={shards} sizes={sizes:?}");
                // owner_of inverts the bounds.
                for row in 0..n {
                    let owner = owner_of(n, shards, row);
                    let (lo, hi) = shard_bounds(n, shards, owner);
                    assert!(lo <= row && row < hi);
                }
            }
        }
    }

    #[test]
    fn slices_cover_the_full_structure() {
        let smp = random_smp(17, 5);
        let targets = StateSet::new(17, &[3, 11]).unwrap();
        let full_nnz = smp.build_u(Complex64::new(0.5, 0.5)).nnz();
        for shards in 1..=4usize {
            let slices: Vec<ShardedSkeleton> = (0..shards)
                .map(|k| ShardedSkeleton::build(&smp, &targets, 0, shards, k))
                .collect();
            let states: usize = slices.iter().map(ShardedSkeleton::owned_states).sum();
            let nnz: usize = slices.iter().map(ShardedSkeleton::nnz).sum();
            assert_eq!(states, 17);
            assert_eq!(nnz, full_nnz, "shards={shards}");
            let max_owned = slices.iter().map(ShardedSkeleton::owned_states).max();
            assert_eq!(max_owned, Some(17usize.div_ceil(shards)));
        }
    }

    #[test]
    fn sharded_solve_is_bitwise_identical_for_any_shard_count() {
        for (smp, source, targets) in [
            (duplicate_edge_smp(), 0usize, vec![2usize]),
            (random_smp(23, 7), 1, vec![22]),
            (random_smp(40, 11), 0, vec![19, 37]),
        ] {
            let reference = PassageTimeSolver::new(&smp, &[source], &targets).unwrap();
            for shards in 1..=4usize {
                let mut sharded =
                    ShardedSolver::new(&smp, source, &targets, IterationOptions::default(), shards)
                        .unwrap();
                for s in test_points() {
                    let want = reference.transform_at(s).unwrap();
                    let got = sharded.transform_at(s).unwrap();
                    assert_eq!(got.value, want.value, "shards={shards} s={s}");
                    assert_eq!(got.iterations, want.iterations, "shards={shards} s={s}");
                }
            }
        }
    }

    #[test]
    fn cycle_time_with_masked_source_stays_bitwise() {
        // Source == target: the source row is masked, so its α·U init entries
        // come from a masked row — the one case where a skipped step entry is
        // still read at init.
        let smp = random_smp(12, 3);
        let reference = PassageTimeSolver::new(&smp, &[4], &[4]).unwrap();
        for shards in 1..=4usize {
            let mut sharded =
                ShardedSolver::new(&smp, 4, &[4], IterationOptions::default(), shards).unwrap();
            for s in test_points() {
                let want = reference.transform_at(s).unwrap();
                let got = sharded.transform_at(s).unwrap();
                assert_eq!(got.value, want.value, "shards={shards} s={s}");
                assert_eq!(got.iterations, want.iterations);
            }
        }
    }

    #[test]
    fn more_shards_than_states_leaves_trailing_shards_empty() {
        let smp = duplicate_edge_smp();
        let reference = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let mut sharded =
            ShardedSolver::new(&smp, 0, &[2], IterationOptions::default(), 5).unwrap();
        assert!(sharded
            .slices()
            .iter()
            .any(|ws| ws.skeleton().owned_states() == 0));
        let s = Complex64::new(0.8, 1.2);
        let want = reference.transform_at(s).unwrap();
        let got = sharded.transform_at(s).unwrap();
        assert_eq!(got.value, want.value);
        assert_eq!(got.iterations, want.iterations);
    }

    #[test]
    fn unfaithful_points_fall_back_to_the_legacy_path() {
        // A deterministic holding time with Re(s)·d past ~745 underflows
        // e^{-s·d} to exact zero: the fixed skeleton cannot reproduce
        // build_u's structural drop, so the sharded solve must take the same
        // legacy fallback as the unsharded one.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::deterministic(1.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let s = Complex64::new(800.0, 0.0);
        let reference = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        for shards in 1..=3usize {
            let mut sharded =
                ShardedSolver::new(&smp, 0, &[2], IterationOptions::default(), shards).unwrap();
            let mut faithful = true;
            for ws in sharded.slices.iter_mut() {
                faithful &= ws.refill(s);
            }
            assert!(!faithful, "underflow point must be unfaithful");
            let want = reference.transform_at(s).unwrap();
            let got = sharded.transform_at(s).unwrap();
            assert_eq!(got.value, want.value, "shards={shards}");
            assert_eq!(got.iterations, want.iterations);
        }
    }

    #[test]
    fn exchange_plan_matches_subscriptions() {
        let smp = random_smp(20, 9);
        let targets = StateSet::new(20, &[19]).unwrap();
        let shards = 3;
        let slices: Vec<ShardedSkeleton> = (0..shards)
            .map(|k| ShardedSkeleton::build(&smp, &targets, 0, shards, k))
            .collect();
        let needs: Vec<&[u32]> = slices.iter().map(|s| s.need_rows()).collect();
        let plan = plan_exchange(20, shards, &needs);
        for (k, slice) in slices.iter().enumerate() {
            let (lo, hi) = shard_bounds(20, shards, k);
            // Every export row is owned by its shard and demanded by someone.
            for &r in plan.exports(k) {
                assert!((lo..hi).contains(&(r as usize)));
                assert!(needs.iter().any(|need| need.contains(&r)));
            }
            // Every subscribed row appears in its owner's export list.
            for &r in slice.need_rows() {
                let owner = owner_of(20, shards, r as usize);
                assert_ne!(owner, k, "need rows are external");
                assert!(plan.exports(owner).contains(&r));
            }
        }
    }
}
