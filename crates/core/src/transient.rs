//! Transient state distributions from passage-time transforms (Eqs. 6–7).
//!
//! Pyke's relations link the transient distribution `T_ij(t) = P(Z(t) = j | Z(0) = i)`
//! to passage-time and sojourn-time transforms:
//!
//! ```text
//!   T*_ij(s) = (1/s) · (1 − h*_i(s)) / (1 − L_ii(s))          if i = j
//!   T*_ij(s) = L_ij(s) · T*_jj(s)                              if i ≠ j
//! ```
//!
//! and for a *set* of target states `j` (Eq. 7):
//!
//! ```text
//!   T*_{i→j}(s) = (1/s) · [ Λ_i δ_{i∈j} + Σ_{k∈j, k≠i} Λ_k · L_ik(s) ]
//!   Λ_n = (1 − h*_n(s)) / (1 − L_nn(s))
//! ```
//!
//! Constructing `T*` for a target set of size `|j|` therefore needs the `2|j| − 1`
//! passage quantities `L_ik(s)` and `L_kk(s)`, obtained from `|j|` vector-valued
//! passage computations (one per target state `k`, each yielding `L_·k(s)` for every
//! source simultaneously) — exactly the bookkeeping the paper describes.

use crate::error::SmpError;
use crate::passage::{IterationOptions, PassageTimeSolver};
use crate::smp::{SemiMarkovProcess, StateSet};
use smp_distributions::LaplaceTransform;
use smp_numeric::Complex64;

/// Largest target-set size whose per-target cycle solvers are pre-built and
/// kept for the solver's lifetime (amortising their symbolic skeletons across
/// every `s`-point); larger sets build them per evaluation to bound memory.
const CYCLE_PREBUILD_LIMIT: usize = 32;

/// Evaluates transient state-distribution transforms `T*_{i→j}(s)`.
///
/// For target sets up to `CYCLE_PREBUILD_LIMIT` (32) states, construction
/// pre-builds one cycle solver per target state `k` (the `L_·k(s)` column
/// solves of Eq. 7) so their symbolic skeletons — and the reusable numeric
/// workspaces behind them — are amortised across every `s`-point this solver
/// evaluates, instead of being rebuilt per point as the legacy path did.
/// Larger sets rebuild per evaluation to keep at most one skeleton alive.
#[derive(Debug, Clone)]
pub struct TransientSolver<'a> {
    smp: &'a SemiMarkovProcess,
    /// Start-of-observation weights over source states (δ-vector for a single
    /// source, α-weights of Eq. (5) for a steady-state-weighted set of sources).
    alpha: Vec<f64>,
    sources: StateSet,
    targets: StateSet,
    options: IterationOptions,
    /// One vector-valued passage solver per target state `k`, in
    /// `targets.indices()` order; each yields the column `L_·k(s)` including
    /// the cycle time `L_kk(s)`.
    cycle_solvers: Vec<PassageTimeSolver<'a>>,
}

impl<'a> TransientSolver<'a> {
    /// Creates a transient solver observing the probability of being in `targets` at
    /// time `t`, having started in the single state `source` at time 0.
    pub fn new(
        smp: &'a SemiMarkovProcess,
        source: usize,
        targets: &[usize],
    ) -> Result<Self, SmpError> {
        Self::with_options(smp, &[source], targets, IterationOptions::default())
    }

    /// Creates a transient solver with several equally-or-α-weighted source states
    /// and explicit iteration options.
    pub fn with_options(
        smp: &'a SemiMarkovProcess,
        sources: &[usize],
        targets: &[usize],
        options: IterationOptions,
    ) -> Result<Self, SmpError> {
        let n = smp.num_states();
        let source_set = StateSet::new(n, sources)?;
        let target_set = StateSet::new(n, targets)?;
        if source_set.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "source" });
        }
        if target_set.is_empty() {
            return Err(SmpError::EmptyStateSet { which: "target" });
        }
        let alpha = if source_set.len() == 1 {
            let mut a = vec![0.0; n];
            a[source_set.indices()[0]] = 1.0;
            a
        } else {
            // Memoized per process (`SemiMarkovProcess::embedded_chain`).
            smp.embedded_chain()?.alpha_weights(&source_set)?
        };
        // Pre-build the per-target cycle solvers only for reasonably small
        // target sets: each one holds a symbolic skeleton (O(nnz) indices),
        // and a predicate matching thousands of markings would otherwise pin
        // |targets| skeletons in memory at once where the legacy path peaked
        // at a single transient build.  Above the cap, cycle solvers are
        // built per evaluation (still benefiting from the memoized embedded
        // chain and the workspace-backed iteration).
        let cycle_solvers = if target_set.len() <= CYCLE_PREBUILD_LIMIT {
            target_set
                .indices()
                .iter()
                .map(|&k| PassageTimeSolver::with_options(smp, &[k], &[k], options))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        Ok(TransientSolver {
            smp,
            alpha,
            sources: source_set,
            targets: target_set,
            options,
            cycle_solvers,
        })
    }

    /// The target state set.
    pub fn targets(&self) -> &StateSet {
        &self.targets
    }

    /// The source state set.
    pub fn sources(&self) -> &StateSet {
        &self.sources
    }

    /// The convergence options in use (shared by every per-target cycle
    /// solver).
    pub fn options(&self) -> &IterationOptions {
        &self.options
    }

    /// Aggregate symbolic/numeric-split counters over the *pre-built*
    /// per-target cycle solvers (see `PassageTimeSolver::hotpath_stats`);
    /// empty — all zeros — for target sets above `CYCLE_PREBUILD_LIMIT` (32),
    /// whose solvers are transient by design.
    pub fn hotpath_stats(&self) -> crate::workspace::HotPathStats {
        self.cycle_solvers
            .iter()
            .map(|s| s.hotpath_stats())
            .fold(Default::default(), |acc, s| acc.merged(s))
    }

    /// The closure form of this solver consumed by the distributed pipeline's
    /// measure specs (see `PassageTimeSolver::transform_fn`).
    pub fn transform_fn(&self) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync + '_ {
        move |s| self.transform_at(s).map_err(|e| e.to_string())
    }

    /// Evaluates `T*_{i→j}(s)` at one complex point.
    ///
    /// The computation performs one vector-valued passage solve per target state
    /// (`L_·k(s)`, which also yields the cycle-time transform `L_kk(s)`), then
    /// assembles Eq. (7) weighted over the source states.
    pub fn transform_at(&self, s: Complex64) -> Result<Complex64, SmpError> {
        let n = self.smp.num_states();
        // For every target state k: Λ_k and the column vector L_·k(s).
        let mut lambda = vec![Complex64::ZERO; self.targets.len()];
        let mut l_columns: Vec<Vec<Complex64>> = Vec::with_capacity(self.targets.len());
        for (idx, &k) in self.targets.indices().iter().enumerate() {
            // The column solve for target {k} gives L_ik(s) for every i, including
            // the cycle time L_kk(s) itself.  For small target sets the solver
            // (and its workspace) was built once at construction and is reused
            // for every s-point; above CYCLE_PREBUILD_LIMIT it is rebuilt per
            // evaluation so only one skeleton is alive at a time.
            let column = match self.cycle_solvers.get(idx) {
                Some(solver) => solver.transform_vector_at(s)?,
                None => PassageTimeSolver::with_options(self.smp, &[k], &[k], self.options)?
                    .transform_vector_at(s)?,
            };
            let l_kk = column[k];
            let h_k = self.smp.sojourn_lst(k, s);
            let denom = Complex64::ONE - l_kk;
            // For an irreducible SMP and Re(s) > 0, |L_kk(s)| < 1 so the denominator
            // is safely away from zero; s = 0 is never requested by the inversion.
            lambda[idx] = (Complex64::ONE - h_k) / denom;
            l_columns.push(column);
        }

        // Assemble Eq. (7) for each source state i, weighted by alpha_i.
        let mut total = Complex64::ZERO;
        for (i, &a) in self.alpha.iter().enumerate().take(n) {
            if a == 0.0 {
                continue;
            }
            let mut acc = Complex64::ZERO;
            for (idx, &k) in self.targets.indices().iter().enumerate() {
                if k == i {
                    acc += lambda[idx];
                } else {
                    acc += lambda[idx] * l_columns[idx][i];
                }
            }
            total += acc.scale(a);
        }
        Ok(total / s)
    }
}

impl LaplaceTransform for TransientSolver<'_> {
    /// Evaluating the solver as a transform runs the full Eq. (7) assembly.
    ///
    /// # Panics
    /// Panics if any underlying passage-time iteration fails to converge; use
    /// [`TransientSolver::transform_at`] for explicit error handling.
    fn lst(&self, s: Complex64) -> Complex64 {
        self.transform_at(s)
            .unwrap_or_else(|e| panic!("transient transform failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use crate::steady::smp_steady_state;
    use smp_distributions::Dist;
    use smp_laplace::Euler;

    /// Two-state CTMC with rates λ (0→1) and μ (1→0); transient probabilities have
    /// the classical closed form used as ground truth.
    fn two_state_ctmc(lambda: f64, mu: f64) -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(lambda));
        b.add_transition(1, 0, 1.0, Dist::exponential(mu));
        b.build().unwrap()
    }

    fn ctmc_p00(lambda: f64, mu: f64, t: f64) -> f64 {
        mu / (lambda + mu) + lambda / (lambda + mu) * (-(lambda + mu) * t).exp()
    }

    fn ctmc_p01(lambda: f64, mu: f64, t: f64) -> f64 {
        1.0 - ctmc_p00(lambda, mu, t)
    }

    #[test]
    fn matches_two_state_ctmc_closed_form() {
        let (lambda, mu) = (2.0, 1.0);
        let smp = two_state_ctmc(lambda, mu);
        let euler = Euler::standard();

        let stay = TransientSolver::new(&smp, 0, &[0]).unwrap();
        let move_ = TransientSolver::new(&smp, 0, &[1]).unwrap();
        for &t in &[0.1, 0.3, 0.7, 1.5, 3.0] {
            let p00 = euler.invert(&stay, t);
            let p01 = euler.invert(&move_, t);
            assert!(
                (p00 - ctmc_p00(lambda, mu, t)).abs() < 1e-5,
                "P00({t}) = {p00} vs {}",
                ctmc_p00(lambda, mu, t)
            );
            assert!(
                (p01 - ctmc_p01(lambda, mu, t)).abs() < 1e-5,
                "P01({t}) = {p01} vs {}",
                ctmc_p01(lambda, mu, t)
            );
        }
    }

    #[test]
    fn transient_probabilities_sum_to_one_over_all_states() {
        // Σ_j T_ij(t) = 1 for any t: check in the transform domain at a probe point
        // (Σ_j T*_ij(s) = 1/s) and in the time domain after inversion.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(1, 2, 2.0, Dist::uniform(0.1, 0.9));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 0, 1.0, Dist::deterministic(0.4));
        let smp = b.build().unwrap();
        let s = Complex64::new(0.8, 1.3);
        let mut total = Complex64::ZERO;
        for j in 0..3 {
            let solver = TransientSolver::new(&smp, 0, &[j]).unwrap();
            total += solver.transform_at(s).unwrap();
        }
        assert!((total - Complex64::ONE / s).norm() < 1e-6, "sum = {total}");

        let euler = Euler::standard();
        let t = 1.7;
        let sum_t: f64 = (0..3)
            .map(|j| euler.invert(&TransientSolver::new(&smp, 0, &[j]).unwrap(), t))
            .sum();
        assert!((sum_t - 1.0).abs() < 1e-4, "sum at t={t}: {sum_t}");
    }

    #[test]
    fn set_target_equals_sum_of_singletons() {
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.5));
        b.add_transition(1, 2, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(2, 3, 1.0, Dist::uniform(0.2, 1.2));
        b.add_transition(3, 0, 1.0, Dist::exponential(0.7));
        let smp = b.build().unwrap();
        let s = Complex64::new(0.5, -0.8);
        let set = TransientSolver::new(&smp, 0, &[1, 3]).unwrap();
        let single1 = TransientSolver::new(&smp, 0, &[1]).unwrap();
        let single3 = TransientSolver::new(&smp, 0, &[3]).unwrap();
        let lhs = set.transform_at(s).unwrap();
        let rhs = single1.transform_at(s).unwrap() + single3.transform_at(s).unwrap();
        assert!((lhs - rhs).norm() < 1e-7);
    }

    #[test]
    fn transient_approaches_smp_steady_state() {
        // As t → ∞ the transient probability of a target set approaches its SMP
        // steady-state probability (Fig. 7's asymptote).
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::uniform(0.5, 1.5));
        b.add_transition(1, 2, 1.0, Dist::erlang(4.0, 2));
        b.add_transition(2, 0, 1.0, Dist::exponential(2.0));
        let smp = b.build().unwrap();
        let steady = smp_steady_state(&smp).unwrap();
        let solver = TransientSolver::new(&smp, 0, &[1]).unwrap();
        let euler = Euler::standard();
        let late = euler.invert(&solver, 200.0);
        assert!(
            (late - steady[1]).abs() < 5e-3,
            "T(200) = {late} vs steady {}",
            steady[1]
        );
    }

    #[test]
    fn source_inside_target_set_counts_initial_sojourn() {
        // Starting inside the target set, T(t) must start at 1 for small t.
        let smp = two_state_ctmc(1.0, 1.0);
        let solver = TransientSolver::new(&smp, 0, &[0]).unwrap();
        let euler = Euler::standard();
        let early = euler.invert(&solver, 1e-3);
        assert!((early - 1.0).abs() < 1e-3, "T(0+) = {early}");
    }

    #[test]
    fn multiple_sources_are_weighted() {
        let smp = two_state_ctmc(1.0, 3.0);
        // Sources {0, 1}: embedded chain of the 2-cycle has π = (0.5, 0.5).
        let solver =
            TransientSolver::with_options(&smp, &[0, 1], &[0], IterationOptions::default())
                .unwrap();
        let s = Complex64::new(0.6, 0.4);
        let from0 = TransientSolver::new(&smp, 0, &[0])
            .unwrap()
            .transform_at(s)
            .unwrap();
        let from1 = TransientSolver::new(&smp, 1, &[0])
            .unwrap()
            .transform_at(s)
            .unwrap();
        let combined = solver.transform_at(s).unwrap();
        assert!((combined - (from0 + from1).scale(0.5)).norm() < 1e-8);
    }

    #[test]
    fn rejects_empty_sets() {
        let smp = two_state_ctmc(1.0, 1.0);
        assert!(matches!(
            TransientSolver::with_options(&smp, &[], &[0], IterationOptions::default()),
            Err(SmpError::EmptyStateSet { which: "source" })
        ));
        assert!(matches!(
            TransientSolver::with_options(&smp, &[0], &[], IterationOptions::default()),
            Err(SmpError::EmptyStateSet { which: "target" })
        ));
    }
}
