//! Uniformization backend for the all-exponential special case.
//!
//! When **every** holding-time distribution of a semi-Markov process is
//! exponential (structurally — see [`smp_distributions::Dist::is_exponential`]),
//! the process admits an exact continuous-time Markov chain representation and
//! transient/passage quantities can be computed by *uniformization*
//! (Poisson-weighted power iteration, Grassmann / Gross & Miller) instead of
//! numerical Laplace inversion — orders of magnitude cheaper, and with an
//! **a-priori truncation error bound** (the neglected Poisson tail mass).
//!
//! ## The phase-space reduction
//!
//! The SMP kernel `R(i,j,t) = p_ij · H_ij(t)` *preselects* the successor `j`
//! (probability `p_ij`) and then holds for `H_ij ~ Exp(λ_ij)`.  Because the
//! rate depends on the chosen successor, the state process itself is **not**
//! Markov on the original state space (the sojourn in `i` is a mixture of
//! exponentials).  The exact reduction takes one CTMC state per kernel
//! transition: phase `(i, j)` means "sitting in `i`, committed to jump to
//! `j`".  Its sojourn is `Exp(λ_ij)`, after which the chain enters phase
//! `(j, k)` with probability `p_jk`:
//!
//! ```text
//! Q[(i,j), (j,k)] = λ_ij · p_jk        Q[(i,j), (i,j)] = -λ_ij
//! ```
//!
//! The occupied SMP state of phase `(i, j)` is `i`, so transient state
//! probabilities aggregate phases by their source state.  First-passage
//! measures into a target set `T` route the full rate of every phase
//! `(i, j)` with `j ∈ T` into an extra absorbing phase (matching the
//! iterative solver's semantics: the passage completes on the first jump
//! *into* `T` after time 0, i.e. first-return when the initial state is
//! already in `T`).
//!
//! ## Uniformization
//!
//! With `q ≥ max_φ λ_φ` and `P = I + Q/q` (a stochastic matrix),
//!
//! ```text
//! π(t) = Σ_{k≥0}  e^{-qt} (qt)^k / k!  ·  π(0) Pᵏ
//! ```
//!
//! Truncating the series at `K` discards at most the Poisson tail mass
//! `1 - Σ_{k≤K} e^{-qt}(qt)^k/k!` (times the largest weight being
//! accumulated), which is the bound surfaced through
//! [`Expectation::truncation_bound`] and, at the engine layer, through
//! `Provenance::error_bound`.  Poisson weights are generated in log space so
//! large `q·t` products cannot underflow the running term.
//!
//! Passage-time **moments** need no series at all: on the absorbing chain the
//! raw moments solve the nested linear systems `A mₖ = -k mₖ₋₁` (`A` the
//! transient sub-generator, `m₀ = 1`), handled here by Jacobi iteration —
//! the iteration matrix is substochastic whenever absorption is reachable.

use crate::smp::{SemiMarkovProcess, StateSet};
use smp_sparse::{CsrMatrix, TripletMatrix};
use std::fmt;

/// Default Poisson truncation tolerance: the series is summed until at most
/// this much Poisson mass remains beyond the last term, for every requested
/// time point.
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Relative convergence threshold for the Jacobi moment solves.
const JACOBI_TOLERANCE: f64 = 1e-13;
/// Iteration cap for the Jacobi moment solves.
const JACOBI_MAX_ITERATIONS: usize = 500_000;

/// Errors from the uniformization backend.
#[derive(Debug, Clone, PartialEq)]
pub enum UniformError {
    /// The model has a holding-time distribution that is not structurally
    /// exponential, so the CTMC reduction does not apply.
    NotExponential {
        /// Debug rendering of the offending distribution.
        distribution: String,
    },
    /// A requested time point was negative.
    NegativeTime {
        /// The offending time point.
        t: f64,
    },
    /// The Poisson series failed to accumulate `1 - tol` mass within the
    /// iteration cap (numerically degenerate `q·t`).
    TruncationOverflow {
        /// Number of power-iteration terms taken before giving up.
        iterations: usize,
    },
    /// The Jacobi solve for a passage moment did not converge — the target is
    /// unreachable from some phase, so the moment diverges.
    MomentDiverged {
        /// The moment order being solved.
        order: u32,
        /// Number of Jacobi sweeps performed.
        iterations: usize,
    },
}

impl fmt::Display for UniformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniformError::NotExponential { distribution } => write!(
                f,
                "holding-time distribution {distribution} is not exponential; \
                 uniformization requires every holding time to be built as \
                 Dist::exponential"
            ),
            UniformError::NegativeTime { t } => {
                write!(
                    f,
                    "uniformization requires non-negative time points, got {t}"
                )
            }
            UniformError::TruncationOverflow { iterations } => write!(
                f,
                "Poisson series did not reach the requested mass within \
                 {iterations} terms"
            ),
            UniformError::MomentDiverged { order, iterations } => write!(
                f,
                "moment of order {order} diverges: the absorbing target is not \
                 reached from every phase (Jacobi did not converge in \
                 {iterations} sweeps)"
            ),
        }
    }
}

impl std::error::Error for UniformError {}

/// Per-distribution exponential rates, or the reduction-blocking error.
///
/// Returns one rate per pooled distribution id iff **every** distribution in
/// the pool passes [`smp_distributions::Dist::is_exponential`]; otherwise the
/// error names the first offending distribution.
pub fn exponential_rates(smp: &SemiMarkovProcess) -> Result<Vec<f64>, UniformError> {
    let mut rates = Vec::with_capacity(smp.num_distributions());
    for id in 0..smp.num_distributions() {
        let dist = smp.distribution(id as u32);
        match dist.is_exponential() {
            Some(rate) => rates.push(rate),
            None => {
                return Err(UniformError::NotExponential {
                    distribution: format!("{dist:?}"),
                })
            }
        }
    }
    Ok(rates)
}

/// `true` iff the CTMC reduction applies to `smp` (every pooled holding-time
/// distribution is structurally exponential).
pub fn is_all_exponential(smp: &SemiMarkovProcess) -> bool {
    exponential_rates(smp).is_ok()
}

/// The result of a Poisson-weighted power iteration: one value per requested
/// time point plus the a-priori truncation bound.
#[derive(Debug, Clone)]
pub struct Expectation {
    /// The accumulated values, one per time point, in request order.
    pub values: Vec<f64>,
    /// A-priori bound on the absolute truncation error of every value: the
    /// largest neglected Poisson tail mass across the time points, scaled by
    /// the largest weight magnitude.
    pub truncation_bound: f64,
    /// Number of power-iteration terms (sparse vector–matrix products) taken.
    pub iterations: usize,
}

/// A passage-time moment from the absorbing-chain linear systems.
#[derive(Debug, Clone, Copy)]
pub struct Moment {
    /// The raw moment `E[Tᵏ]`.
    pub value: f64,
    /// Max-norm residual of the final Jacobi iterate (a convergence
    /// indicator, not a rigorous forward-error bound).
    pub residual: f64,
    /// Total Jacobi sweeps across the nested solves.
    pub iterations: usize,
}

/// The phase-space CTMC of an all-exponential semi-Markov process.
///
/// Build with [`PhaseCtmc::transient`] (occupancy queries) or
/// [`PhaseCtmc::passage`] (absorbing first-passage queries); both fail with
/// [`UniformError::NotExponential`] unless every holding-time distribution is
/// structurally exponential.
#[derive(Debug, Clone)]
pub struct PhaseCtmc {
    /// SMP state occupied during each phase (`phase_state[φ] = i` for
    /// phase `φ = (i, j)`).  The absorbing phase, when present, is absent
    /// from this mapping (index `== num_phases`).
    phase_state: Vec<usize>,
    /// Exit rate `λ_ij` of each non-absorbing phase.
    phase_rate: Vec<f64>,
    /// Rate routed directly into the absorbing phase (passage chains only;
    /// `λ_ij` when the committed successor is a target, else 0).
    phase_absorb_rate: Vec<f64>,
    /// The CTMC generator `Q` (including the all-zero absorbing row on
    /// passage chains).
    generator: CsrMatrix<f64>,
    /// The uniformized jump matrix `P = I + Q/q`.
    p: CsrMatrix<f64>,
    /// The uniformization rate `q` (strictly above every exit rate).
    uniformization_rate: f64,
    /// Initial phase distribution: mass `p_{i₀,j}` on each phase `(i₀, j)`.
    initial: Vec<f64>,
    /// Index of the absorbing phase, for passage chains.
    absorbing: Option<usize>,
}

impl PhaseCtmc {
    /// Builds the phase-space CTMC for transient (occupancy) queries.
    pub fn transient(smp: &SemiMarkovProcess, initial_state: usize) -> Result<Self, UniformError> {
        Self::build(smp, initial_state, None)
    }

    /// Builds the absorbing phase-space CTMC for first-passage queries into
    /// `targets` (first-return when `initial_state` is itself a target).
    pub fn passage(
        smp: &SemiMarkovProcess,
        initial_state: usize,
        targets: &StateSet,
    ) -> Result<Self, UniformError> {
        Self::build(smp, initial_state, Some(targets))
    }

    fn build(
        smp: &SemiMarkovProcess,
        initial_state: usize,
        targets: Option<&StateSet>,
    ) -> Result<Self, UniformError> {
        assert!(
            initial_state < smp.num_states(),
            "initial state {initial_state} out of range ({} states)",
            smp.num_states()
        );
        let rates = exponential_rates(smp)?;
        let n = smp.num_states();

        // Phases are grouped by source state, in transition order, so phase
        // (i, j) for the k-th transition of i sits at `first_phase[i] + k`.
        let mut first_phase = vec![0usize; n + 1];
        for i in 0..n {
            first_phase[i + 1] = first_phase[i] + smp.transitions(i).len();
        }
        let num_phases = first_phase[n];
        let absorbing = targets.map(|_| num_phases);
        let dim = num_phases + usize::from(absorbing.is_some());

        let mut phase_state = Vec::with_capacity(num_phases);
        let mut phase_rate = Vec::with_capacity(num_phases);
        let mut phase_absorb_rate = vec![0.0; dim];
        let mut triplets = TripletMatrix::with_capacity(dim, dim, smp.num_transitions() * 3);
        for i in 0..n {
            for (k, tr) in smp.transitions(i).iter().enumerate() {
                let phi = first_phase[i] + k;
                let lambda = rates[tr.dist as usize];
                phase_state.push(i);
                phase_rate.push(lambda);
                triplets.push(phi, phi, -lambda);
                let j = tr.target;
                if targets.is_some_and(|t| t.contains(j)) {
                    triplets.push(phi, num_phases, lambda);
                    phase_absorb_rate[phi] = lambda;
                } else {
                    for (k2, tr2) in smp.transitions(j).iter().enumerate() {
                        triplets.push(phi, first_phase[j] + k2, lambda * tr2.probability);
                    }
                }
            }
        }
        let generator = triplets.to_csr();

        // q strictly above the largest exit rate keeps every diagonal of P
        // strictly positive (the 1.1 factor follows the classic recipe).
        let max_rate = phase_rate.iter().copied().fold(0.0, f64::max);
        let q = 1.1 * max_rate;
        let mut p_triplets = TripletMatrix::with_capacity(dim, dim, generator.nnz() + dim);
        for (r, c, v) in generator.iter() {
            p_triplets.push(r, c, v / q);
        }
        for d in 0..dim {
            p_triplets.push(d, d, 1.0);
        }
        let p = p_triplets.to_csr();

        let mut initial = vec![0.0; dim];
        for (k, tr) in smp.transitions(initial_state).iter().enumerate() {
            initial[first_phase[initial_state] + k] = tr.probability;
        }

        Ok(PhaseCtmc {
            phase_state,
            phase_rate,
            phase_absorb_rate,
            generator,
            p,
            uniformization_rate: q,
            initial,
            absorbing,
        })
    }

    /// Number of phases, including the absorbing phase on passage chains.
    pub fn num_phases(&self) -> usize {
        self.p.rows()
    }

    /// The uniformization rate `q`.
    pub fn uniformization_rate(&self) -> f64 {
        self.uniformization_rate
    }

    /// The CTMC generator `Q` over the phase space (row sums are 0 up to
    /// floating-point roundoff; the absorbing row, when present, is empty).
    pub fn generator(&self) -> &CsrMatrix<f64> {
        &self.generator
    }

    /// Transient occupancy `P(Z(t) ∈ targets)` at each time point.
    ///
    /// Only meaningful on chains built with [`PhaseCtmc::transient`]; panics
    /// on passage chains (whose occupancy is distorted by absorption).
    pub fn transient_probability(
        &self,
        targets: &StateSet,
        t_points: &[f64],
        tolerance: f64,
    ) -> Result<Expectation, UniformError> {
        assert!(
            self.absorbing.is_none(),
            "transient occupancy must be queried on a transient-mode chain"
        );
        let weights: Vec<f64> = self
            .phase_state
            .iter()
            .map(|&i| if targets.contains(i) { 1.0 } else { 0.0 })
            .collect();
        self.poisson_expectation(&weights, t_points, tolerance)
    }

    /// First-passage CDF `F(t) = P(T ≤ t)` at each time point (the absorbed
    /// mass).  Panics unless built with [`PhaseCtmc::passage`].
    pub fn cdf(&self, t_points: &[f64], tolerance: f64) -> Result<Expectation, UniformError> {
        let a = self.require_absorbing();
        let mut weights = vec![0.0; self.num_phases()];
        weights[a] = 1.0;
        self.poisson_expectation(&weights, t_points, tolerance)
    }

    /// First-passage density `f(t)` at each time point: the probability flux
    /// into the absorbing phase, `Σ_φ π_φ(t) · λ_φ→absorbing`.  Panics unless
    /// built with [`PhaseCtmc::passage`].
    pub fn density(&self, t_points: &[f64], tolerance: f64) -> Result<Expectation, UniformError> {
        self.require_absorbing();
        self.poisson_expectation(&self.phase_absorb_rate, t_points, tolerance)
    }

    /// Exit rate `λ_ij` of each non-absorbing phase, in phase order.
    pub fn exit_rates(&self) -> &[f64] {
        &self.phase_rate
    }

    /// Raw passage-time moment `E[Tᵏ]` from the nested linear systems
    /// `A mₖ = -k mₖ₋₁` on the transient sub-generator (no series
    /// truncation).  Panics unless built with [`PhaseCtmc::passage`].
    pub fn moment(&self, order: u32) -> Result<Moment, UniformError> {
        let a = self.require_absorbing();
        assert!(order >= 1, "moment order must be at least 1");
        let n = a; // transient phases are 0..a
        let mut prev = vec![1.0; n]; // m₀ = 1
        let mut x = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut total_sweeps = 0usize;
        let mut residual = 0.0f64;
        for k in 1..=order {
            // Solve (-D + N) m = -k·prev  ⇔  m = D⁻¹(k·prev + N m), where D is
            // the (positive) diagonal exit rate and N the off-diagonal rates
            // into transient phases.
            x.iter_mut().for_each(|v| *v = 0.0);
            let mut converged = false;
            for _sweep in 0..JACOBI_MAX_ITERATIONS {
                total_sweeps += 1;
                let mut diff = 0.0f64;
                let mut scale = 1.0f64;
                for r in 0..n {
                    let mut acc = k as f64 * prev[r];
                    let mut diag = 0.0;
                    for (c, v) in self.generator.row(r) {
                        if c == r {
                            diag = v;
                        } else if c != a {
                            acc += v * x[c];
                        }
                    }
                    if diag >= 0.0 {
                        // A phase with no way out (pure self-loop) can never
                        // absorb: the moment is infinite.
                        return Err(UniformError::MomentDiverged {
                            order: k,
                            iterations: total_sweeps,
                        });
                    }
                    let value = acc / -diag;
                    diff = diff.max((value - x[r]).abs());
                    scale = scale.max(value.abs());
                    next[r] = value;
                }
                std::mem::swap(&mut x, &mut next);
                if diff <= JACOBI_TOLERANCE * scale {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(UniformError::MomentDiverged {
                    order: k,
                    iterations: total_sweeps,
                });
            }
            // Residual of the final iterate: max_r |A·m + k·prev|_r.
            for (r, &prev_r) in prev.iter().enumerate().take(n) {
                let mut acc = k as f64 * prev_r;
                for (c, v) in self.generator.row(r) {
                    if c != a {
                        acc += v * x[c];
                    }
                }
                residual = residual.max(acc.abs());
            }
            prev.copy_from_slice(&x);
        }
        let value = self
            .initial
            .iter()
            .take(n)
            .zip(&prev)
            .map(|(pi, m)| pi * m)
            .sum();
        Ok(Moment {
            value,
            residual,
            iterations: total_sweeps,
        })
    }

    fn require_absorbing(&self) -> usize {
        self.absorbing
            .expect("passage queries require a chain built with PhaseCtmc::passage")
    }

    /// Core uniformization: `values[t] = Σ_k Poisson(qt; k) · (π₀ Pᵏ) · w`,
    /// truncated once every time point has accumulated `1 - tolerance` of its
    /// Poisson mass.  Weights are an arbitrary per-phase vector, so the same
    /// loop serves occupancies (0/1), CDFs (absorbing indicator) and
    /// densities (absorption rates).
    fn poisson_expectation(
        &self,
        weights: &[f64],
        t_points: &[f64],
        tolerance: f64,
    ) -> Result<Expectation, UniformError> {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "truncation tolerance must be in (0, 1), got {tolerance}"
        );
        assert_eq!(weights.len(), self.num_phases());
        if let Some(&t) = t_points.iter().find(|&&t| t < 0.0 || t.is_nan()) {
            return Err(UniformError::NegativeTime { t });
        }

        let q = self.uniformization_rate;
        let qts: Vec<f64> = t_points.iter().map(|&t| q * t).collect();
        let qt_max = qts.iter().copied().fold(0.0, f64::max);
        // A-priori cap: the Poisson(qt) distribution has essentially all its
        // mass below qt + O(√qt); the slack covers tiny tolerances.
        let cap = (qt_max + 50.0 * qt_max.sqrt() + 200.0).ceil() as usize;

        let weight_scale = weights.iter().fold(0.0f64, |m, w| m.max(w.abs()));
        let mut v = self.initial.clone();
        let mut scratch = vec![0.0; v.len()];
        // Per time point: log of the current Poisson term, accumulated mass,
        // accumulated weighted value.  Log space keeps e^{-qt} representable
        // for arbitrarily large qt.
        let mut log_term: Vec<f64> = qts.iter().map(|&qt| -qt).collect();
        let mut mass = vec![0.0f64; qts.len()];
        let mut values = vec![0.0f64; qts.len()];

        let mut k = 0usize;
        loop {
            let d: f64 = v.iter().zip(weights).map(|(p, w)| p * w).sum();
            let mut done = true;
            for ((&lt, value), m) in log_term.iter().zip(&mut values).zip(&mut mass) {
                let term = lt.exp();
                *value += term * d;
                *m += term;
                if *m < 1.0 - tolerance {
                    done = false;
                }
            }
            if done {
                break;
            }
            if k >= cap {
                return Err(UniformError::TruncationOverflow { iterations: k });
            }
            k += 1;
            let logk = (k as f64).ln();
            for (lt, &qt) in log_term.iter_mut().zip(&qts) {
                *lt += qt.ln() - logk;
            }
            self.p.vec_mul_into(&v, &mut scratch);
            std::mem::swap(&mut v, &mut scratch);
        }

        let tail = mass.iter().map(|&m| (1.0 - m).max(0.0)).fold(0.0, f64::max);
        Ok(Expectation {
            values,
            truncation_bound: tail * weight_scale,
            iterations: k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use smp_distributions::Dist;

    const TOL: f64 = 1e-12;

    fn two_state(lambda: f64, mu: f64) -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(lambda));
        b.add_transition(1, 0, 1.0, Dist::exponential(mu));
        b.build().unwrap()
    }

    #[test]
    fn non_exponential_models_are_rejected() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::erlang(2.0, 1)); // exponential lookalike
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        assert!(!is_all_exponential(&smp));
        let err = PhaseCtmc::transient(&smp, 0).unwrap_err();
        assert!(matches!(err, UniformError::NotExponential { .. }), "{err}");
    }

    #[test]
    fn two_state_transient_matches_closed_form() {
        let (lambda, mu) = (2.0, 3.0);
        let smp = two_state(lambda, mu);
        let chain = PhaseCtmc::transient(&smp, 0).unwrap();
        // One transition per state, so the SMP *is* a CTMC here and
        // P(Z(t) = 1 | Z(0) = 0) has the textbook closed form.
        let targets = StateSet::new(2, &[1]).unwrap();
        let ts = [0.1, 0.5, 1.0, 2.0, 5.0];
        let out = chain.transient_probability(&targets, &ts, TOL).unwrap();
        for (&t, &got) in ts.iter().zip(&out.values) {
            let expect = lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
            assert!(
                (got - expect).abs() <= out.truncation_bound + 1e-12,
                "t = {t}: {got} vs {expect} (bound {})",
                out.truncation_bound
            );
        }
    }

    #[test]
    fn two_state_passage_is_exponential() {
        let lambda = 1.7;
        let smp = two_state(lambda, 0.9);
        let targets = StateSet::new(2, &[1]).unwrap();
        let chain = PhaseCtmc::passage(&smp, 0, &targets).unwrap();
        let ts = [0.25, 1.0, 3.0];
        let cdf = chain.cdf(&ts, TOL).unwrap();
        let density = chain.density(&ts, TOL).unwrap();
        for (i, &t) in ts.iter().enumerate() {
            assert!((cdf.values[i] - (1.0 - (-lambda * t).exp())).abs() < 1e-10);
            assert!((density.values[i] - lambda * (-lambda * t).exp()).abs() < 1e-9);
        }
        let mean = chain.moment(1).unwrap();
        assert!((mean.value - 1.0 / lambda).abs() < 1e-10, "{}", mean.value);
        let m2 = chain.moment(2).unwrap();
        assert!((m2.value - 2.0 / (lambda * lambda)).abs() < 1e-9);
    }

    #[test]
    fn ring_passage_is_hypoexponential() {
        // 0 → 1 → 2 → 0 with rates r1, r2, r3; the passage 0 → {2} is the sum
        // of two independent exponentials (hypoexponential).
        let (r1, r2) = (2.0, 1.0);
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(r1));
        b.add_transition(1, 2, 1.0, Dist::exponential(r2));
        b.add_transition(2, 0, 1.0, Dist::exponential(3.0));
        let smp = b.build().unwrap();
        let targets = StateSet::new(3, &[2]).unwrap();
        let chain = PhaseCtmc::passage(&smp, 0, &targets).unwrap();

        let ts = [0.3, 1.0, 2.5, 6.0];
        let cdf = chain.cdf(&ts, TOL).unwrap();
        for (&t, &got) in ts.iter().zip(&cdf.values) {
            let expect = 1.0 - r2 / (r2 - r1) * (-r1 * t).exp() + r1 / (r2 - r1) * (-r2 * t).exp();
            assert!(
                (got - expect).abs() <= cdf.truncation_bound + 1e-11,
                "t = {t}: {got} vs {expect}"
            );
        }
        let mean = chain.moment(1).unwrap();
        assert!((mean.value - (1.0 / r1 + 1.0 / r2)).abs() < 1e-9);
        // E[T²] = Var + mean² = (1/r1² + 1/r2²) + (1/r1 + 1/r2)².
        let m2 = chain.moment(2).unwrap();
        let expect_m2 = 1.0 / (r1 * r1) + 1.0 / (r2 * r2) + (1.0 / r1 + 1.0 / r2).powi(2);
        assert!((m2.value - expect_m2).abs() < 1e-8, "{}", m2.value);
    }

    #[test]
    fn truncation_bound_shrinks_with_tolerance() {
        let smp = two_state(4.0, 1.0);
        let chain = PhaseCtmc::transient(&smp, 0).unwrap();
        let targets = StateSet::new(2, &[1]).unwrap();
        let loose = chain.transient_probability(&targets, &[2.0], 1e-4).unwrap();
        let tight = chain
            .transient_probability(&targets, &[2.0], 1e-13)
            .unwrap();
        assert!(loose.truncation_bound <= 1e-4);
        assert!(tight.truncation_bound <= 1e-13);
        assert!(tight.iterations > loose.iterations);
        assert!((loose.values[0] - tight.values[0]).abs() <= loose.truncation_bound + 1e-13);
    }

    /// Builds a random strongly-exploitable all-exponential SMP: every state
    /// has 1–3 outgoing transitions with random weights, targets and rates.
    fn random_exponential_smp(seed: u64, n: usize) -> SemiMarkovProcess {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SmpBuilder::new(n);
        for i in 0..n {
            let fanout = rng.gen_range(1..=3usize);
            for _ in 0..fanout {
                let target = rng.gen_range(0..n);
                let weight = rng.gen_range(0.1..4.0);
                let rate = rng.gen_range(0.05..20.0);
                b.add_transition(i, target, weight, Dist::exponential(rate));
            }
        }
        b.build().unwrap()
    }

    proptest! {
        /// The CTMC reduction round-trips generator row sums to 0 within a
        /// 1-ulp-scale tolerance: each transient row sums to
        /// `λ·(Σ p_jk − 1)`, and the normalised jump probabilities sum to 1
        /// up to a few ulps per summand.
        #[test]
        fn prop_generator_row_sums_vanish(seed in 0u64..150, n in 2usize..8) {
            let smp = random_exponential_smp(seed, n);
            let chain = PhaseCtmc::transient(&smp, 0).unwrap();
            let q = chain.generator();
            for r in 0..chain.num_phases() {
                let sum: f64 = q.row(r).map(|(_, v)| v).sum();
                let rate = chain.phase_rate[r];
                let fanout = q.row(r).count() as f64;
                prop_assert!(
                    sum.abs() <= 32.0 * f64::EPSILON * rate * fanout.max(1.0),
                    "row {r}: sum {sum:e} vs rate {rate}"
                );
            }
        }

        /// On random all-exponential models the uniformized occupancy is a
        /// probability and the reported truncation bound honours the
        /// requested tolerance.
        #[test]
        fn prop_transient_values_are_probabilities(seed in 0u64..60, n in 2usize..6) {
            let smp = random_exponential_smp(seed, n);
            let chain = PhaseCtmc::transient(&smp, 0).unwrap();
            let targets = StateSet::from_predicate(n, |s| s % 2 == 0);
            let out = chain.transient_probability(&targets, &[0.1, 1.0, 7.5], 1e-10).unwrap();
            prop_assert!(out.truncation_bound <= 1e-10);
            for &v in &out.values {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "occupancy {v}");
            }
        }
    }
}
