//! High-level, single-process analysis drivers.
//!
//! [`PassageTimeAnalysis`] and [`TransientAnalysis`] wire together the pieces that
//! the rest of the crate exposes individually: they plan the `s`-points demanded by
//! the chosen numerical inversion algorithm, evaluate the passage-time / transient
//! transform at each of them with the iterative algorithm, and invert the results
//! into densities, CDFs, quantiles and transient curves.
//!
//! Everything here runs sequentially in the calling thread.  The distributed
//! master–worker version of the same computation — with a shared work queue,
//! checkpointing and scalability instrumentation — lives in the `smp-pipeline`
//! crate; the two produce identical numbers because they share this crate's
//! transform evaluators.

use crate::error::SmpError;
use crate::passage::{IterationOptions, PassageTimeSolver};
use crate::smp::{SemiMarkovProcess, StateSet};
use crate::steady::steady_state_probability;
use crate::transient::TransientSolver;
use smp_laplace::{CdfCurve, InversionMethod, SPointPlan, TransformValues};
use smp_numeric::stats::trapezoid;
use smp_numeric::Complex64;

/// A sampled passage-time (or transient) curve on a grid of `t`-points.
#[derive(Debug, Clone)]
pub struct Curve {
    t_points: Vec<f64>,
    values: Vec<f64>,
}

impl Curve {
    pub(crate) fn new(t_points: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(t_points.len(), values.len());
        Curve { t_points, values }
    }

    /// The time grid.
    pub fn t_points(&self) -> &[f64] {
        &self.t_points
    }

    /// The curve values on the grid.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(t, f(t))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t_points
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Trapezoidal integral of the curve over its grid — for a density curve that
    /// covers the support this is close to 1.
    pub fn integral(&self) -> f64 {
        trapezoid(&self.t_points, &self.values)
    }
}

/// End-to-end passage-time analysis for one (source set, target set) pair.
#[derive(Debug, Clone)]
pub struct PassageTimeAnalysis<'a> {
    solver: PassageTimeSolver<'a>,
}

impl<'a> PassageTimeAnalysis<'a> {
    /// Creates an analysis of the passage from `sources` into `targets`.
    pub fn new(
        smp: &'a SemiMarkovProcess,
        sources: &[usize],
        targets: &[usize],
    ) -> Result<Self, SmpError> {
        Ok(PassageTimeAnalysis {
            solver: PassageTimeSolver::new(smp, sources, targets)?,
        })
    }

    /// Creates an analysis with explicit iteration options.
    pub fn with_options(
        smp: &'a SemiMarkovProcess,
        sources: &[usize],
        targets: &[usize],
        options: IterationOptions,
    ) -> Result<Self, SmpError> {
        Ok(PassageTimeAnalysis {
            solver: PassageTimeSolver::with_options(smp, sources, targets, options)?,
        })
    }

    /// The underlying per-`s`-point solver.
    pub fn solver(&self) -> &PassageTimeSolver<'a> {
        &self.solver
    }

    /// Evaluates the passage-time transform at every point of a plan, returning the
    /// filled value cache (this is the sequential analogue of the distributed
    /// pipeline's work queue).  One workspace is checked out for the whole
    /// plan, so the symbolic phase and all scratch buffers are shared across
    /// every `s`-point.
    pub fn compute_transform_values(&self, plan: &SPointPlan) -> Result<TransformValues, SmpError> {
        self.solver.with_workspace(|ws| {
            let mut values = TransformValues::new();
            for &s in plan.s_points() {
                values.insert(s, self.solver.transform_at_with(ws, s)?.value);
            }
            Ok(values)
        })
    }

    /// The passage-time *density* `f(t)` on the given time grid.
    pub fn density(&self, method: InversionMethod, t_points: &[f64]) -> Result<Curve, SmpError> {
        let plan = SPointPlan::new(method, t_points);
        let values = self.compute_transform_values(&plan)?;
        Ok(Curve::new(t_points.to_vec(), plan.invert(&values)))
    }

    /// The passage-time *cumulative distribution* `F(t)` on the given time grid,
    /// obtained by inverting `L(s)/s` (Fig. 5 of the paper).
    pub fn cdf(&self, method: InversionMethod, t_points: &[f64]) -> Result<CdfCurve, SmpError> {
        let plan = SPointPlan::new(method, t_points);
        let values = self.solver.with_workspace(|ws| {
            let mut values = TransformValues::new();
            for &s in plan.s_points() {
                values.insert(s, self.solver.transform_at_with(ws, s)?.value / s);
            }
            Ok::<TransformValues, SmpError>(values)
        })?;
        Ok(CdfCurve::from_samples(
            t_points.to_vec(),
            plan.invert(&values),
        ))
    }

    /// The probability that the passage completes within `deadline` (a reliability
    /// quantile read off the CDF, e.g. the paper's
    /// "P(system 5 processes 175 voters in under 440 s) = 0.9858").
    pub fn completion_probability(
        &self,
        method: InversionMethod,
        deadline: f64,
        grid_points: usize,
    ) -> Result<f64, SmpError> {
        assert!(deadline > 0.0 && grid_points >= 2);
        let ts = smp_numeric::stats::linspace(deadline / grid_points as f64, deadline, grid_points);
        let curve = self.cdf(method, &ts)?;
        Ok(curve.probability_at(deadline))
    }

    /// Mean passage time obtained from the transform derivative at the origin,
    /// `E[T] = −L'(0)`, by central finite differences.  Cheap sanity check used by
    /// tests and the experiment harnesses (no inversion needed).
    pub fn mean_from_transform(&self, h: f64) -> Result<f64, SmpError> {
        assert!(h > 0.0);
        let plus = self.solver.transform_at(Complex64::real(h))?.value;
        let minus = self.solver.transform_at(Complex64::real(-h))?.value;
        Ok(-(plus.re - minus.re) / (2.0 * h))
    }
}

/// End-to-end transient-state-distribution analysis.
#[derive(Debug, Clone)]
pub struct TransientAnalysis<'a> {
    solver: TransientSolver<'a>,
    smp: &'a SemiMarkovProcess,
    targets: Vec<usize>,
}

impl<'a> TransientAnalysis<'a> {
    /// Creates an analysis of `P(Z(t) ∈ targets | Z(0) = source)`.
    pub fn new(
        smp: &'a SemiMarkovProcess,
        source: usize,
        targets: &[usize],
    ) -> Result<Self, SmpError> {
        Ok(TransientAnalysis {
            solver: TransientSolver::new(smp, source, targets)?,
            smp,
            targets: targets.to_vec(),
        })
    }

    /// The underlying per-`s`-point transient solver.
    pub fn solver(&self) -> &TransientSolver<'a> {
        &self.solver
    }

    /// The transient distribution `P(Z(t) ∈ targets)` on the given time grid.
    pub fn distribution(
        &self,
        method: InversionMethod,
        t_points: &[f64],
    ) -> Result<Curve, SmpError> {
        let plan = SPointPlan::new(method, t_points);
        let mut values = TransformValues::new();
        for &s in plan.s_points() {
            values.insert(s, self.solver.transform_at(s)?);
        }
        let raw = plan.invert(&values);
        // Probabilities: clamp the inversion noise into [0, 1].
        let clamped = raw.into_iter().map(|p| p.clamp(0.0, 1.0)).collect();
        Ok(Curve::new(t_points.to_vec(), clamped))
    }

    /// The steady-state probability of the target set — the asymptote the transient
    /// curve approaches as `t → ∞` (the horizontal line of Fig. 7).
    pub fn steady_state_value(&self) -> Result<f64, SmpError> {
        let set = StateSet::new(self.smp.num_states(), &self.targets)?;
        steady_state_probability(self.smp, &set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpBuilder;
    use smp_distributions::Dist;
    use smp_numeric::stats::linspace;

    fn tandem_smp() -> SemiMarkovProcess {
        // 0 -> 1 -> 2 -> 3 -> 0 with a mix of distribution types.
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(1, 2, 1.0, Dist::uniform(0.2, 1.0));
        b.add_transition(2, 3, 1.0, Dist::exponential(1.5));
        b.add_transition(3, 0, 1.0, Dist::deterministic(0.3));
        b.build().unwrap()
    }

    #[test]
    fn density_integrates_to_one() {
        let smp = tandem_smp();
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[3]).unwrap();
        let ts = linspace(0.05, 15.0, 300);
        let density = analysis.density(InversionMethod::euler(), &ts).unwrap();
        let mass = density.integral();
        assert!((mass - 1.0).abs() < 0.02, "total mass {mass}");
        assert!(density.values().iter().all(|&v| v > -1e-3));
        assert_eq!(density.iter().count(), 300);
    }

    #[test]
    fn density_matches_known_convolution() {
        // Passage 0 -> 2 across two exponential stages with equal rates is Erlang-2.
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2]).unwrap();
        let ts = linspace(0.1, 6.0, 40);
        let density = analysis.density(InversionMethod::euler(), &ts).unwrap();
        for (t, v) in density.iter() {
            let expect = 4.0 * t * (-2.0 * t).exp();
            assert!((v - expect).abs() < 1e-5, "f({t}) = {v} vs {expect}");
        }
    }

    #[test]
    fn cdf_and_completion_probability() {
        let smp = tandem_smp();
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[3]).unwrap();
        let ts = linspace(0.1, 12.0, 120);
        let cdf = analysis.cdf(InversionMethod::euler(), &ts).unwrap();
        // Monotone, bounded, reaching essentially 1 by the end of the window.
        assert!(cdf.values().windows(2).all(|w| w[1] + 1e-12 >= w[0]));
        assert!(cdf.values().last().unwrap() > &0.99);
        let p = analysis
            .completion_probability(InversionMethod::euler(), 12.0, 48)
            .unwrap();
        assert!((p - cdf.probability_at(12.0)).abs() < 1e-3);
    }

    #[test]
    fn mean_from_transform_matches_sum_of_means() {
        let smp = tandem_smp();
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[3]).unwrap();
        let mean = analysis.mean_from_transform(1e-5).unwrap();
        // Passage 0 -> 3 visits states 0, 1, 2: mean sojourns 1.0 + 0.6 + 2/3.
        let expect = 1.0 + 0.6 + 1.0 / 1.5;
        assert!((mean - expect).abs() < 1e-3, "mean {mean} vs {expect}");
    }

    #[test]
    fn transient_analysis_curve_and_asymptote() {
        let smp = tandem_smp();
        let analysis = TransientAnalysis::new(&smp, 0, &[2]).unwrap();
        let ts = linspace(0.25, 40.0, 80);
        let curve = analysis
            .distribution(InversionMethod::euler(), &ts)
            .unwrap();
        assert!(curve.values().iter().all(|&p| (0.0..=1.0).contains(&p)));
        let steady = analysis.steady_state_value().unwrap();
        let tail = *curve.values().last().unwrap();
        assert!(
            (tail - steady).abs() < 0.02,
            "transient tail {tail} vs steady state {steady}"
        );
    }

    #[test]
    fn transform_values_computed_for_whole_plan() {
        let smp = tandem_smp();
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2]).unwrap();
        let plan = SPointPlan::new(InversionMethod::euler(), &[1.0, 2.0]);
        let values = analysis.compute_transform_values(&plan).unwrap();
        assert!(plan.is_satisfied_by(&values));
        assert_eq!(values.len(), plan.len());
    }
}
