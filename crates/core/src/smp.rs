//! The semi-Markov process kernel.
//!
//! A time-homogeneous SMP over states `{0, …, N−1}` is described by its kernel
//! `R(i,j,t) = p_ij · H_ij(t)` (Section 2.1 of the paper): `p_ij` is the embedded
//! state-transition probability and `H_ij` the sojourn-time distribution used when
//! the next state is `j`.  [`SemiMarkovProcess`] stores the kernel sparsely —
//! transition lists per source state, with holding-time distributions de-duplicated
//! into a shared pool — and knows how to materialise the Laplace-domain matrices
//! used by the passage-time iteration:
//!
//! * `U`  with entries `u_pq  = r*_pq(s) = p_pq · H*_pq(s)`;
//! * `U'` equal to `U` with the rows of target states zeroed (targets made
//!   absorbing).

use crate::embedded::EmbeddedChain;
use crate::error::SmpError;
use smp_distributions::Dist;
use smp_numeric::Complex64;
use smp_sparse::{CsrMatrix, TripletMatrix};
use std::sync::Arc;

/// Identifier of a distribution in the de-duplicated pool.
pub type DistId = u32;

/// One outgoing transition of the SMP kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Destination state.
    pub target: usize,
    /// Embedded transition probability `p_ij` (normalised over the source state).
    pub probability: f64,
    /// Index of the holding-time distribution in the process's pool.
    pub dist: DistId,
}

/// A set of states, stored both as a membership mask (O(1) lookups during the
/// iteration) and as an index list (cheap iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct StateSet {
    mask: Vec<bool>,
    indices: Vec<usize>,
}

impl StateSet {
    /// Builds a state set from a list of indices.
    ///
    /// Duplicates are ignored; indices must be below `num_states`.
    pub fn new(num_states: usize, states: &[usize]) -> Result<Self, SmpError> {
        let mut mask = vec![false; num_states];
        let mut indices = Vec::with_capacity(states.len());
        for &s in states {
            if s >= num_states {
                return Err(SmpError::StateOutOfRange {
                    state: s,
                    num_states,
                });
            }
            if !mask[s] {
                mask[s] = true;
                indices.push(s);
            }
        }
        Ok(StateSet { mask, indices })
    }

    /// Builds a state set from a predicate over state indices.
    pub fn from_predicate(num_states: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut mask = vec![false; num_states];
        let mut indices = Vec::new();
        for (s, member) in mask.iter_mut().enumerate() {
            if pred(s) {
                *member = true;
                indices.push(s);
            }
        }
        StateSet { mask, indices }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, state: usize) -> bool {
        self.mask[state]
    }

    /// The member indices, in insertion order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The membership mask over all states.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Number of member states.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// A finite, time-homogeneous semi-Markov process.
///
/// Cloning is cheap on the solver state: the memoized embedded-chain solve
/// (see [`SemiMarkovProcess::embedded_chain`]) is shared between clones, so a
/// clone of an already-analysed process never re-runs the steady-state solver.
#[derive(Debug, Clone)]
pub struct SemiMarkovProcess {
    num_states: usize,
    transitions: Vec<Vec<Transition>>,
    dist_pool: Vec<Dist>,
    num_transitions: usize,
    /// Lazily-memoized stationary solve of the embedded DTMC: every
    /// `PassageTimeSolver`/`TransientSolver` built over this process for a
    /// multiple-source measure needs the same α-weight solve, so a
    /// multi-measure batch pays for it exactly once.
    embedded_cache: Arc<parking_lot::Mutex<Option<Arc<EmbeddedChain>>>>,
    /// Lazily-memoized target-independent CSR structure + fill plan of `U(s)`
    /// (see `crate::workspace::UStructure`): shared by every passage skeleton
    /// built over this process, so a solver per target state (the transient
    /// computation) pays the `O(nnz log)` compression once.
    structure_cache: Arc<parking_lot::Mutex<Option<Arc<crate::workspace::UStructure>>>>,
}

impl SemiMarkovProcess {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of kernel transitions.
    pub fn num_transitions(&self) -> usize {
        self.num_transitions
    }

    /// Number of distinct holding-time distributions in the pool.
    pub fn num_distributions(&self) -> usize {
        self.dist_pool.len()
    }

    /// The outgoing transitions of a state.
    pub fn transitions(&self, state: usize) -> &[Transition] {
        &self.transitions[state]
    }

    /// Looks up a pooled distribution.
    pub fn distribution(&self, id: DistId) -> &Dist {
        &self.dist_pool[id as usize]
    }

    /// The memoized stationary solve of the embedded DTMC (default solver
    /// options).  The first call runs the Gauss–Seidel solver; every later
    /// call — from any solver or clone of this process — returns the shared
    /// result.  Use [`EmbeddedChain::solve_with`] directly for non-default
    /// solver options (those results are not cached).
    pub fn embedded_chain(&self) -> Result<Arc<EmbeddedChain>, SmpError> {
        let mut cache = self.embedded_cache.lock();
        if let Some(chain) = cache.as_ref() {
            return Ok(Arc::clone(chain));
        }
        let chain = Arc::new(EmbeddedChain::solve_uncached(self)?);
        *cache = Some(Arc::clone(&chain));
        Ok(chain)
    }

    /// The memoized target-independent `U(s)` structure + fill plan shared by
    /// every passage skeleton over this process.
    pub(crate) fn u_structure(&self) -> Arc<crate::workspace::UStructure> {
        let mut cache = self.structure_cache.lock();
        if let Some(structure) = cache.as_ref() {
            return Arc::clone(structure);
        }
        let structure = Arc::new(crate::workspace::UStructure::build(self));
        *cache = Some(Arc::clone(&structure));
        structure
    }

    /// The embedded discrete-time Markov chain `P = [p_ij]`.
    pub fn embedded_dtmc(&self) -> CsrMatrix<f64> {
        let mut t =
            TripletMatrix::with_capacity(self.num_states, self.num_states, self.num_transitions);
        for (i, row) in self.transitions.iter().enumerate() {
            for tr in row {
                t.push(i, tr.target, tr.probability);
            }
        }
        t.to_csr()
    }

    /// The matrix `U(s)` with entries `u_pq = r*_pq(s) = p_pq · H*_pq(s)`.
    pub fn build_u(&self, s: Complex64) -> CsrMatrix<Complex64> {
        // Evaluate every pooled distribution once, then scale per transition.
        let pool_values: Vec<Complex64> = self.dist_pool.iter().map(|d| d.lst(s)).collect();
        let mut t =
            TripletMatrix::with_capacity(self.num_states, self.num_states, self.num_transitions);
        for (i, row) in self.transitions.iter().enumerate() {
            for tr in row {
                t.push(
                    i,
                    tr.target,
                    pool_values[tr.dist as usize].scale(tr.probability),
                );
            }
        }
        t.to_csr()
    }

    /// The pair `(U, U')` for a target set: `U'` is `U` with target-state rows
    /// removed (targets made absorbing), as required by Eq. (9) of the paper.
    pub fn build_u_pair(
        &self,
        s: Complex64,
        targets: &StateSet,
    ) -> (CsrMatrix<Complex64>, CsrMatrix<Complex64>) {
        let u = self.build_u(s);
        let u_prime = u.zero_rows(targets.mask());
        (u, u_prime)
    }

    /// LST of the (unconditional) sojourn-time distribution in state `i`:
    /// `h*_i(s) = Σ_j r*_ij(s)`.
    pub fn sojourn_lst(&self, state: usize, s: Complex64) -> Complex64 {
        self.transitions[state]
            .iter()
            .map(|tr| {
                self.dist_pool[tr.dist as usize]
                    .lst(s)
                    .scale(tr.probability)
            })
            .sum()
    }

    /// Mean sojourn time in state `i`: `Σ_j p_ij · E[H_ij]`.
    pub fn mean_sojourn(&self, state: usize) -> f64 {
        self.transitions[state]
            .iter()
            .map(|tr| tr.probability * self.dist_pool[tr.dist as usize].mean())
            .sum()
    }

    /// Samples the next state and sojourn time from state `i` (used by tests and by
    /// the state-level simulator to cross-validate the analytic pipeline).
    pub fn sample_step<R: rand::Rng + ?Sized>(&self, state: usize, rng: &mut R) -> (usize, f64) {
        let row = &self.transitions[state];
        debug_assert!(!row.is_empty(), "deadlock state {state} in sample_step");
        let mut u: f64 = rng.gen_range(0.0..1.0);
        for tr in row {
            if u < tr.probability {
                let delay = self.dist_pool[tr.dist as usize].sample(rng);
                return (tr.target, delay);
            }
            u -= tr.probability;
        }
        let tr = row.last().expect("non-empty transition row");
        (tr.target, self.dist_pool[tr.dist as usize].sample(rng))
    }

    /// Approximate heap footprint of the kernel in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.transitions
            .iter()
            .map(|row| row.len() * std::mem::size_of::<Transition>())
            .sum::<usize>()
            + self.num_states * std::mem::size_of::<Vec<Transition>>()
    }
}

/// Incremental builder for a [`SemiMarkovProcess`].
///
/// Transitions are added with arbitrary positive *weights*; at [`SmpBuilder::build`]
/// time the weights of each source state are normalised into the embedded transition
/// probabilities `p_ij` (this mirrors the weight-based probabilistic choice of the
/// SM-SPN formalism, Section 5.1).
#[derive(Debug, Clone)]
pub struct SmpBuilder {
    num_states: usize,
    weights: Vec<Vec<(usize, f64, DistId)>>,
    dist_pool: Vec<Dist>,
}

impl SmpBuilder {
    /// Creates a builder for a process with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        SmpBuilder {
            num_states,
            weights: vec![Vec::new(); num_states],
            dist_pool: Vec::new(),
        }
    }

    /// Number of states the process will have.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Interns a distribution into the pool, returning its identifier.  Equal
    /// distributions share a single pool slot — this is what keeps the kernel's
    /// memory footprint proportional to the number of *distinct* firing
    /// distributions rather than the number of transitions.
    pub fn intern_distribution(&mut self, dist: Dist) -> DistId {
        if let Some(pos) = self.dist_pool.iter().position(|d| *d == dist) {
            return pos as DistId;
        }
        self.dist_pool.push(dist);
        (self.dist_pool.len() - 1) as DistId
    }

    /// Adds a transition `from → to` with the given weight and holding-time
    /// distribution.
    pub fn add_transition(&mut self, from: usize, to: usize, weight: f64, dist: Dist) {
        let id = self.intern_distribution(dist);
        self.add_transition_pooled(from, to, weight, id);
    }

    /// Adds a transition referring to an already-interned distribution.
    pub fn add_transition_pooled(&mut self, from: usize, to: usize, weight: f64, dist: DistId) {
        assert!(from < self.num_states, "source state {from} out of range");
        assert!(to < self.num_states, "target state {to} out of range");
        assert!(
            (dist as usize) < self.dist_pool.len(),
            "unknown distribution id"
        );
        self.weights[from].push((to, weight, dist));
    }

    /// Finalises the process, normalising weights into probabilities.
    pub fn build(self) -> Result<SemiMarkovProcess, SmpError> {
        if self.num_states == 0 {
            return Err(SmpError::EmptyModel);
        }
        let mut transitions = Vec::with_capacity(self.num_states);
        let mut num_transitions = 0;
        for (state, row) in self.weights.into_iter().enumerate() {
            if row.is_empty() {
                return Err(SmpError::DeadlockState { state });
            }
            let mut total = 0.0;
            for &(to, w, _) in &row {
                if !(w > 0.0 && w.is_finite()) {
                    return Err(SmpError::InvalidWeight {
                        from: state,
                        to,
                        weight: w,
                    });
                }
                total += w;
            }
            let mut out = Vec::with_capacity(row.len());
            for (to, w, dist) in row {
                out.push(Transition {
                    target: to,
                    probability: w / total,
                    dist,
                });
            }
            num_transitions += out.len();
            transitions.push(out);
        }
        Ok(SemiMarkovProcess {
            num_states: self.num_states,
            transitions,
            dist_pool: self.dist_pool,
            num_transitions,
            embedded_cache: Arc::new(parking_lot::Mutex::new(None)),
            structure_cache: Arc::new(parking_lot::Mutex::new(None)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn three_state_smp() -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 3.0, Dist::exponential(1.0));
        b.add_transition(0, 2, 1.0, Dist::deterministic(2.0));
        b.add_transition(1, 2, 1.0, Dist::erlang(2.0, 2));
        b.add_transition(2, 0, 1.0, Dist::uniform(0.5, 1.5));
        b.build().unwrap()
    }

    #[test]
    fn builder_normalises_weights() {
        let smp = three_state_smp();
        assert_eq!(smp.num_states(), 3);
        assert_eq!(smp.num_transitions(), 4);
        let row0 = smp.transitions(0);
        assert_eq!(row0.len(), 2);
        assert!((row0[0].probability - 0.75).abs() < 1e-15);
        assert!((row0[1].probability - 0.25).abs() < 1e-15);
    }

    #[test]
    fn distribution_pool_dedups() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(5.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(5.0));
        b.add_transition(1, 1, 1.0, Dist::exponential(7.0));
        let smp = b.build().unwrap();
        assert_eq!(smp.num_distributions(), 2);
        assert_eq!(smp.num_transitions(), 3);
    }

    #[test]
    fn embedded_dtmc_is_stochastic() {
        let smp = three_state_smp();
        let p = smp.embedded_dtmc();
        smp_sparse::steady_state::assert_stochastic(&p, 1e-12);
        assert_eq!(p.get(0, 1), 0.75);
        assert_eq!(p.get(0, 2), 0.25);
    }

    #[test]
    fn u_matrix_values_match_kernel() {
        let smp = three_state_smp();
        let s = Complex64::new(0.3, 0.7);
        let u = smp.build_u(s);
        let expect_01 = Dist::exponential(1.0).lst(s).scale(0.75);
        let expect_02 = Dist::deterministic(2.0).lst(s).scale(0.25);
        assert!((u.get(0, 1) - expect_01).norm() < 1e-14);
        assert!((u.get(0, 2) - expect_02).norm() < 1e-14);
        // At s = 0 the U matrix reduces to the embedded DTMC.
        let u0 = smp.build_u(Complex64::ZERO);
        for (r, c, v) in u0.iter() {
            assert!((v.re - smp.embedded_dtmc().get(r, c)).abs() < 1e-14);
            assert_eq!(v.im, 0.0);
        }
    }

    #[test]
    fn u_prime_zeroes_target_rows() {
        let smp = three_state_smp();
        let targets = StateSet::new(3, &[2]).unwrap();
        let s = Complex64::new(0.1, 0.2);
        let (u, u_prime) = smp.build_u_pair(s, &targets);
        assert_eq!(u_prime.row_nnz(2), 0);
        assert_eq!(u.row_nnz(2), 1);
        assert_eq!(u_prime.get(0, 1), u.get(0, 1));
    }

    #[test]
    fn sojourn_lst_and_mean() {
        let smp = three_state_smp();
        let s = Complex64::new(0.4, -0.2);
        let expect =
            Dist::exponential(1.0).lst(s).scale(0.75) + Dist::deterministic(2.0).lst(s).scale(0.25);
        assert!((smp.sojourn_lst(0, s) - expect).norm() < 1e-14);
        assert!((smp.mean_sojourn(0) - (0.75 * 1.0 + 0.25 * 2.0)).abs() < 1e-14);
        // h*_i(0) = 1 for every state.
        for i in 0..3 {
            assert!((smp.sojourn_lst(i, Complex64::ZERO) - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn sample_step_respects_probabilities() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let smp = three_state_smp();
        let mut rng = StdRng::seed_from_u64(5);
        let mut to_1 = 0;
        let n = 40_000;
        for _ in 0..n {
            let (next, delay) = smp.sample_step(0, &mut rng);
            assert!(delay >= 0.0);
            if next == 1 {
                to_1 += 1;
            } else {
                assert_eq!(next, 2);
            }
        }
        let frac = to_1 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "fraction to state 1: {frac}");
    }

    #[test]
    fn state_set_operations() {
        let set = StateSet::new(5, &[1, 3, 3]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(3));
        assert!(!set.contains(0));
        assert_eq!(set.indices(), &[1, 3]);
        assert_eq!(set.mask(), &[false, true, false, true, false]);
        assert!(StateSet::new(3, &[7]).is_err());
        let pred = StateSet::from_predicate(4, |s| s % 2 == 0);
        assert_eq!(pred.indices(), &[0, 2]);
        assert!(!pred.is_empty());
    }

    #[test]
    fn deadlock_and_invalid_weight_rejected() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        assert_eq!(b.build().unwrap_err(), SmpError::DeadlockState { state: 1 });

        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 0.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        assert!(matches!(
            b.build().unwrap_err(),
            SmpError::InvalidWeight { .. }
        ));

        assert_eq!(
            SmpBuilder::new(0).build().unwrap_err(),
            SmpError::EmptyModel
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_state() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 5, 1.0, Dist::exponential(1.0));
    }

    proptest! {
        /// For random SMPs, every row of U(s) with Re(s) ≥ 0 has |row sum| ≤ 1
        /// (it equals h*_i(s), the LST of a distribution), and U(0) row sums are 1.
        #[test]
        fn prop_u_row_sums_are_sojourn_lsts(seed in 0u64..200, re in 0.0f64..3.0, im in -5.0f64..5.0) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..8);
            let mut b = SmpBuilder::new(n);
            for i in 0..n {
                let fanout = rng.gen_range(1..4usize);
                for _ in 0..fanout {
                    let to = rng.gen_range(0..n);
                    let dist = match rng.gen_range(0..3) {
                        0 => Dist::exponential(rng.gen_range(0.2..3.0)),
                        1 => Dist::erlang(rng.gen_range(0.5..2.0), rng.gen_range(1..4)),
                        _ => Dist::uniform(0.0, rng.gen_range(0.5..4.0)),
                    };
                    b.add_transition(i, to, rng.gen_range(0.1..2.0), dist);
                }
            }
            let smp = b.build().unwrap();
            let s = Complex64::new(re, im);
            let u = smp.build_u(s);
            for i in 0..n {
                let row_sum: Complex64 = u.row(i).map(|(_, v)| v).sum();
                prop_assert!(row_sum.norm() <= 1.0 + 1e-9);
                prop_assert!((row_sum - smp.sojourn_lst(i, s)).norm() < 1e-10);
            }
            let u0 = smp.build_u(Complex64::ZERO);
            for i in 0..n {
                let row_sum: Complex64 = u0.row(i).map(|(_, v)| v).sum();
                prop_assert!((row_sum - Complex64::ONE).norm() < 1e-9);
            }
        }
    }
}
