//! The determinism rules, D001–D005.
//!
//! Each rule inspects the analyzed [`SourceFile`]s and reports [`Finding`]s.
//! Rules are *module-path aware*: every rule declares which crates/file stems
//! it patrols, so e.g. D001 only fires in the wire/checkpoint/cache layer
//! where decimal float formatting would corrupt bit-exactness, while a CLI
//! table printer may format floats freely.
//!
//! | Code | Invariant |
//! |------|-----------|
//! | D001 | floats cross serialization boundaries as 16-hex-digit bit patterns, never decimal text |
//! | D002 | nothing ordered (wire records, checkpoints, work queues) iterates a Hash map/set |
//! | D003 | wall clocks and OS entropy never influence result values |
//! | D004 | code reachable from untrusted-input decoders returns errors, never panics |
//! | D005 | no lock guard is held across channel sends or socket I/O |

pub mod d001;
pub mod d002;
pub mod d003;
pub mod d004;
pub mod d005;

use crate::analysis::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D001`…`D005`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Renders in the canonical `file:line: [CODE] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Runs every rule over the file set and returns all findings, sorted by
/// path, line, then rule code.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(d001::check(files));
    findings.extend(d002::check(files));
    findings.extend(d003::check(files));
    findings.extend(d004::check(files));
    findings.extend(d005::check(files));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}
