//! D005 — no lock guard held across a channel send or socket I/O.
//!
//! In the master/transport layer a mutex or rwlock guard held across a
//! blocking `send`/`recv`/socket write couples lock hold time to network and
//! scheduling latency: one slow worker connection can stall every thread
//! contending for the same shard, and two locks acquired in opposite order
//! around blocking calls deadlock outright.  The discipline is: copy what you
//! need out of the guard, drop it (end of scope or explicit `drop`), *then*
//! perform the blocking operation.
//!
//! Fires in `transport.rs`, `master.rs`, `server.rs` and `client.rs` when a
//! guard bound from a
//! zero-argument `.lock()` / `.read()` / `.write()` call is still live
//! (same block, not yet `drop`ped) at a `.send(` / `.recv(` /
//! `.write_all(` / `.read_exact(` / `.flush(` / `.accept(` call.

use super::Finding;
use crate::analysis::SourceFile;
use crate::lexer::TokenKind;

/// File stems patrolled by D005.
const SCOPE_STEMS: &[&str] = &["transport", "master", "server", "client", "shard"];

/// Guard-producing methods (zero-argument distinguishes the lock APIs from
/// `io::Read::read(&mut buf)` / `io::Write::write(&buf)`).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Blocking channel/socket operations.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "flush",
    "accept",
];

/// Runs D005 over the file set.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !SCOPE_STEMS.contains(&file.stem()) {
            continue;
        }
        for def in file.functions() {
            if def.in_test {
                continue;
            }
            scan_fn(file, def.tokens, &mut findings);
        }
    }
    findings
}

/// Walks one function body tracking live guards by lexical scope.
fn scan_fn(file: &SourceFile, range: (usize, usize), findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    // (name, depth at which the guard's `let` lives)
    let mut live: Vec<(String, u32)> = Vec::new();
    let mut i = range.0;
    let end = range.1.min(toks.len());
    while i < end {
        let t = &toks[i];
        // Leaving a block kills guards bound inside it.
        if t.is_punct("}") {
            let depth_after = file.depth[i];
            live.retain(|&(_, d)| d <= depth_after);
        }
        // `drop(name)` kills the guard explicitly.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            let name = &toks[i + 2].text;
            live.retain(|(n, _)| n != name);
        }
        // `let [mut] name = … .lock() … ;` binds a guard.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name_tok), Some(eq_tok)) = (toks.get(j), toks.get(j + 1)) {
                if name_tok.kind == TokenKind::Ident && eq_tok.is_punct("=") {
                    // A guard binding is a *trailing* zero-argument guard
                    // method call right before the statement's `;` —
                    // `let g = shard.lock();`.  A chained call after it
                    // (`.lock().clone()`) means the guard is a temporary,
                    // dropped at the end of the statement; a `{` means a
                    // block expression whose inner `let`s are scanned on
                    // their own.
                    let mut k = j + 2;
                    while k < end && !toks[k].is_punct(";") && !toks[k].is_punct("{") {
                        if toks[k].is_punct(".")
                            && toks
                                .get(k + 1)
                                .is_some_and(|t| GUARD_METHODS.contains(&t.text.as_str()))
                            && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
                            && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
                            && toks.get(k + 4).is_some_and(|t| t.is_punct(";"))
                        {
                            live.push((name_tok.text.clone(), file.depth[i]));
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
        // A blocking call while any guard is live is the violation.
        if t.is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|t| BLOCKING_CALLS.contains(&t.text.as_str()))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
            && !live.is_empty()
        {
            let (guard, _) = &live[live.len() - 1];
            findings.push(Finding {
                rule: "D005",
                path: file.path.clone(),
                line: toks[i + 1].line,
                message: format!(
                    "`.{}()` while lock guard `{guard}` is live; copy data out, drop the \
                     guard, then block — a held guard couples lock hold time to network \
                     latency and invites deadlock",
                    toks[i + 1].text
                ),
            });
        }
        i += 1;
    }
}
