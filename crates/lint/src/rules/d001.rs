//! D001 — floats cross the wire as bit patterns, never as decimal text.
//!
//! The pipeline's correctness argument leans on *bit-exact* f64 round-trips:
//! a worker's result is keyed by the exact `s`-point the master planned, and a
//! checkpoint reload must reproduce the cache byte-for-byte.  Decimal float
//! formatting (`{}`, `{:e}`, `{:.17}`) silently rounds — `0.1 + 0.2` prints
//! as `0.30000000000000004` only if you are lucky with the precision — so the
//! wire/checkpoint/cache layer must funnel every float through the sanctioned
//! 16-hex-digit bit codec (`encode_f64` / `to_bits`).
//!
//! Fires in the wire, checkpoint, and cache modules of the pipeline crate on
//! any formatting macro whose argument is float-like (a float literal, an
//! `as f64` cast, a `.re`/`.im`/`.norm()` projection, or a binding declared
//! `f64`/`f32`/`Complex64`) under a Display/float format spec.  Hex (`{:x}`),
//! binary/octal, and Debug specs are exempt, as is any argument routed
//! through `to_bits` or an `encode_*` codec function.

use super::Finding;
use crate::analysis::SourceFile;
use crate::lexer::{Token, TokenKind};

/// File stems patrolled by D001 (within the pipeline crate).
const SCOPE_STEMS: &[&str] = &["wire", "checkpoint", "cache"];

/// Formatting macros whose output can land on a wire/checkpoint path.
const FORMAT_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Argument markers that prove the float was routed through the bit codec.
const SANCTIONED: &[&str] = &[
    "to_bits",
    "encode_f64",
    "encode_finite_f64",
    "encode_complex",
];

/// Runs D001 over the file set.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.crate_name() != "pipeline" || !SCOPE_STEMS.contains(&file.stem()) {
            continue;
        }
        // Token-exact matching: `encode_f64` must not read as type `f64`.
        let float_bindings = file.bindings_matching(|ty| {
            ty.split_whitespace()
                .any(|w| matches!(w, "f64" | "f32" | "Complex64"))
        });
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident
                || !FORMAT_MACROS.contains(&toks[i].text.as_str())
                || !toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct("("))
                || file.in_test_code(i)
            {
                continue;
            }
            let close = file.matching_close_paren(i + 2);
            let args = split_args(&toks[i + 3..close]);
            // write!/writeln! lead with the writer expression.
            let skip = usize::from(matches!(toks[i].text.as_str(), "write" | "writeln"));
            let Some(fmt_tok) = args.get(skip).and_then(|a| a.first()) else {
                continue;
            };
            if fmt_tok.kind != TokenKind::Str {
                continue;
            }
            let value_args = &args[skip + 1..];
            let mut positional = 0usize;
            for ph in placeholders(&fmt_tok.text) {
                if spec_is_bit_or_debug(&ph.spec) {
                    if ph.name.is_none() {
                        positional += 1;
                    }
                    continue;
                }
                let flagged = match &ph.name {
                    // `{ident}` inline capture: float iff the binding is.
                    Some(name) => float_bindings.contains(name),
                    None => {
                        let arg = value_args.get(positional);
                        positional += 1;
                        arg.is_some_and(|a| arg_is_unsanctioned_float(a, &float_bindings))
                    }
                };
                if flagged {
                    findings.push(Finding {
                        rule: "D001",
                        path: file.path.clone(),
                        line: toks[i].line,
                        message: format!(
                            "float formatted as decimal text in `{}!`; wire/checkpoint values \
                             must use the 16-hex-digit bit codec (encode_f64 / to_bits)",
                            toks[i].text
                        ),
                    });
                    break; // one finding per macro call is enough
                }
            }
        }
    }
    findings
}

/// True when the argument expression is float-like and not routed through the
/// bit codec.
fn arg_is_unsanctioned_float(arg: &[&Token], float_bindings: &[String]) -> bool {
    if arg
        .iter()
        .any(|t| t.kind == TokenKind::Ident && SANCTIONED.contains(&t.text.as_str()))
    {
        return false;
    }
    for (j, t) in arg.iter().enumerate() {
        match t.kind {
            TokenKind::Float => return true,
            TokenKind::Ident => {
                if float_bindings.contains(&t.text) {
                    // `values.len()` / `values.is_empty()` on a float-typed
                    // collection formats a count, not a float.
                    let integral_projection = arg.get(j + 1).is_some_and(|d| d.is_punct("."))
                        && arg
                            .get(j + 2)
                            .is_some_and(|m| matches!(m.text.as_str(), "len" | "is_empty"));
                    if !integral_projection {
                        return true;
                    }
                }
                // `expr as f64` casts and `.re`/`.im`/`.norm()` projections.
                if (t.text == "f64" || t.text == "f32") && j >= 1 && arg[j - 1].is_ident("as") {
                    return true;
                }
                if matches!(t.text.as_str(), "re" | "im" | "norm")
                    && j >= 1
                    && arg[j - 1].is_punct(".")
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Splits macro argument tokens on top-level commas.
fn split_args(tokens: &[Token]) -> Vec<Vec<&Token>> {
    let mut args = vec![Vec::new()];
    let mut depth = 0i32;
    for t in tokens {
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth -= 1,
            "," if t.kind == TokenKind::Punct && depth == 0 => {
                args.push(Vec::new());
                continue;
            }
            _ => {}
        }
        args.last_mut().expect("always one arg bucket").push(t);
    }
    if args.len() == 1 && args[0].is_empty() {
        args.clear();
    }
    args
}

/// One `{…}` placeholder in a format string.
struct Placeholder {
    /// Inline-captured name (`{value}`) if present.
    name: Option<String>,
    /// Format spec after the `:` (empty for plain `{}`).
    spec: String,
}

/// Extracts placeholders from a format-string literal (quotes included).
fn placeholders(literal: &str) -> Vec<Placeholder> {
    let inner = literal.trim_start_matches('r').trim_matches(['#', '"']);
    let chars: Vec<char> = inner.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2; // escaped brace
                continue;
            }
            let mut body = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '}' {
                body.push(chars[i]);
                i += 1;
            }
            let (name_part, spec) = match body.split_once(':') {
                Some((n, s)) => (n, s.to_string()),
                None => (body.as_str(), String::new()),
            };
            let name = if !name_part.is_empty()
                && name_part.chars().all(|c| c == '_' || c.is_alphanumeric())
                && !name_part.chars().all(|c| c.is_ascii_digit())
            {
                Some(name_part.to_string())
            } else {
                None
            };
            out.push(Placeholder { name, spec });
        }
        i += 1;
    }
    out
}

/// True for specs that cannot produce rounded decimal float text: hex,
/// binary, octal, and Debug.
fn spec_is_bit_or_debug(spec: &str) -> bool {
    spec.ends_with(['x', 'X', 'b', 'o', '?'])
}

impl SourceFile {
    /// Finds the index of the `)` matching the `(` at `open` (falls back to
    /// `tokens.len()` when unterminated).
    pub fn matching_close_paren(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            if self.tokens[i].is_punct("(") {
                depth += 1;
            } else if self.tokens[i].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len()
    }
}
