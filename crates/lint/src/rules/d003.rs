//! D003 — wall clocks and OS entropy never influence result values.
//!
//! A passage-time analysis is a pure function of (model, measure, parameters).
//! `SystemTime::now()` / `Instant::now()` readings or OS-seeded randomness
//! feeding anything that reaches a result value makes runs unreproducible —
//! the simulator must draw from an explicitly seeded generator, and planners
//! must never key decisions off the clock.  Wall-clock *provenance* (an
//! elapsed-time field recorded next to a result, never inside it) is a
//! legitimate exception, recorded per call site in `lint.toml`.
//!
//! Fires on `SystemTime::now`, `Instant::now`, and entropy-seeded generator
//! constructors (`from_entropy`, `thread_rng`, `OsRng`, `from_os_rng`,
//! `getrandom`) in non-test code of the computation and pipeline crates.
//! `transport.rs` is out of scope: socket timeout bookkeeping is genuinely
//! about wall time and never touches values.

use super::Finding;
use crate::analysis::SourceFile;
use crate::lexer::TokenKind;

/// Crates whose code computes or transports result values.
const SCOPE_CRATES: &[&str] = &[
    "core",
    "laplace",
    "sparse",
    "numeric",
    "distributions",
    "dnamaca",
    "voting",
    "smspn",
    "sim",
    "pipeline",
    "suite",
];

/// File stems exempt wholesale: timeout plumbing, not value computation.
const EXEMPT_STEMS: &[&str] = &["transport"];

/// Entropy-seeded generator constructors.
const ENTROPY_CALLS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "OsRng",
    "from_os_rng",
    "getrandom",
];

/// Runs D003 over the file set.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !SCOPE_CRATES.contains(&file.crate_name()) || EXEMPT_STEMS.contains(&file.stem()) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            // `SystemTime::now` / `Instant::now`.
            let clock = matches!(toks[i].text.as_str(), "SystemTime" | "Instant")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(":"))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
            // Entropy-seeded construction (either a call or a unit-struct
            // RNG handed to a seeding API).
            let entropy = ENTROPY_CALLS.contains(&toks[i].text.as_str());
            if !clock && !entropy {
                continue;
            }
            let what = if clock {
                format!("{}::now()", toks[i].text)
            } else {
                toks[i].text.clone()
            };
            findings.push(Finding {
                rule: "D003",
                path: file.path.clone(),
                line: toks[i].line,
                message: format!(
                    "`{what}` in result-bearing code; results must be a pure function of \
                     (model, measure, parameters) — seed RNGs explicitly and keep wall-clock \
                     readings out of values (provenance-only readings go in lint.toml)"
                ),
            });
        }
    }
    findings
}
