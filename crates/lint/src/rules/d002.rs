//! D002 — nothing ordered iterates a `HashMap`/`HashSet`.
//!
//! `std`'s hash containers use a per-process random seed: two runs (or two
//! workers) iterating the same logical map visit entries in different orders.
//! Anywhere that order becomes observable — a serialized wire frame, a
//! checkpoint file, the work-queue dispatch order — the run stops being
//! reproducible even though every individual value is bit-exact.  Ordered
//! sinks must iterate `BTreeMap`/`BTreeSet` (or sort first); hash containers
//! stay fine for pure keyed lookup.
//!
//! Fires in the serialization and scheduling modules (wire, checkpoint,
//! cache, master, work, batch, splan, server, client) on iteration over a binding declared
//! as (or initialized from) `HashMap`/`HashSet`: explicit `.iter()`,
//! `.keys()`, `.values()`, `.drain()`, `.into_iter()` chains and `for … in`
//! loops alike.

use super::Finding;
use crate::analysis::SourceFile;
use crate::lexer::TokenKind;

/// File stems patrolled by D002 (the modules whose iteration order reaches
/// wire frames, checkpoint files, or the dispatch queue).
const SCOPE_STEMS: &[&str] = &[
    "wire",
    "checkpoint",
    "cache",
    "master",
    "work",
    "batch",
    "splan",
    "server",
    "client",
    "shard",
    "transport",
    "engine",
];

/// Iterator-producing methods on maps/sets.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Runs D002 over the file set.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !SCOPE_STEMS.contains(&file.stem()) {
            continue;
        }
        let hash_bindings = file.bindings_matching(|ty| {
            ty.split_whitespace()
                .any(|w| matches!(w, "HashMap" | "HashSet"))
        });
        if hash_bindings.is_empty() {
            continue;
        }
        let toks = &file.tokens;
        let mut reported_lines = Vec::new();
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident
                || !hash_bindings.contains(&toks[i].text)
                || file.in_test_code(i)
            {
                continue;
            }
            // Method-chain form: within a short window after the binding,
            // before the expression ends, an iterator-producing method call
            // (`shards.read().iter()`, `map.keys()`, …).
            let mut iterated = false;
            let mut j = i + 1;
            while j + 2 < toks.len() && j < i + 12 {
                if matches!(toks[j].text.as_str(), ";" | "," | "=" | "{") {
                    break;
                }
                if toks[j].is_punct(".")
                    && toks[j + 1].kind == TokenKind::Ident
                    && ITER_METHODS.contains(&toks[j + 1].text.as_str())
                    && toks[j + 2].is_punct("(")
                {
                    iterated = true;
                    break;
                }
                j += 1;
            }
            // `for … in [&]binding {` form: the binding appears between an
            // `in` keyword and the loop body's `{`.
            if !iterated && i >= 1 {
                let mut k = i;
                while k > 0 && i - k < 8 {
                    k -= 1;
                    if toks[k].is_ident("in") {
                        let mut m = i + 1;
                        let mut direct = true;
                        while m < toks.len() && !toks[m].is_punct("{") {
                            if toks[m].is_punct(";") || toks[m].is_punct(")") {
                                direct = false;
                                break;
                            }
                            m += 1;
                        }
                        iterated = direct && m < toks.len();
                        break;
                    }
                    if matches!(toks[k].text.as_str(), ";" | "{" | "}") {
                        break;
                    }
                }
            }
            if iterated && !reported_lines.contains(&toks[i].line) {
                reported_lines.push(toks[i].line);
                findings.push(Finding {
                    rule: "D002",
                    path: file.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "iteration over hash container `{}` in an order-sensitive module; \
                         use BTreeMap/BTreeSet (or sort) so wire frames, checkpoints, and \
                         dispatch order are reproducible",
                        toks[i].text
                    ),
                });
            }
        }
    }
    findings
}
