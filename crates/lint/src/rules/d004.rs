//! D004 — code reachable from untrusted-input decoders never panics.
//!
//! The wire decoder parses bytes from a TCP peer; the checkpoint loader
//! parses a file that may be truncated, hand-edited, or written by another
//! version.  A stray `.unwrap()` on those paths turns one malformed record
//! into a dead worker (or a master that loses the whole run), when the
//! protocol is designed to *skip* or *reject* bad input via typed errors.
//!
//! The rule builds a name-based call graph over the pipeline crate, seeds it
//! with the decode roots (`decode*` in `wire.rs`, `server.rs` and
//! `client.rs`, `load_checkpoint*` in `checkpoint.rs`, `read_frame`
//! anywhere), walks reachability, and flags
//! every `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` inside a reachable non-test function.

use super::Finding;
use crate::analysis::{FnDef, SourceFile};
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// The crate whose decoders consume untrusted input.
const SCOPE_CRATE: &str = "pipeline";

/// Runs D004 over the file set.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    // Gather every non-test fn in the pipeline crate, with its calls.
    struct Node<'a> {
        file: &'a SourceFile,
        def: FnDef,
        calls: Vec<String>,
    }
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for file in files {
        if file.crate_name() != SCOPE_CRATE {
            continue;
        }
        for def in file.functions() {
            if def.in_test {
                continue;
            }
            let calls = file.calls_in(def.tokens);
            nodes.push(Node { file, def, calls });
        }
    }

    // Roots: the functions that first touch untrusted bytes.
    let is_root = |file: &SourceFile, name: &str| {
        (file.stem() == "wire" && name.starts_with("decode"))
            || (file.stem() == "checkpoint" && name.starts_with("load_checkpoint"))
            || ((file.stem() == "server" || file.stem() == "client") && name.starts_with("decode"))
            || (file.stem() == "shard" && (name.starts_with("recv") || name == "serve_slices"))
            || name == "read_frame"
    };

    // Name-indexed reachability: calling `foo` may land in any `fn foo` in
    // the crate (method receivers are not resolved — conservative by design).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.def.name.as_str()).or_default().push(i);
    }
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| is_root(n.file, &n.def.name))
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = frontier.pop() {
        if !reachable.insert(i) {
            continue;
        }
        for call in &nodes[i].calls {
            if let Some(targets) = by_name.get(call.as_str()) {
                frontier.extend(targets.iter().copied());
            }
        }
    }

    // Flag panic sites inside reachable functions.
    let mut findings = Vec::new();
    for &i in &reachable {
        let n = &nodes[i];
        let toks = &n.file.tokens;
        for j in n.def.tokens.0..n.def.tokens.1.min(toks.len()) {
            if toks[j].kind != TokenKind::Ident {
                continue;
            }
            let name = toks[j].text.as_str();
            let method_panic = matches!(name, "unwrap" | "expect")
                && j >= 1
                && toks[j - 1].is_punct(".")
                && toks.get(j + 1).is_some_and(|t| t.is_punct("("));
            let macro_panic = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(j + 1).is_some_and(|t| t.is_punct("!"));
            if method_panic || macro_panic {
                let rendered = if method_panic {
                    format!(".{name}()")
                } else {
                    format!("{name}!")
                };
                findings.push(Finding {
                    rule: "D004",
                    path: n.file.path.clone(),
                    line: toks[j].line,
                    message: format!(
                        "`{rendered}` in `{}`, which is reachable from the untrusted-input \
                         decoders; malformed wire/checkpoint data must surface as a typed \
                         error, never a panic",
                        n.def.name
                    ),
                });
            }
        }
    }
    findings
}
