//! A lightweight hand-rolled Rust lexer.
//!
//! The analyzer needs exactly enough lexical structure to reason about code
//! *soundly at the token level*: comments and string literals must never be
//! mistaken for code (a doc comment mentioning `unwrap()` is not a finding),
//! and every token must carry its source line for reporting.  A full parser
//! (`syn`) is unavailable — the build container has no crates.io access — and
//! unnecessary: every rule in [`crate::rules`] is defined over token patterns
//! plus brace structure, in the tradition of the dnamaca scanner.
//!
//! Handled: identifiers and keywords, lifetimes vs. char literals, integer and
//! float literals (hex/octal/binary, underscores, exponents, suffixes), plain
//! strings with escapes, raw strings `r"…"`/`r#"…"#` with any number of
//! hashes, byte and raw byte strings, line comments, and **nested** block
//! comments.  Comments are dropped; everything else becomes a [`Token`].

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `3f64`).
    Float,
    /// A string literal of any flavour (plain, raw, byte); `text` is the raw
    /// source including quotes and hashes.
    Str,
    /// A char literal such as `'x'` or `'\n'`.
    Char,
    /// A single punctuation character (`{`, `.`, `!`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's source text.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Lexes Rust source into tokens, skipping whitespace and comments.
///
/// The lexer is infallible by design: any byte it does not recognise becomes a
/// one-character [`TokenKind::Punct`] token, so analysis degrades gracefully
/// instead of aborting on exotic input.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' if self.raw_string_ahead(1) => self.raw_string(1),
                'b' if self.peek(1) == Some('"') => {
                    self.pos += 1; // consume `b`, then lex the string body
                    self.string();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => self.raw_string(2),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                other => {
                    self.push(TokenKind::Punct, other.to_string());
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String) {
        self.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break; // the newline itself is handled by `run`
            }
            self.pos += 1;
        }
    }

    /// Rust block comments nest: `/* outer /* inner */ still comment */`.
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        // Unterminated comment: consumed to end of input, nothing to emit.
    }

    /// True when the characters starting at `self.pos + offset` begin a raw
    /// string body: zero or more `#` then `"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// Lexes `r"…"`, `r#"…"#`, `br##"…"##`… starting with the `r` (or `b`)
    /// `prefix_len` characters before the hashes.
    fn raw_string(&mut self, prefix_len: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += prefix_len;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated; tolerate
                Some('"') => {
                    // Check for `"` followed by exactly `hashes` hashes.
                    let mut all = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some('#') {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        });
    }

    fn string(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    // Any escape, including \" and \\ — and the line
                    // continuation \<newline>, whose newline still counts.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())]
            .iter()
            .collect();
        self.tokens.push(Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        });
    }

    /// Disambiguates `'a` (lifetime) from `'x'`/`'\n'` (char literal): a
    /// lifetime is `'` + ident with **no** closing quote right after.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        if let Some(c) = self.peek(1) {
            if (c == '_' || c.is_alphabetic()) && self.peek(2) != Some('\'') {
                // Lifetime: consume ' plus the identifier.
                self.pos += 2;
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                self.push(TokenKind::Lifetime, text);
                return;
            }
        }
        // Char literal: ' then either an escape or one char, then '.
        self.pos += 1;
        if self.peek(0) == Some('\\') {
            self.pos += 2;
            // \u{…} escapes run until the closing brace.
            while let Some(c) = self.peek(0) {
                if c == '\'' {
                    break;
                }
                self.pos += 1;
            }
        } else if self.peek(0).is_some() {
            self.pos += 1;
        }
        if self.peek(0) == Some('\'') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Char, text);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.pos += 2;
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        } else {
            self.digits();
            // A fractional part only if `.` is followed by a digit — leaves
            // ranges (`0..n`), tuple indexing (`t.0`) and method calls on
            // literals (`1.max(2)`) alone.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += 1;
                self.digits();
            }
            // Exponent: e/E [+-] digits.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let mut i = 1;
                if matches!(self.peek(1), Some('+' | '-')) {
                    i = 2;
                }
                if self.peek(i).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    self.pos += i;
                    self.digits();
                }
            }
        }
        // Type suffix (f64, u32, usize, …) — consumed into the token.
        let suffix_start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix.starts_with('f') {
            is_float = true;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(
            if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            text,
        );
    }

    fn digits(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokenKind::Ident, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() {}");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "fn".to_string()),
                (TokenKind::Ident, "main".to_string()),
                (TokenKind::Punct, "(".to_string()),
                (TokenKind::Punct, ")".to_string()),
                (TokenKind::Punct, "{".to_string()),
                (TokenKind::Punct, "}".to_string()),
            ]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = kinds("a // unwrap() HashMap \"str\nb");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".to_string()),
                (TokenKind::Ident, "b".to_string()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        // The inner /* */ must not terminate the outer comment.
        let toks = kinds("a /* outer /* inner */ still a comment */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".to_string()),
                (TokenKind::Ident, "b".to_string()),
            ]
        );
        // Newlines inside comments still advance the line counter.
        let toks = lex("/* one\ntwo /* three\n*/ four\n*/ x");
        assert_eq!(toks[0].text, "x");
        assert_eq!(toks[0].line, 4);
    }

    #[test]
    fn plain_strings_with_escapes() {
        let toks = lex(r#"let s = "a \"quoted\" \\ thing";"#);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, r#""a \"quoted\" \\ thing""#);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"let s = r#"contains "quotes" and \ no escapes"#;"###);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, r###"r#"contains "quotes" and \ no escapes"#"###);
        // Zero-hash raw string.
        let toks = lex(r#"r"plain raw""#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, r#"r"plain raw""#);
        // Two-hash raw string containing a one-hash terminator-lookalike.
        let toks = lex(r####"r##"inner "# not the end"##"####);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Str);
    }

    #[test]
    fn raw_string_contents_are_not_code() {
        // `unwrap()` inside a raw string must not produce an Ident token.
        let toks = lex(r##"let s = r#"x.unwrap() /* HashMap "#;"##);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r##"b"bytes" br#"raw bytes"# x"##);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert!(toks[2].is_ident("x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "'x'");
        assert_eq!(chars[1].text, "'\\n'");
    }

    #[test]
    fn numeric_literals() {
        let toks = kinds("1 1.5 1e3 2E-4 0xff_u32 1_000 3f64 7usize 1.0f32");
        let kinds_only: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds_only,
            vec![
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Float,
            ]
        );
    }

    #[test]
    fn ranges_and_tuple_access_are_not_floats() {
        let toks = kinds("0..n 1..=2 t.0 1.max(2)");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn string_line_continuation_counts_its_newline() {
        // `\` at end of line inside a string elides the newline from the
        // *value*, but the source line counter must still advance.
        let toks = lex("let s = \"one \\\n    two\";\nafter");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn unrecognised_bytes_degrade_to_punct() {
        let toks = kinds("a § b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::Punct);
    }
}
