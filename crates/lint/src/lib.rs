//! `smp-lint` — a repo-specific static analyzer for the semi-Markov
//! passage-time workspace.
//!
//! Generic linters can say a `HashMap` iteration exists; only this workspace
//! knows that iteration order feeding a checkpoint file breaks the
//! distributed pipeline's bit-exact restart guarantee.  `smp-lint` encodes
//! those *repo-specific determinism invariants* as five rules (see
//! [`rules`]), built on a hand-rolled lexer ([`lexer`]) and token-level
//! structure pass ([`analysis`]) — the build container has no crates.io
//! access, so there is deliberately no `syn`/`proc-macro2` in sight.
//!
//! Invocation:
//!
//! ```text
//! cargo run -p smp-lint            # report findings
//! cargo run -p smp-lint -- --deny  # exit nonzero on any finding (CI mode)
//! ```
//!
//! Findings render as `file:line: [CODE] message`.  Intentional exceptions
//! live in the workspace-root `lint.toml` (see [`config`]), each with a
//! mandatory recorded reason.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod config;
pub mod lexer;
pub mod rules;

use analysis::SourceFile;
use config::Config;
use rules::Finding;
use std::path::{Path, PathBuf};

/// Analyzes in-memory `(path, source)` pairs and applies the allowlist.
///
/// This is the testable core: fixtures hand it synthetic paths such as
/// `crates/pipeline/src/wire.rs` so the module-scoping logic engages without
/// touching the real tree.
pub fn analyze_files(files: &[(String, String)], config: &Config) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::parse(path, src))
        .collect();
    rules::run_all(&parsed)
        .into_iter()
        .filter(|f| {
            let line_text = parsed
                .iter()
                .find(|p| p.path == f.path)
                .map(|p| p.line_text(f.line).to_string())
                .unwrap_or_default();
            !config.allows(f.rule, &f.path, &line_text)
        })
        .collect()
}

/// Result of analyzing a workspace on disk.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Findings that survived the allowlist, sorted by path/line/rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Walks a workspace root (`src/` plus every `crates/*/src/`), lints all Rust
/// sources, and applies the root `lint.toml` if present.
///
/// Skipped subtrees: `crates/lint` (its fixtures and rule-pattern strings are
/// violations *by construction*), `vendor/` (external stand-ins), and
/// `target/`.
pub fn analyze_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let config = load_config(root)?;
    let mut sources = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "lint"))
            .collect();
        crate_dirs.sort();
        roots.extend(crate_dirs.into_iter().map(|p| p.join("src")));
    }
    for dir in roots {
        collect_rs_files(&dir, &mut sources)?;
    }
    sources.sort();
    let mut files = Vec::new();
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} is outside the workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push((rel, text));
    }
    let files_scanned = files.len();
    Ok(WorkspaceReport {
        findings: analyze_files(&files, &config),
        files_scanned,
    })
}

/// Loads `<root>/lint.toml`, or an empty config when absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Recursively collects `.rs` files under `dir` (missing dirs are fine).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_suppresses_matching_finding() {
        let src = "fn f() { let started = Instant::now(); }\n";
        let files = vec![("crates/pipeline/src/engine.rs".to_string(), src.to_string())];
        // Without an allowlist the D003 finding fires…
        let found = analyze_files(&files, &Config::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "D003");
        // …and the lint.toml entry silences exactly it.
        let cfg = Config::parse(
            r#"
[[allow]]
rule = "D003"
file = "crates/pipeline/src/engine.rs"
context = "let started = Instant::now"
reason = "elapsed-time provenance only"
"#,
        )
        .unwrap();
        assert!(analyze_files(&files, &cfg).is_empty());
        // A different line in the same file is NOT covered.
        let other = vec![(
            "crates/pipeline/src/engine.rs".to_string(),
            "fn g() { let t = SystemTime::now(); }\n".to_string(),
        )];
        assert_eq!(analyze_files(&other, &cfg).len(), 1);
    }

    #[test]
    fn finding_renders_canonical_form() {
        let f = Finding {
            rule: "D001",
            path: "crates/pipeline/src/wire.rs".to_string(),
            line: 42,
            message: "msg".to_string(),
        };
        assert_eq!(f.render(), "crates/pipeline/src/wire.rs:42: [D001] msg");
    }
}
