//! The `smp-lint` binary: lint the workspace's determinism invariants.
//!
//! ```text
//! cargo run -p smp-lint                 # report findings, exit 0
//! cargo run -p smp-lint -- --deny       # exit 1 when findings remain (CI)
//! cargo run -p smp-lint -- --root DIR   # lint a tree other than cwd
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("smp-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "smp-lint: static analyzer for the workspace's determinism invariants\n\
                     \n\
                     usage: smp-lint [--deny] [--root DIR]\n\
                     \n\
                     rules: D001 float-as-text on wire paths, D002 hash iteration feeding\n\
                     ordered sinks, D003 wall-clock/entropy in results, D004 panics on\n\
                     untrusted-decode paths, D005 lock guard across blocking I/O.\n\
                     exceptions live in <root>/lint.toml ([[allow]] entries with reasons)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("smp-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match smp_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    if report.findings.is_empty() {
        eprintln!(
            "smp-lint: {} files scanned, no findings",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "smp-lint: {} files scanned, {} finding(s)",
            report.files_scanned,
            report.findings.len()
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
