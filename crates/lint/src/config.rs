//! The `lint.toml` allowlist.
//!
//! The workspace root may carry a `lint.toml` with `[[allow]]` tables:
//!
//! ```toml
//! [[allow]]
//! rule = "D003"
//! file = "crates/pipeline/src/engine.rs"
//! context = "let started = Instant::now"
//! reason = "wall-clock measures elapsed time for provenance, not results"
//! ```
//!
//! A finding is suppressed when an entry's `rule` matches its code, `file`
//! matches its path, and the finding's source line contains `context` as a
//! substring.  `reason` is mandatory: an allowlist entry without a recorded
//! justification is itself a config error.
//!
//! The parser below is a deliberately tiny TOML subset (only `[[allow]]`
//! array-of-table headers and `key = "string"` pairs, `#` comments) — the
//! container has no crates.io access, and the full grammar buys nothing here.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule code the entry suppresses (e.g. `D003`).
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub file: String,
    /// Substring the offending source line must contain.
    pub context: String,
    /// Human justification.  Required.
    pub reason: String,
}

/// Parsed allowlist configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All `[[allow]]` entries, in file order.
    pub allow: Vec<AllowEntry>,
}

/// A malformed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the `lint.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut entries: Vec<(usize, Vec<(String, String)>)> = Vec::new();
        let mut in_allow = false;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                entries.push((line_no, Vec::new()));
                in_allow = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("unsupported table header {line:?} (only [[allow]])"),
                });
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = \"value\"`, got {line:?}"),
                });
            };
            if !in_allow {
                return Err(ConfigError {
                    line: line_no,
                    message: "key outside any [[allow]] table".to_string(),
                });
            }
            let key = line[..eq].trim().to_string();
            let value = parse_string(line[eq + 1..].trim()).ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?;
            if !matches!(key.as_str(), "rule" | "file" | "context" | "reason") {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("unknown key `{key}` (expected rule/file/context/reason)"),
                });
            }
            entries
                .last_mut()
                .expect("in_allow implies at least one entry")
                .1
                .push((key, value));
        }

        let mut allow = Vec::new();
        for (line, pairs) in entries {
            let get = |k: &str| {
                pairs
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            let require = |k: &str| {
                get(k).ok_or_else(|| ConfigError {
                    line,
                    message: format!("[[allow]] entry missing required key `{k}`"),
                })
            };
            let entry = AllowEntry {
                rule: require("rule")?,
                file: require("file")?,
                context: require("context")?,
                reason: require("reason")?,
            };
            if entry.reason.trim().is_empty() {
                return Err(ConfigError {
                    line,
                    message: "[[allow]] entry has an empty `reason`".to_string(),
                });
            }
            allow.push(entry);
        }
        Ok(Config { allow })
    }

    /// Serializes back to the same subset `parse` accepts (round-trip tested).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for e in &self.allow {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = {}\n", quote(&e.rule)));
            out.push_str(&format!("file = {}\n", quote(&e.file)));
            out.push_str(&format!("context = {}\n", quote(&e.context)));
            out.push_str(&format!("reason = {}\n", quote(&e.reason)));
            out.push('\n');
        }
        out
    }

    /// True when a finding at (`rule`, `file`) whose source line is
    /// `line_text` is suppressed by some entry.
    pub fn allows(&self, rule: &str, file: &str, line_text: &str) -> bool {
        self.allow
            .iter()
            .any(|e| e.rule == rule && e.file == file && line_text.contains(&e.context))
    }
}

/// Strips a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses one double-quoted TOML basic string with `\"` / `\\` escapes.
fn parse_string(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return None; // unescaped quote: the strip_suffix matched too early
        }
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let cfg = Config::parse(
            r#"
# workspace allowlist
[[allow]]
rule = "D003"            # wall-clock timing
file = "crates/pipeline/src/engine.rs"
context = "let started = Instant::now"
reason = "provenance wall field, not a result value"
"#,
        )
        .unwrap();
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "D003");
        assert!(cfg.allows(
            "D003",
            "crates/pipeline/src/engine.rs",
            "let started = Instant::now();"
        ));
        assert!(!cfg.allows(
            "D003",
            "crates/pipeline/src/engine.rs",
            "let t = SystemTime::now();"
        ));
        assert!(!cfg.allows(
            "D001",
            "crates/pipeline/src/engine.rs",
            "let started = Instant::now();"
        ));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let err = Config::parse("[[allow]]\nrule = \"D001\"\nfile = \"a.rs\"\ncontext = \"x\"\n")
            .unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
        let err = Config::parse(
            "[[allow]]\nrule = \"D001\"\nfile = \"a.rs\"\ncontext = \"x\"\nreason = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.message.contains("empty `reason`"), "{err}");
    }

    #[test]
    fn unknown_keys_and_tables_are_rejected() {
        assert!(Config::parse("[deny]\n").is_err());
        assert!(Config::parse("[[allow]]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("rule = \"D001\"\n").is_err());
        assert!(Config::parse("[[allow]]\nrule = unquoted\n").is_err());
    }

    #[test]
    fn string_escapes_and_hash_in_string() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"D001\"\nfile = \"a.rs\"\ncontext = \"say \\\"#{}\\\"\"\nreason = \"r\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allow[0].context, "say \"#{}\"");
    }

    #[test]
    fn roundtrip_parse_serialize_parse() {
        let cfg = Config {
            allow: vec![
                AllowEntry {
                    rule: "D003".into(),
                    file: "crates/pipeline/src/worker.rs".into(),
                    context: "let started = Instant::now".into(),
                    reason: "elapsed-time provenance".into(),
                },
                AllowEntry {
                    rule: "D001".into(),
                    file: "crates/cli/src/lib.rs".into(),
                    context: "quote \" and slash \\".into(),
                    reason: "escape\nheavy\tentry".into(),
                },
            ],
        };
        let text = cfg.to_toml();
        let reparsed = Config::parse(&text).unwrap();
        assert_eq!(reparsed, cfg);
        // And the serialization is stable across one more cycle.
        assert_eq!(reparsed.to_toml(), text);
    }
}
