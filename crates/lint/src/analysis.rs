//! Shared token-level analysis machinery used by every rule.
//!
//! A [`SourceFile`] wraps a lexed file with the structure rules need:
//!
//! * brace depth per token (scope reasoning for lock guards and fn bodies),
//! * `#[cfg(test)] mod … { … }` extents (test code is exempt from all rules —
//!   a test unwrapping a decoder result is the *point* of the test),
//! * function extents (`fn name … { body }`) with their call sites, feeding
//!   the D004 reachability pass,
//! * a lexical table of bindings whose type is float-like or a hash
//!   collection, feeding D001/D002.

use crate::lexer::{lex, Token, TokenKind};

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (e.g.
    /// `crates/pipeline/src/wire.rs`).
    pub path: String,
    /// All code tokens (comments/whitespace already dropped).
    pub tokens: Vec<Token>,
    /// Brace depth *before* each token (`{` raises depth for the tokens after
    /// it, `}` lowers it for itself and the tokens after it).
    pub depth: Vec<u32>,
    /// Token ranges `[start, end)` covered by `#[cfg(test)]`-gated items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Source lines, for reporting and allowlist context matching.
    pub lines: Vec<String>,
}

/// A function definition found in a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the whole definition (signature + body).
    pub tokens: (usize, usize),
    /// True when the definition sits inside a `#[cfg(test)]` range.
    pub in_test: bool,
}

impl SourceFile {
    /// Lexes and structures one file.  `path` should be workspace-relative.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let tokens = lex(source);
        let mut depth = Vec::with_capacity(tokens.len());
        let mut d: u32 = 0;
        for t in &tokens {
            if t.is_punct("}") {
                d = d.saturating_sub(1);
            }
            depth.push(d);
            if t.is_punct("{") {
                d += 1;
            }
        }
        let test_ranges = find_test_ranges(&tokens, &depth);
        SourceFile {
            path: path.replace('\\', "/"),
            tokens,
            depth,
            test_ranges,
            lines: source.lines().map(str::to_string).collect(),
        }
    }

    /// The file stem (`wire` for `crates/pipeline/src/wire.rs`).
    pub fn stem(&self) -> &str {
        self.path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("")
    }

    /// The crate directory name (`pipeline` for `crates/pipeline/src/…`;
    /// the umbrella `src/lib.rs` reports `suite`).
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or(""),
            _ => "suite",
        }
    }

    /// True when token `i` lies inside a `#[cfg(test)]` range.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Finds the token index of the `}` closing the block opened by the `{`
    /// at token index `open` (returns `tokens.len()` when unterminated).
    pub fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            if self.tokens[i].is_punct("{") {
                depth += 1;
            } else if self.tokens[i].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len()
    }

    /// All `fn` definitions in the file, with body extents.
    pub fn functions(&self) -> Vec<FnDef> {
        let mut defs = Vec::new();
        let toks = &self.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue; // `fn` in a type position: `Fn()`, `fn()` pointers
            }
            // Walk to the body `{` (or a trait method's `;`), ignoring any
            // braces inside default-argument-free Rust signatures; `where`
            // clauses contain no braces, so the first `{` at angle-depth 0 is
            // the body.
            let mut j = i + 2;
            let mut open = None;
            while let Some(t) = toks.get(j) {
                if t.is_punct(";") {
                    break; // bodyless declaration
                }
                if t.is_punct("{") {
                    open = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let end = self.matching_close(open) + 1;
            defs.push(FnDef {
                name: name_tok.text.clone(),
                line: toks[i].line,
                tokens: (i, end.min(toks.len())),
                in_test: self.in_test_code(i),
            });
        }
        defs
    }

    /// Call sites within a token range: names of functions/methods invoked
    /// (`foo(…)`, `x.foo(…)`, `path::foo(…)`) and of macros (`foo!(…)`).
    pub fn calls_in(&self, range: (usize, usize)) -> Vec<String> {
        let toks = &self.tokens;
        let mut out = Vec::new();
        for i in range.0..range.1.min(toks.len()) {
            if toks[i].kind != TokenKind::Ident {
                continue;
            }
            match toks.get(i + 1) {
                // Not a definition (`fn name(`) and not a tuple-struct
                // pattern — both are harmless to include for reachability.
                Some(t) if t.is_punct("(") && (i == 0 || !toks[i - 1].is_ident("fn")) => {
                    out.push(toks[i].text.clone());
                }
                Some(t)
                    if t.is_punct("!")
                        && toks.get(i + 2).is_some_and(|t| {
                            t.is_punct("(") || t.is_punct("[") || t.is_punct("{")
                        }) =>
                {
                    out.push(format!("{}!", toks[i].text));
                }
                _ => {}
            }
        }
        out
    }

    /// Names bound with a type or initializer matching `type_pred`, collected
    /// from `let` bindings, `fn` parameters, and struct fields.
    ///
    /// This is *lexical* type tracking: `let x: HashMap<…>`, `x: HashMap<…>`
    /// (param/field), and `let x = HashMap::new()` all mark `x`.  It does not
    /// chase aliases or generics — rules built on it are best-effort by
    /// design, with `lint.toml` as the escape hatch.
    pub fn bindings_matching(&self, type_pred: impl Fn(&str) -> bool) -> Vec<String> {
        let toks = &self.tokens;
        let mut names = Vec::new();
        for i in 0..toks.len() {
            if toks[i].kind != TokenKind::Ident || self.in_test_code(i) {
                // Test-code bindings are skipped: rules never report inside
                // `#[cfg(test)]`, and a test-local `let field = …` must not
                // poison the type of a like-named binding in live code.
                continue;
            }
            let name = &toks[i].text;
            // `name : Type` — a parameter, field, or annotated let.
            if toks.get(i + 1).is_some_and(|t| t.is_punct(":"))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(":"))
            {
                // Gather the type text up to a delimiter at the same level.
                let mut ty = String::new();
                let mut angle = 0i32;
                let mut paren = 0i32;
                for t in toks.iter().skip(i + 2).take(24) {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" => paren += 1,
                        ")" if paren == 0 => break,
                        ")" => paren -= 1,
                        "," | ";" | "=" | "{" | "}" if angle <= 0 && paren <= 0 => break,
                        _ => {}
                    }
                    ty.push_str(&t.text);
                    ty.push(' ');
                }
                if type_pred(&ty) {
                    names.push(name.clone());
                    continue;
                }
            }
            // `let name = <init>` / `let mut name = <init>`.
            let is_let_target = (i >= 1 && toks[i - 1].is_ident("let"))
                || (i >= 2 && toks[i - 2].is_ident("let") && toks[i - 1].is_ident("mut"));
            if is_let_target && toks.get(i + 1).is_some_and(|t| t.is_punct("=")) {
                let mut init = String::new();
                for t in toks.iter().skip(i + 2).take(16) {
                    if t.is_punct(";") {
                        break;
                    }
                    init.push_str(&t.text);
                    init.push(' ');
                }
                if type_pred(&init) {
                    names.push(name.clone());
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }
}

/// Locates `#[cfg(test)]`-gated items (`mod tests { … }`, gated fns, …) and
/// returns their token extents.
fn find_test_ranges(tokens: &[Token], _depth: &[u32]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `#` `[` cfg `(` … test … `)` `]`.
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Find the closing `]` of the attribute.
            let mut j = i + 2;
            let mut bracket = 1i32;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while let Some(t) = tokens.get(j) {
                match t.text.as_str() {
                    "[" => bracket += 1,
                    "]" => {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    "cfg" if t.kind == TokenKind::Ident => saw_cfg = true,
                    "test" if t.kind == TokenKind::Ident => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // The attribute gates the next item: skip further attributes,
                // then find the item's opening `{` (or trailing `;`).
                let mut k = j + 1;
                while tokens.get(k).is_some_and(|t| t.is_punct("#")) {
                    // Skip stacked attribute.
                    let mut b = 0i32;
                    while let Some(t) = tokens.get(k) {
                        match t.text.as_str() {
                            "[" => b += 1,
                            "]" => {
                                b -= 1;
                                if b == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                let mut open = None;
                while let Some(t) = tokens.get(k) {
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("{") {
                        open = Some(k);
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = open {
                    // Match braces to the item's end.
                    let mut d = 0i64;
                    let mut end = tokens.len();
                    for (m, t) in tokens.iter().enumerate().skip(open) {
                        if t.is_punct("{") {
                            d += 1;
                        } else if t.is_punct("}") {
                            d -= 1;
                            if d == 0 {
                                end = m + 1;
                                break;
                            }
                        }
                    }
                    ranges.push((i, end));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_and_crates() {
        let f = SourceFile::parse("crates/pipeline/src/wire.rs", "fn a() {}");
        assert_eq!(f.stem(), "wire");
        assert_eq!(f.crate_name(), "pipeline");
        let f = SourceFile::parse("src/lib.rs", "");
        assert_eq!(f.stem(), "lib");
        assert_eq!(f.crate_name(), "suite");
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let src = r#"
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn also_live() {}
"#;
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let fns = f.functions();
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
        assert!(!fns[2].in_test);
    }

    #[test]
    fn cfg_feature_gated_module_is_not_test() {
        let src = r#"
#[cfg(feature = "extra")]
mod gated { fn g() {} }
#[cfg(all(test, unix))]
mod gated_tests { fn t() {} }
"#;
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let fns = f.functions();
        assert!(!fns.iter().find(|d| d.name == "g").unwrap().in_test);
        assert!(fns.iter().find(|d| d.name == "t").unwrap().in_test);
    }

    #[test]
    fn function_extents_and_calls() {
        let src = "fn outer() { inner(x); obj.method(); mac!(1); }\nfn inner(_: u8) {}";
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let fns = f.functions();
        assert_eq!(fns.len(), 2);
        let calls = f.calls_in(fns[0].tokens);
        assert!(calls.contains(&"inner".to_string()));
        assert!(calls.contains(&"method".to_string()));
        assert!(calls.contains(&"mac!".to_string()));
    }

    #[test]
    fn binding_type_tracking() {
        let src = r#"
struct S { shards: RwLock<HashMap<String, V>>, clean: Vec<u8> }
fn f(param: HashSet<u32>, other: usize) {
    let seen = HashMap::new();
    let typed: HashMap<K, V> = source();
    let plain = Vec::new();
}
"#;
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let hashy = f.bindings_matching(|ty| ty.contains("HashMap") || ty.contains("HashSet"));
        assert_eq!(hashy, vec!["param", "seen", "shards", "typed"]);
    }

    #[test]
    fn matching_close_finds_block_end() {
        let f = SourceFile::parse("crates/x/src/a.rs", "fn a() { { b(); } c(); }");
        let open = f.tokens.iter().position(|t| t.is_punct("{")).unwrap();
        let close = f.matching_close(open);
        assert!(f.tokens[close].is_punct("}"));
        assert_eq!(close, f.tokens.len() - 1);
    }
}
