// D002 good fixture — analyzed as crates/pipeline/src/checkpoint.rs.
// Ordered sinks iterate BTree containers; hash containers appear only for
// keyed lookup, where iteration order never becomes observable.

use std::collections::{BTreeMap, HashMap};

pub fn write_records(records: &BTreeMap<u64, u64>, out: &mut String) {
    for (k, v) in records.iter() {
        out.push_str(&format!("{k} {v}\n"));
    }
}

pub fn lookup(cache: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    cache.get(&key).copied()
}

pub fn count(cache: &HashMap<u64, u64>) -> usize {
    cache.len()
}
