// D001 bad fixture — analyzed as crates/pipeline/src/wire.rs.
// Decimal float formatting on a wire path: every one of these rounds.

pub fn encode_result(value: f64) -> String {
    format!("res {}", value)
}

pub fn encode_point(re: f64, im: f64) -> String {
    format!("{re} {im}")
}

pub fn encode_precise(value: f64) -> String {
    format!("{:.17}", value)
}

pub fn encode_cast(raw: u32) -> String {
    format!("{}", raw as f64)
}
