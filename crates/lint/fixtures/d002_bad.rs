// D002 bad fixture — analyzed as crates/pipeline/src/checkpoint.rs.
// Hash-container iteration feeding an ordered sink: record order varies
// run to run.

use std::collections::{HashMap, HashSet};

pub fn write_records(records: &HashMap<u64, u64>, out: &mut String) {
    for (k, v) in records.iter() {
        out.push_str(&format!("{k} {v}\n"));
    }
}

pub fn write_keys(seen: &HashSet<u64>, out: &mut Vec<u64>) {
    out.extend(seen.iter().copied());
}

pub fn dispatch_order(pending: HashSet<u64>) -> Vec<u64> {
    let mut order = Vec::new();
    for id in &pending {
        order.push(*id);
    }
    order
}
