// D005 bad fixture — analyzed as crates/pipeline/src/transport.rs.
// Lock guards held across blocking channel/socket calls: hold time becomes
// coupled to network latency.

pub fn broadcast(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let guard = state.lock();
    for v in guard.clone() {
        tx.send(v);
    }
}

pub fn flush_under_read_lock(shards: &RwLock<Vec<u8>>, stream: &mut TcpStream) {
    let snapshot = shards.read();
    stream.write_all(&snapshot);
    stream.flush();
}
