// D001 good fixture — analyzed as crates/pipeline/src/wire.rs.
// Floats cross the wire as 16-hex-digit bit patterns; everything else that
// gets formatted is integral or already encoded.

pub fn encode_f64(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

pub fn encode_tagged(value: f64) -> String {
    format!("v={}", encode_f64(value))
}

pub fn frame_header(count: usize, tag: &str) -> String {
    format!("chunk n={count} tag={tag}")
}

pub fn debug_dump(value: f64) -> String {
    format!("{:?} {:x}", value.to_bits(), value.to_bits())
}

pub fn frame_counts(entries: Vec<(u32, Complex64)>) -> String {
    // A count projected off a float-typed collection is integral.
    format!("halo n={}", entries.len())
}
