// D005 good fixture — analyzed as crates/pipeline/src/transport.rs.
// Data is copied out of the guard and the guard released (end of scope or
// explicit drop) before anything blocks.

pub fn broadcast(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let snapshot = {
        let guard = state.lock();
        guard.clone()
    };
    for v in snapshot {
        tx.send(v);
    }
}

pub fn flush_after_drop(shards: &RwLock<Vec<u8>>, stream: &mut TcpStream) {
    let snapshot = shards.read();
    let bytes = snapshot.clone();
    drop(snapshot);
    stream.write_all(&bytes);
    stream.flush();
}

pub fn chained_temporary(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    // The guard here is a temporary dropped at the end of the statement.
    let len = state.lock().len();
    tx.send(len as u64);
}
