// D004 good fixture — analyzed as crates/pipeline/src/wire.rs.
// The decode path returns typed options/results for malformed input; the
// only panic in the file sits in a helper *not* reachable from the decoders,
// and test code may unwrap freely.

pub fn decode_frame(line: &str) -> Option<u64> {
    let field = line.split(' ').next()?;
    parse_field(field)
}

fn parse_field(field: &str) -> Option<u64> {
    field.parse().ok()
}

/// Startup-only helper: never called from a decoder, so D004 ignores it.
pub fn startup_config() -> String {
    std::env::var("SMP_CONFIG").unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn decode_roundtrip() {
        assert_eq!(super::decode_frame("42").unwrap(), 42);
    }
}
