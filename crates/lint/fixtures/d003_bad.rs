// D003 bad fixture — analyzed as crates/core/src/passage.rs.
// Wall clocks and OS entropy influencing values: runs stop reproducing.

use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    let now = SystemTime::now();
    let _ = now;
    0
}

pub fn perturb(x: f64) -> f64 {
    let t = Instant::now();
    let _ = t;
    x
}

pub fn random_start() -> u64 {
    let rng = thread_rng();
    let _ = rng;
    0
}
