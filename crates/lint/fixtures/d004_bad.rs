// D004 bad fixture — analyzed as crates/pipeline/src/wire.rs.
// Panics reachable from the untrusted-input decoder: one malformed frame
// kills the worker.

pub fn decode_frame(line: &str) -> u64 {
    let field = line.split(' ').next().unwrap();
    parse_field(field)
}

fn parse_field(field: &str) -> u64 {
    field.parse().expect("bad field")
}

fn reject(reason: &str) -> u64 {
    panic!("malformed frame: {reason}")
}

pub fn decode_tag(line: &str) -> u64 {
    if line.is_empty() {
        return reject("empty");
    }
    0
}
