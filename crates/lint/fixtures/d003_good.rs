// D003 good fixture — analyzed as crates/core/src/passage.rs.
// Results are a pure function of (model, measure, parameters): RNGs are
// explicitly seeded, and the only clock reading sits in test code.

pub fn seeded_stream(seed: u64) -> u64 {
    seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

pub fn passage_value(alpha: f64, beta: f64) -> f64 {
    alpha / (alpha + beta)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_fine() {
        let started = std::time::Instant::now();
        assert!(started.elapsed().as_secs() < 60);
    }
}
