//! Fixture self-tests: every rule fires on its bad fixture and stays quiet
//! on its good twin.
//!
//! Fixtures are analyzed under *synthetic* workspace paths so the rules'
//! module scoping engages (e.g. D001 only patrols the pipeline crate's
//! wire/checkpoint/cache stems) without touching the real tree.

use smp_lint::analyze_files;
use smp_lint::config::Config;

/// Runs the analyzer on one fixture under the given synthetic path.
fn findings(path: &str, source: &str) -> Vec<smp_lint::rules::Finding> {
    analyze_files(
        &[(path.to_string(), source.to_string())],
        &Config::default(),
    )
}

/// Asserts the bad fixture yields findings, all of them `rule`, and the good
/// fixture yields none at all (from any rule).
fn assert_rule(rule: &str, path: &str, bad: &str, good: &str) {
    let bad_findings = findings(path, bad);
    assert!(
        !bad_findings.is_empty(),
        "{rule}: bad fixture produced no findings"
    );
    for f in &bad_findings {
        assert_eq!(
            f.rule,
            rule,
            "{rule}: bad fixture tripped an unexpected rule: {}",
            f.render()
        );
        assert!(f.line > 0, "{rule}: finding without a line: {}", f.render());
        assert_eq!(f.path, path);
    }
    let good_findings = findings(path, good);
    assert!(
        good_findings.is_empty(),
        "{rule}: good fixture is not clean: {:?}",
        good_findings.iter().map(|f| f.render()).collect::<Vec<_>>()
    );
}

#[test]
fn d001_float_to_text_on_wire_paths() {
    let bad = include_str!("../fixtures/d001_bad.rs");
    let good = include_str!("../fixtures/d001_good.rs");
    assert_rule("D001", "crates/pipeline/src/wire.rs", bad, good);
    // Expect one finding per offending fn: plain {}, inline captures,
    // precision spec, and an `as f64` cast.
    assert_eq!(findings("crates/pipeline/src/wire.rs", bad).len(), 4);
    // The same source outside the wire/checkpoint/cache scope is no finding:
    // a CLI table printer may format floats freely.
    assert!(findings("crates/cli/src/lib.rs", bad).is_empty());
}

#[test]
fn d002_hash_iteration_feeding_ordered_sinks() {
    let bad = include_str!("../fixtures/d002_bad.rs");
    let good = include_str!("../fixtures/d002_good.rs");
    assert_rule("D002", "crates/pipeline/src/checkpoint.rs", bad, good);
    assert_eq!(findings("crates/pipeline/src/checkpoint.rs", bad).len(), 3);
}

#[test]
fn d003_wall_clock_and_entropy_in_results() {
    let bad = include_str!("../fixtures/d003_bad.rs");
    let good = include_str!("../fixtures/d003_good.rs");
    assert_rule("D003", "crates/core/src/passage.rs", bad, good);
    assert_eq!(findings("crates/core/src/passage.rs", bad).len(), 3);
    // transport.rs is exempt wholesale: timeouts are genuinely about wall time.
    assert!(findings("crates/pipeline/src/transport.rs", bad).is_empty());
}

#[test]
fn d004_panics_reachable_from_decoders() {
    let bad = include_str!("../fixtures/d004_bad.rs");
    let good = include_str!("../fixtures/d004_good.rs");
    assert_rule("D004", "crates/pipeline/src/wire.rs", bad, good);
    // unwrap in the root, expect in a callee, panic! in a transitive callee.
    assert_eq!(findings("crates/pipeline/src/wire.rs", bad).len(), 3);
}

#[test]
fn d005_guard_across_blocking_calls() {
    let bad = include_str!("../fixtures/d005_bad.rs");
    let good = include_str!("../fixtures/d005_good.rs");
    assert_rule("D005", "crates/pipeline/src/transport.rs", bad, good);
    assert_eq!(findings("crates/pipeline/src/transport.rs", bad).len(), 3);
    // Outside transport.rs/master.rs the same code is not D005's business.
    assert!(findings("crates/pipeline/src/work.rs", bad).is_empty());
}
