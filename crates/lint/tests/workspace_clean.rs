//! Meta-test: the real workspace is clean under every rule.
//!
//! This is the same check CI runs via `cargo run -p smp-lint -- --deny`,
//! kept as a test so `cargo test` alone catches a determinism regression.

use std::path::Path;

#[test]
fn real_workspace_has_no_findings() {
    // crates/lint/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = smp_lint::analyze_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "determinism lints fired on the real workspace:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_entries_all_still_match_something() {
    // A stale lint.toml entry (file renamed, line rewritten) silently
    // broadens what is allowed; require every entry to keep earning its keep.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let config = smp_lint::load_config(root).expect("lint.toml parses");
    for entry in &config.allow {
        let path = root.join(&entry.file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("lint.toml names {} which cannot be read: {e}", entry.file));
        assert!(
            text.lines().any(|l| l.contains(&entry.context)),
            "stale lint.toml entry: no line of {} contains {:?}",
            entry.file,
            entry.context
        );
    }
}
