//! The six voting-system configurations of Table 1 of the paper.

use crate::model::VotingConfig;

/// One row of Table 1: a named configuration and the state count the paper reports
/// for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperSystem {
    /// The paper's system number (0–5).
    pub id: u32,
    /// Sizing parameters `(CC, MM, NN)`.
    pub config: VotingConfig,
    /// The number of states reported in Table 1.
    pub paper_states: u64,
}

impl PaperSystem {
    /// The invariant-based upper bound on the state count implied by the net
    /// structure — Table 1's numbers sit within a few percent of this bound.
    pub fn structural_bound(&self) -> u64 {
        self.config.state_count_upper_bound()
    }
}

/// All six systems of Table 1, in order.
pub fn paper_systems() -> Vec<PaperSystem> {
    vec![
        PaperSystem {
            id: 0,
            config: VotingConfig::new(18, 6, 3),
            paper_states: 2_061,
        },
        PaperSystem {
            id: 1,
            config: VotingConfig::new(60, 25, 4),
            paper_states: 106_540,
        },
        PaperSystem {
            id: 2,
            config: VotingConfig::new(100, 30, 4),
            paper_states: 249_760,
        },
        PaperSystem {
            id: 3,
            config: VotingConfig::new(125, 40, 4),
            paper_states: 541_280,
        },
        PaperSystem {
            id: 4,
            config: VotingConfig::new(150, 40, 5),
            paper_states: 778_850,
        },
        PaperSystem {
            id: 5,
            config: VotingConfig::new(175, 45, 5),
            paper_states: 1_140_050,
        },
    ]
}

/// Looks up one of the paper's systems by its number.
pub fn paper_system(id: u32) -> Option<PaperSystem> {
    paper_systems().into_iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VotingSystem;

    #[test]
    fn six_systems_in_ascending_size() {
        let systems = paper_systems();
        assert_eq!(systems.len(), 6);
        for w in systems.windows(2) {
            assert!(w[1].paper_states > w[0].paper_states);
        }
        assert_eq!(paper_system(3).unwrap().config.polling_units, 40);
        assert!(paper_system(9).is_none());
    }

    #[test]
    fn structural_bound_tracks_paper_counts() {
        // The invariant bound (CC+1)·C(MM+2,2)·(NN+1) reproduces Table 1 to within
        // 4% for every system — evidence that the net structure is the paper's.
        for sys in paper_systems() {
            let bound = sys.structural_bound();
            let paper = sys.paper_states;
            let ratio = bound as f64 / paper as f64;
            assert!(
                (1.0..1.04).contains(&ratio),
                "system {}: bound {bound} vs paper {paper} (ratio {ratio})",
                sys.id
            );
        }
    }

    #[test]
    fn system_0_state_count_close_to_paper() {
        // Generate the smallest configuration end-to-end and compare with Table 1.
        let sys = paper_system(0).unwrap();
        let built = VotingSystem::build(sys.config).unwrap();
        let generated = built.num_states() as u64;
        let paper = sys.paper_states;
        let rel = (generated as f64 - paper as f64).abs() / paper as f64;
        assert!(
            rel < 0.05,
            "system 0: generated {generated} states vs paper {paper} ({}% off)",
            rel * 100.0
        );
    }
}
