//! # smp-voting
//!
//! The distributed voting system model of the paper (Section 5.2, Figs. 1–3).
//!
//! Voting agents queue to vote; polling units receive their votes and register them
//! with every currently operational central voting unit (for fault tolerance and to
//! prevent multiple-vote fraud); polling and central units break down and are
//! repaired — by low-priority self-recovery when only some units have failed, or by
//! a high-priority full repair when *all* units of a kind have failed.
//!
//! The crate provides
//!
//! * [`VotingConfig`] / [`VotingSystem`] — a parameterised builder of the SM-SPN of
//!   Fig. 2 for any `(CC, MM, NN)` (number of voters, polling units, central voting
//!   units), with the firing-time distributions used throughout the experiments
//!   (transition `t5`'s distribution is the one printed in Fig. 3 of the paper; the
//!   remaining distributions are documented substitutions — see the workspace `README.md`);
//! * [`configs`] — the six configurations of Table 1 (2 061 … 1 140 050 states);
//! * [`spec`] — the same model written in the extended DNAmaca language accepted by
//!   `smp-dnamaca`, and a check that both routes produce the same state space;
//! * helpers to express the paper's source/target sets (voters voted, failure
//!   modes) as SMP state sets.

#![forbid(unsafe_code)]

pub mod configs;
pub mod model;
pub mod spec;

pub use configs::{paper_systems, PaperSystem};
pub use model::{VotingConfig, VotingSystem};
