//! The voting model written in the extended DNAmaca language.
//!
//! The paper specifies its model "textually ... in an extended semi-Markovian version
//! of the high-level DNAmaca Markov chain specification language" and prints the
//! definition of transition `t5` (Fig. 3).  [`dnamaca_source`] emits the complete
//! model in that language for any configuration, and the tests check that parsing it
//! through `smp-dnamaca` yields exactly the same state space as the programmatic
//! builder in [`crate::model`].

use crate::model::VotingConfig;

/// Renders the complete DNAmaca-style specification of the voting system for a
/// configuration.  Distribution parameters match [`crate::model::VotingDistributions::default`].
pub fn dnamaca_source(config: VotingConfig) -> String {
    let cc = config.voters;
    let mm = config.polling_units;
    let nn = config.central_units;
    format!(
        r#"% Distributed voting system (Bradley et al., IPDPS 2003, Fig. 2)
\constant{{CC}}{{{cc}}}
\constant{{MM}}{{{mm}}}
\constant{{NN}}{{{nn}}}

\place{{p1}}{{CC}}   % voting agents still to vote
\place{{p2}}{{0}}    % voting agents that have voted
\place{{p3}}{{MM}}   % operational idle polling units
\place{{p4}}{{0}}    % polling units processing a vote
\place{{p5}}{{NN}}   % operational central voting units
\place{{p6}}{{0}}    % failed central voting units
\place{{p7}}{{0}}    % failed polling units

\transition{{t1_vote}}{{
    \condition{{p1 > 0 && p3 > 0}}
    \action{{
        next->p1 = p1 - 1;
        next->p2 = p2 + 1;
        next->p3 = p3 - 1;
        next->p4 = p4 + 1;
    }}
    \weight{{20.0}}
    \priority{{1}}
    \sojourntimeLT{{ return uniformLT(0.2, 1.2, s); }}
}}

\transition{{t2_register}}{{
    \condition{{p4 > 0 && p5 > 0}}
    \action{{
        next->p4 = p4 - 1;
        next->p3 = p3 + 1;
    }}
    \weight{{20.0}}
    \priority{{1}}
    \sojourntimeLT{{ return erlangLT(4.0, 2, s); }}
}}

\transition{{t3_polling_failure}}{{
    \condition{{p3 > 0}}
    \action{{
        next->p3 = p3 - 1;
        next->p7 = p7 + 1;
    }}
    \weight{{0.2}}
    \priority{{1}}
    \sojourntimeLT{{ return expLT(0.02, s); }}
}}

\transition{{t4_central_failure}}{{
    \condition{{p5 > 0}}
    \action{{
        next->p5 = p5 - 1;
        next->p6 = p6 + 1;
    }}
    \weight{{0.1}}
    \priority{{1}}
    \sojourntimeLT{{ return expLT(0.01, s); }}
}}

\transition{{t5_polling_full_repair}}{{
    \condition{{p7 > MM-1}}
    \action{{
        next->p3 = p3 + MM;
        next->p7 = p7 - MM;
    }}
    \weight{{1.0}}
    \priority{{2}}
    \sojourntimeLT{{
        return (0.8 * uniformLT(1.5,10,s)
              + 0.2 * erlangLT(0.001,5,s));
    }}
}}

\transition{{t6_central_full_repair}}{{
    \condition{{p6 > NN-1}}
    \action{{
        next->p5 = p5 + NN;
        next->p6 = p6 - NN;
    }}
    \weight{{1.0}}
    \priority{{2}}
    \sojourntimeLT{{
        return (0.8 * uniformLT(1.5,10,s)
              + 0.2 * erlangLT(0.001,5,s));
    }}
}}

\transition{{t7_polling_self_recovery}}{{
    \condition{{p7 > 0 && p7 < MM}}
    \action{{
        next->p7 = p7 - 1;
        next->p3 = p3 + 1;
    }}
    \weight{{2.0}}
    \priority{{1}}
    \sojourntimeLT{{ return erlangLT(2.0, 2, s); }}
}}

\transition{{t8_central_self_recovery}}{{
    \condition{{p6 > 0 && p6 < NN}}
    \action{{
        next->p6 = p6 - 1;
        next->p5 = p5 + 1;
    }}
    \weight{{2.0}}
    \priority{{1}}
    \sojourntimeLT{{ return uniformLT(0.5, 1.5, s); }}
}}

\transition{{t9_voter_return}}{{
    \condition{{p2 > 0}}
    \action{{
        next->p2 = p2 - 1;
        next->p1 = p1 + 1;
    }}
    \weight{{0.5}}
    \priority{{1}}
    \sojourntimeLT{{ return expLT(0.05, s); }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{VotingConfig, VotingSystem};
    use smp_smspn::StateSpace;

    #[test]
    fn spec_parses_and_matches_programmatic_state_space() {
        let config = VotingConfig::new(3, 2, 2);
        let source = dnamaca_source(config);
        let net = smp_dnamaca::parse_model(&source).expect("spec must parse");
        assert_eq!(net.num_places(), 7);
        assert_eq!(net.num_transitions(), 9);
        let parsed_space = StateSpace::explore(&net).unwrap();
        let programmatic = VotingSystem::build(config).unwrap();
        assert_eq!(parsed_space.num_states(), programmatic.num_states());
        assert_eq!(
            parsed_space.num_edges(),
            programmatic.state_space().num_edges()
        );
        // The initial markings agree place-by-place.
        assert_eq!(
            parsed_space.marking(0).as_slice(),
            programmatic.marking(0).as_slice()
        );
    }

    #[test]
    fn spec_embeds_paper_fig3_distribution() {
        let source = dnamaca_source(VotingConfig::new(18, 6, 3));
        assert!(source.contains("0.8 * uniformLT(1.5,10,s)"));
        assert!(source.contains("0.2 * erlangLT(0.001,5,s)"));
        assert!(source.contains("\\priority{2}"));
        assert!(source.contains("\\condition{p7 > MM-1}"));
    }

    #[test]
    fn spec_scales_with_configuration() {
        let small = dnamaca_source(VotingConfig::new(2, 1, 1));
        let large = dnamaca_source(VotingConfig::new(175, 45, 5));
        assert!(small.contains("\\constant{CC}{2}"));
        assert!(large.contains("\\constant{CC}{175}"));
        assert!(large.contains("\\constant{MM}{45}"));
        assert!(large.contains("\\constant{NN}{5}"));
    }
}
