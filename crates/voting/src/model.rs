//! The SM-SPN of the distributed voting system (Fig. 2 of the paper).
//!
//! Places (indices in parentheses):
//!
//! | place | meaning                                   | initial tokens |
//! |-------|-------------------------------------------|----------------|
//! | `p1` (0) | voting agents still to vote            | `CC`           |
//! | `p2` (1) | voting agents that have voted          | 0              |
//! | `p3` (2) | operational, idle polling units        | `MM`           |
//! | `p4` (3) | polling units busy processing a vote   | 0              |
//! | `p5` (4) | operational central voting units       | `NN`           |
//! | `p6` (5) | failed central voting units            | 0              |
//! | `p7` (6) | failed polling units                   | 0              |
//!
//! Transitions:
//!
//! * `t1` — a voter casts a vote: `p1 → p2`, claiming an idle polling unit `p3 → p4`;
//! * `t2` — the polling unit registers the vote with the operational central units
//!   (requires at least one in `p5`) and becomes idle again: `p4 → p3`;
//! * `t3` — an idle polling unit breaks down: `p3 → p7`;
//! * `t4` — a central voting unit breaks down: `p5 → p6`;
//! * `t5` — *high-priority* full repair of the polling units, enabled when **all**
//!   `MM` have failed: moves `MM` tokens `p7 → p3` (this is the transition whose
//!   DNAmaca definition is printed in Fig. 3 of the paper, firing distribution
//!   `0.8·uniform(1.5,10) + 0.2·Erlang(0.001,5)`);
//! * `t6` — high-priority full repair of the central units when all `NN` have failed;
//! * `t7` / `t8` — low-priority self-recovery of a single failed polling / central
//!   unit, enabled only while *some but not all* units of that kind are failed;
//! * `t9` — a voter that has voted eventually re-enters the queue (`p2 → p1`),
//!   modelling successive polls; this keeps the SMP irreducible so that
//!   steady-state and transient quantities (Fig. 7) are well defined.
//!
//! The paper prints only `t5`'s firing distribution; the others are configurable
//! through [`VotingDistributions`] with defaults chosen to give the same qualitative
//! behaviour (documented substitution, see the workspace `README.md`).

use smp_distributions::Dist;
use smp_smspn::{Marking, ReachabilityOptions, SmSpn, StateSpace, TransitionSpec};

/// Place indices of the voting net, for readability.
pub mod places {
    /// Voters still to vote.
    pub const P1_WAITING: usize = 0;
    /// Voters that have voted.
    pub const P2_VOTED: usize = 1;
    /// Operational idle polling units.
    pub const P3_POLLING_IDLE: usize = 2;
    /// Polling units busy processing a vote.
    pub const P4_POLLING_BUSY: usize = 3;
    /// Operational central voting units.
    pub const P5_CENTRAL_OK: usize = 4;
    /// Failed central voting units.
    pub const P6_CENTRAL_FAILED: usize = 5;
    /// Failed polling units.
    pub const P7_POLLING_FAILED: usize = 6;
}

/// Sizing parameters of a voting system instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VotingConfig {
    /// `CC` — number of voting agents.
    pub voters: u32,
    /// `MM` — number of polling units.
    pub polling_units: u32,
    /// `NN` — number of central voting units.
    pub central_units: u32,
}

impl VotingConfig {
    /// Creates a configuration, validating that every population is non-empty.
    pub fn new(voters: u32, polling_units: u32, central_units: u32) -> Self {
        assert!(
            voters >= 1 && polling_units >= 1 && central_units >= 1,
            "voting system needs at least one voter, polling unit and central unit"
        );
        VotingConfig {
            voters,
            polling_units,
            central_units,
        }
    }

    /// Upper bound on the reachable state count implied by the three token
    /// invariants `p1+p2 = CC`, `p3+p4+p7 = MM`, `p5+p6 = NN`:
    /// `(CC+1) · C(MM+2, 2) · (NN+1)`.
    pub fn state_count_upper_bound(&self) -> u64 {
        let cc = self.voters as u64;
        let mm = self.polling_units as u64;
        let nn = self.central_units as u64;
        (cc + 1) * ((mm + 2) * (mm + 1) / 2) * (nn + 1)
    }
}

/// Firing-time distributions of the voting net's transitions.
#[derive(Debug, Clone)]
pub struct VotingDistributions {
    /// `t1` — time for a voting agent to cast a vote at a polling unit.
    pub vote: Dist,
    /// `t2` — time for a polling unit to register a vote with the central units.
    pub register: Dist,
    /// `t3` — time to failure of an idle polling unit.
    pub polling_failure: Dist,
    /// `t4` — time to failure of a central voting unit.
    pub central_failure: Dist,
    /// `t5` — full repair of all polling units (the distribution of Fig. 3).
    pub polling_full_repair: Dist,
    /// `t6` — full repair of all central voting units.
    pub central_full_repair: Dist,
    /// `t7` — self-recovery of a single polling unit.
    pub polling_self_recovery: Dist,
    /// `t8` — self-recovery of a single central voting unit.
    pub central_self_recovery: Dist,
    /// `t9` — a voter re-enters the queue for the next poll.
    pub voter_return: Dist,
    /// Probabilistic-choice weights of the nine transitions, in the order
    /// `(t1, …, t9)`.  The SM-SPN semantics resolves the choice among concurrently
    /// enabled transitions by weight (not by racing firing-time samples), so these
    /// weights control how often voting, breakdown, recovery and voter-return events
    /// are selected; the defaults make voting dominant and breakdowns rare, giving
    /// the qualitative behaviour of the paper's figures.
    pub weights: [f64; 9],
}

impl Default for VotingDistributions {
    fn default() -> Self {
        VotingDistributions {
            vote: Dist::uniform(0.2, 1.2),
            register: Dist::erlang(4.0, 2),
            polling_failure: Dist::exponential(0.02),
            central_failure: Dist::exponential(0.01),
            // Fig. 3 of the paper: 0.8·uniformLT(1.5, 10) + 0.2·erlangLT(0.001, 5).
            polling_full_repair: Dist::mixture(vec![
                (0.8, Dist::uniform(1.5, 10.0)),
                (0.2, Dist::erlang(0.001, 5)),
            ]),
            central_full_repair: Dist::mixture(vec![
                (0.8, Dist::uniform(1.5, 10.0)),
                (0.2, Dist::erlang(0.001, 5)),
            ]),
            polling_self_recovery: Dist::erlang(2.0, 2),
            central_self_recovery: Dist::uniform(0.5, 1.5),
            voter_return: Dist::exponential(0.05),
            // (t1 vote, t2 register, t3 poll-fail, t4 central-fail, t5 full repair,
            //  t6 full repair, t7 self-recover, t8 self-recover, t9 voter return)
            weights: [20.0, 20.0, 0.2, 0.1, 1.0, 1.0, 2.0, 2.0, 0.5],
        }
    }
}

/// A fully built voting system: the SM-SPN, its explored state space and the
/// underlying SMP, plus helpers naming the paper's source/target sets.
#[derive(Debug)]
pub struct VotingSystem {
    config: VotingConfig,
    state_space: StateSpace,
}

impl VotingSystem {
    /// Builds the SM-SPN for a configuration with the default distributions.
    pub fn build(config: VotingConfig) -> Result<Self, Box<dyn std::error::Error>> {
        Self::build_with(
            config,
            &VotingDistributions::default(),
            &ReachabilityOptions::default(),
        )
    }

    /// Builds with explicit distributions and exploration options.
    pub fn build_with(
        config: VotingConfig,
        dists: &VotingDistributions,
        options: &ReachabilityOptions,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let net = build_net(config, dists);
        let state_space = StateSpace::explore_with(&net, options)?;
        Ok(VotingSystem {
            config,
            state_space,
        })
    }

    /// The sizing parameters.
    pub fn config(&self) -> VotingConfig {
        self.config
    }

    /// The explored state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.state_space
    }

    /// The underlying semi-Markov process.
    pub fn smp(&self) -> &smp_core::SemiMarkovProcess {
        self.state_space.smp()
    }

    /// The state index of the fully-operational initial marking.
    pub fn initial_state(&self) -> usize {
        self.state_space.initial_state()
    }

    /// Target set for "at least `k` voters have voted" (the voter-throughput
    /// passage of Figs. 4, 5 and 7 uses `k = CC` or `k = 5`).
    pub fn states_with_voted_at_least(&self, k: u32) -> Vec<usize> {
        self.state_space
            .states_where(|m| m.get(places::P2_VOTED) >= k)
    }

    /// Target set for the failure mode of Fig. 6: *all* polling units failed or
    /// *all* central voting units failed.
    pub fn failure_mode_states(&self) -> Vec<usize> {
        let mm = self.config.polling_units;
        let nn = self.config.central_units;
        self.state_space.states_where(|m| {
            m.get(places::P7_POLLING_FAILED) >= mm || m.get(places::P6_CENTRAL_FAILED) >= nn
        })
    }

    /// Convenience: the marking of a state.
    pub fn marking(&self, state: usize) -> &Marking {
        self.state_space.marking(state)
    }

    /// Number of reachable states (compare against Table 1 of the paper).
    pub fn num_states(&self) -> usize {
        self.state_space.num_states()
    }
}

/// Builds the SM-SPN of Fig. 2 for a configuration.
pub fn build_net(config: VotingConfig, dists: &VotingDistributions) -> SmSpn {
    use places::*;
    let cc = config.voters;
    let mm = config.polling_units;
    let nn = config.central_units;

    let mut net = SmSpn::with_places(&[
        ("p1", cc),
        ("p2", 0),
        ("p3", mm),
        ("p4", 0),
        ("p5", nn),
        ("p6", 0),
        ("p7", 0),
    ]);

    // t1: a voter casts a vote, claiming an idle polling unit.
    net.add_transition(
        TransitionSpec::new("t1_vote")
            .consumes(P1_WAITING, 1)
            .consumes(P3_POLLING_IDLE, 1)
            .produces(P2_VOTED, 1)
            .produces(P4_POLLING_BUSY, 1)
            .weight(dists.weights[0])
            .priority(1)
            .distribution(dists.vote.clone()),
    );

    // t2: the polling unit registers the vote with the operational central units
    // (needs at least one) and becomes idle again.
    net.add_transition(
        TransitionSpec::new("t2_register")
            .consumes(P4_POLLING_BUSY, 1)
            .produces(P3_POLLING_IDLE, 1)
            .guard(|m| m.get(P5_CENTRAL_OK) >= 1)
            .weight(dists.weights[1])
            .priority(1)
            .distribution(dists.register.clone()),
    );

    // t3: an idle polling unit fails.
    net.add_transition(
        TransitionSpec::new("t3_polling_failure")
            .consumes(P3_POLLING_IDLE, 1)
            .produces(P7_POLLING_FAILED, 1)
            .weight(dists.weights[2])
            .priority(1)
            .distribution(dists.polling_failure.clone()),
    );

    // t4: a central voting unit fails.
    net.add_transition(
        TransitionSpec::new("t4_central_failure")
            .consumes(P5_CENTRAL_OK, 1)
            .produces(P6_CENTRAL_FAILED, 1)
            .weight(dists.weights[3])
            .priority(1)
            .distribution(dists.central_failure.clone()),
    );

    // t5: high-priority full repair of the polling units — the transition whose
    // DNAmaca definition appears in Fig. 3 of the paper.
    net.add_transition(
        TransitionSpec::new("t5_polling_full_repair")
            .guard(move |m| m.get(P7_POLLING_FAILED) > mm - 1)
            .action(move |m| {
                let mut next = m.clone();
                next.set(P3_POLLING_IDLE, m.get(P3_POLLING_IDLE) + mm);
                next.set(P7_POLLING_FAILED, m.get(P7_POLLING_FAILED) - mm);
                next
            })
            .weight(dists.weights[4])
            .priority(2)
            .distribution(dists.polling_full_repair.clone()),
    );

    // t6: high-priority full repair of the central voting units.
    net.add_transition(
        TransitionSpec::new("t6_central_full_repair")
            .guard(move |m| m.get(P6_CENTRAL_FAILED) > nn - 1)
            .action(move |m| {
                let mut next = m.clone();
                next.set(P5_CENTRAL_OK, m.get(P5_CENTRAL_OK) + nn);
                next.set(P6_CENTRAL_FAILED, m.get(P6_CENTRAL_FAILED) - nn);
                next
            })
            .weight(dists.weights[5])
            .priority(2)
            .distribution(dists.central_full_repair.clone()),
    );

    // t7: self-recovery of a single polling unit (only while not all have failed —
    // complete failure is handled by the high-priority t5).
    net.add_transition(
        TransitionSpec::new("t7_polling_self_recovery")
            .consumes(P7_POLLING_FAILED, 1)
            .produces(P3_POLLING_IDLE, 1)
            .guard(move |m| m.get(P7_POLLING_FAILED) < mm)
            .weight(dists.weights[6])
            .priority(1)
            .distribution(dists.polling_self_recovery.clone()),
    );

    // t8: self-recovery of a single central voting unit.
    net.add_transition(
        TransitionSpec::new("t8_central_self_recovery")
            .consumes(P6_CENTRAL_FAILED, 1)
            .produces(P5_CENTRAL_OK, 1)
            .guard(move |m| m.get(P6_CENTRAL_FAILED) < nn)
            .weight(dists.weights[7])
            .priority(1)
            .distribution(dists.central_self_recovery.clone()),
    );

    // t9: a voter that has voted eventually re-enters the queue for the next poll.
    net.add_transition(
        TransitionSpec::new("t9_voter_return")
            .consumes(P2_VOTED, 1)
            .produces(P1_WAITING, 1)
            .weight(dists.weights[8])
            .priority(1)
            .distribution(dists.voter_return.clone()),
    );

    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VotingSystem {
        // A deliberately small instance for fast unit tests.
        VotingSystem::build(VotingConfig::new(3, 2, 2)).unwrap()
    }

    #[test]
    fn invariants_hold_in_every_reachable_marking() {
        let sys = tiny();
        let cfg = sys.config();
        for s in 0..sys.num_states() {
            let m = sys.marking(s);
            assert_eq!(
                m.get(places::P1_WAITING) + m.get(places::P2_VOTED),
                cfg.voters,
                "voter invariant violated in {m}"
            );
            assert_eq!(
                m.get(places::P3_POLLING_IDLE)
                    + m.get(places::P4_POLLING_BUSY)
                    + m.get(places::P7_POLLING_FAILED),
                cfg.polling_units,
                "polling invariant violated in {m}"
            );
            assert_eq!(
                m.get(places::P5_CENTRAL_OK) + m.get(places::P6_CENTRAL_FAILED),
                cfg.central_units,
                "central invariant violated in {m}"
            );
        }
    }

    #[test]
    fn state_count_within_upper_bound() {
        let sys = tiny();
        let bound = sys.config().state_count_upper_bound();
        assert!(sys.num_states() as u64 <= bound);
        // The bound is tight to within a few percent (unreachable markings are rare).
        assert!((sys.num_states() as u64) * 100 >= bound * 90);
    }

    #[test]
    fn initial_state_is_fully_operational() {
        let sys = tiny();
        let m = sys.marking(sys.initial_state());
        assert_eq!(m.get(places::P1_WAITING), 3);
        assert_eq!(m.get(places::P3_POLLING_IDLE), 2);
        assert_eq!(m.get(places::P5_CENTRAL_OK), 2);
        assert_eq!(m.get(places::P2_VOTED), 0);
    }

    #[test]
    fn target_sets_are_non_empty_and_consistent() {
        let sys = tiny();
        let all_voted = sys.states_with_voted_at_least(3);
        assert!(!all_voted.is_empty());
        for &s in &all_voted {
            assert_eq!(sys.marking(s).get(places::P2_VOTED), 3);
        }
        let some_voted = sys.states_with_voted_at_least(1);
        assert!(some_voted.len() > all_voted.len());
        let failures = sys.failure_mode_states();
        assert!(!failures.is_empty());
        for &s in &failures {
            let m = sys.marking(s);
            assert!(m.get(places::P7_POLLING_FAILED) == 2 || m.get(places::P6_CENTRAL_FAILED) == 2);
        }
        // The initial state is in neither target set.
        assert!(!all_voted.contains(&sys.initial_state()));
        assert!(!failures.contains(&sys.initial_state()));
    }

    #[test]
    fn smp_is_well_formed() {
        let sys = tiny();
        let smp = sys.smp();
        assert_eq!(smp.num_states(), sys.num_states());
        let p = smp.embedded_dtmc();
        smp_sparse_assert_stochastic(&p);
        // A transition out of the initial state uses the `vote` distribution.
        let uses_vote = smp
            .transitions(sys.initial_state())
            .iter()
            .any(|t| smp.distribution(t.dist) == &VotingDistributions::default().vote);
        assert!(uses_vote);
    }

    fn smp_sparse_assert_stochastic(p: &smp_sparse::CsrMatrix<f64>) {
        smp_sparse::steady_state::assert_stochastic(p, 1e-9);
    }

    #[test]
    fn full_repair_uses_paper_distribution() {
        let sys = tiny();
        let smp = sys.smp();
        // Find a state where all polling units have failed: its only outgoing
        // transition (priority 2 full repair) must carry the Fig. 3 mixture.
        let failed = sys
            .state_space()
            .states_where(|m| m.get(places::P7_POLLING_FAILED) == 2);
        assert!(!failed.is_empty());
        let expected = VotingDistributions::default().polling_full_repair;
        for &s in &failed {
            let out = smp.transitions(s);
            assert_eq!(out.len(), 1, "full repair must mask all other transitions");
            assert_eq!(smp.distribution(out[0].dist), &expected);
        }
    }

    #[test]
    fn paper_state_counts_small_configs() {
        // Scaled-down sanity check of the Table 1 structure: count grows with each
        // parameter and stays near the invariant bound.
        let small = VotingSystem::build(VotingConfig::new(2, 2, 1)).unwrap();
        let bigger_voters = VotingSystem::build(VotingConfig::new(4, 2, 1)).unwrap();
        let bigger_polling = VotingSystem::build(VotingConfig::new(2, 4, 1)).unwrap();
        assert!(bigger_voters.num_states() > small.num_states());
        assert!(bigger_polling.num_states() > small.num_states());
    }

    #[test]
    #[should_panic(expected = "at least one voter")]
    fn zero_population_rejected() {
        VotingConfig::new(0, 1, 1);
    }

    #[test]
    fn state_count_formula() {
        let cfg = VotingConfig::new(18, 6, 3);
        assert_eq!(cfg.state_count_upper_bound(), 19 * 28 * 4);
    }
}
