//! Reliability analysis of the voting system: the time from a fully operational
//! start to a complete failure mode (all polling units down, or all central voting
//! units down) — the rare-event setting of Fig. 6, where analytic passage-time
//! computation beats simulation.
//!
//! ```text
//! cargo run --release --example failure_quantiles
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_suite::core::query::{Engine, MeasureRequest, TargetSpec};
use smp_suite::core::{PassageTimeAnalysis, StateSet};
use smp_suite::distributions::Dist;
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{AnalyticEngine, ModelSpec, SimulationEngine, SimulationOptions};
use smp_suite::simulator::smp_sim::simulate_smp_passage_times;
use smp_suite::smspn::ReachabilityOptions;
use smp_suite::voting::model::VotingDistributions;
use smp_suite::voting::{VotingConfig, VotingSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Make the units failure-prone so the event is observable on a small time scale
    // (the paper's own failure/repair parameters are not printed; see the README).
    let dists = VotingDistributions {
        polling_failure: Dist::exponential(0.6),
        central_failure: Dist::exponential(0.4),
        polling_self_recovery: Dist::uniform(1.0, 4.0),
        central_self_recovery: Dist::uniform(1.0, 4.0),
        ..VotingDistributions::default()
    };
    let system = VotingSystem::build_with(
        VotingConfig::new(6, 3, 2),
        &dists,
        &ReachabilityOptions::default(),
    )?;
    println!(
        "voting system with failure-prone units: {} states",
        system.num_states()
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.failure_mode_states();
    println!("complete-failure target set: {} states", targets.len());

    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets)?;
    let mttf = analysis.mean_from_transform(1e-6)?;
    println!("analytic mean time to complete failure: {mttf:.2} s");

    // Reliability quantiles from the inverted CDF.
    let ts = linspace(mttf * 0.02, mttf * 4.0, 160);
    let cdf = analysis.cdf(InversionMethod::euler(), &ts)?;
    println!("\nreliability quantiles (time by which failure has occurred with probability p):");
    for p in [0.01, 0.1, 0.5, 0.9, 0.99] {
        match cdf.quantile(p) {
            Some(t) => println!("  p = {p:<5} ->  t = {t:8.2} s"),
            None => println!("  p = {p:<5} ->  beyond the analysed window"),
        }
    }
    println!(
        "\nP(complete failure within {:.0} s) = {:.4}",
        mttf / 2.0,
        cdf.probability_at(mttf / 2.0)
    );

    // The same question put to the simulator: with rarer failures this is where a
    // simulator would need rare-event techniques, as the paper observes.
    let target_set = StateSet::new(smp.num_states(), &targets)?;
    let mut rng = StdRng::seed_from_u64(7);
    let sim = simulate_smp_passage_times(smp, source, &target_set, 5_000, 5_000_000, &mut rng);
    println!(
        "simulation: {} replications observed the failure, sample mean {:.2} s",
        sim.len(),
        sim.mean()
    );

    // ---------------------------------------------------------------------
    // The same quantiles through the unified measure-engine API: one typed
    // MeasureRequest answered by the analytic engine and cross-checked by the
    // simulation engine — what `smpq --measure quantile:... --validate-sim`
    // does behind one flag.
    // ---------------------------------------------------------------------
    let model = ModelSpec::Voting {
        voters: 5,
        polling: 2,
        central: 2,
    };
    let request = MeasureRequest::quantile(TargetSpec::parse("p2>=3")?, &[0.5, 0.9, 0.99])
        .with_t_points(&linspace(2.0, 60.0, 8));
    println!("\nunified engine API: {} on voting(5,2,2)", request.name());

    let analytic = AnalyticEngine::new(model.clone(), InversionMethod::euler())
        .solve(std::slice::from_ref(&request))?
        .remove(0);
    let simulated = SimulationEngine::new(
        model,
        SimulationOptions {
            replications: 10_000,
            threads: 4,
            ..Default::default()
        },
    )
    .solve(std::slice::from_ref(&request))?
    .remove(0);

    let ci = simulated.provenance.error_bound.unwrap_or(0.0);
    println!("  p        analytic t      simulated t   (sim 95% band ±{ci:.3})");
    for ((p, qa), (_, qs)) in analytic.iter().zip(simulated.iter()) {
        println!("  {p:<5}  {qa:>12.3} s  {qs:>12.3} s");
    }
    println!(
        "  [{} engine: {} evaluations, {:?}; {} engine: {} replications]",
        analytic.provenance.engine,
        analytic.provenance.evaluations,
        analytic.provenance.wall,
        simulated.provenance.engine,
        simulated.provenance.evaluations,
    );
    Ok(())
}
