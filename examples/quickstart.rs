//! Quickstart: build a small semi-Markov process, compute a passage-time density,
//! CDF and quantile, and a transient state distribution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smp_suite::core::{PassageTimeAnalysis, SmpBuilder, TransientAnalysis};
use smp_suite::distributions::Dist;
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-state repair model:
    //   0 = healthy, 1 = degraded, 2 = failed, 3 = under repair
    // with generally-distributed holding times (this is exactly what plain Markov
    // chains cannot express).
    let mut builder = SmpBuilder::new(4);
    builder.add_transition(0, 1, 1.0, Dist::weibull(1.5, 10.0)); // wear-out
    builder.add_transition(1, 0, 3.0, Dist::uniform(0.5, 2.0)); // self-healing
    builder.add_transition(1, 2, 1.0, Dist::erlang(2.0, 2)); // degradation to failure
    builder.add_transition(2, 3, 1.0, Dist::deterministic(1.0)); // failure detection
    builder.add_transition(
        3,
        0,
        1.0,
        Dist::mixture(vec![
            (0.9, Dist::uniform(2.0, 6.0)), // ordinary repair
            (0.1, Dist::erlang(0.05, 3)),   // spare part on back-order
        ]),
    );
    let smp = builder.build()?;
    println!(
        "model: {} states, {} transitions",
        smp.num_states(),
        smp.num_transitions()
    );

    // Passage time from healthy (0) to failed (2).
    let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2])?;
    let mean = analysis.mean_from_transform(1e-6)?;
    println!("mean time to failure: {mean:.2}");

    let ts = linspace(mean * 0.05, mean * 3.0, 40);
    let density = analysis.density(InversionMethod::euler(), &ts)?;
    println!("\n   t        f(t)");
    for (t, f) in density.iter().step_by(5) {
        println!("{t:8.2}  {f:10.6}");
    }
    println!(
        "(density mass covered by the window: {:.3})",
        density.integral()
    );

    let cdf = analysis.cdf(InversionMethod::euler(), &ts)?;
    if let Some(q90) = cdf.quantile(0.9) {
        println!("\n90% of failures happen within {q90:.2} time units");
    }
    println!(
        "P(failure within {:.1}) = {:.4}",
        mean,
        cdf.probability_at(mean)
    );

    // Transient probability of being failed-or-under-repair at time t.
    let transient = TransientAnalysis::new(&smp, 0, &[2, 3])?;
    let steady = transient.steady_state_value()?;
    let curve = transient.distribution(InversionMethod::euler(), &linspace(1.0, mean * 4.0, 12))?;
    println!("\n   t        P(down at t)    (steady state = {steady:.4})");
    for (t, p) in curve.iter() {
        println!("{t:8.2}  {p:12.4}");
    }
    Ok(())
}
