//! The paper's headline workload at laptop scale: build a distributed voting system
//! as an SM-SPN, generate its semi-Markov state space, and compute the density of
//! the time for all voters to cast their votes — through the distributed
//! master–worker pipeline — validated against a discrete-event simulation of the
//! same model (the set-up of Figs. 4 and 5).
//!
//! ```text
//! cargo run --release --example voting_passage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_suite::core::{PassageTimeAnalysis, PassageTimeSolver, StateSet};
use smp_suite::laplace::{CdfCurve, InversionMethod};
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{DistributedPipeline, PipelineOptions};
use smp_suite::simulator::smp_sim::simulate_smp_passage_times;
use smp_suite::voting::{VotingConfig, VotingSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down voting system: 10 voters, 4 polling units, 2 central units.
    let system = VotingSystem::build(VotingConfig::new(10, 4, 2))?;
    println!(
        "voting system: {} reachable markings ({} would be the paper's system 0)",
        system.num_states(),
        2061
    );

    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(10);

    // Where to look: centre the time window on the analytic mean.
    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets)?;
    let mean = analysis.mean_from_transform(1e-6)?;
    println!("analytic mean time to process all 10 voters: {mean:.2} s");
    let ts = linspace(mean * 0.3, mean * 2.0, 24);

    // Analytic density via the distributed pipeline (4 workers, Euler inversion).
    let solver = PassageTimeSolver::new(smp, &[source], &targets)?;
    let pipeline =
        DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
    let evaluator = |s| {
        solver
            .transform_at(s)
            .map(|p| p.value)
            .map_err(|e| e.to_string())
    };
    let density = pipeline.run(evaluator, &ts)?;
    println!(
        "pipeline evaluated {} s-points in {:.2} s on 4 workers",
        density.evaluations,
        density.elapsed.as_secs_f64()
    );

    // Validate against simulation of the same SMP.
    let target_set = StateSet::new(smp.num_states(), &targets)?;
    let mut rng = StdRng::seed_from_u64(42);
    let sim = simulate_smp_passage_times(smp, source, &target_set, 20_000, 10_000_000, &mut rng);
    let sim_density = sim.kernel_density(&ts);
    println!(
        "simulated mean: {:.2} s over {} replications",
        sim.mean(),
        sim.len()
    );

    println!("\n    t      analytic   simulated");
    for ((t, a), s) in ts.iter().zip(&density.values).zip(&sim_density) {
        println!("{t:7.2}  {:9.5}  {s:9.5}", a.max(0.0));
    }

    // And the response-time quantile of Fig. 5.
    let cdf_result = pipeline.run_cdf(
        |s| {
            solver
                .transform_at(s)
                .map(|p| p.value)
                .map_err(|e| e.to_string())
        },
        &ts,
    )?;
    let cdf = CdfCurve::from_samples(ts.clone(), cdf_result.values);
    if let Some(q) = cdf.quantile(0.95) {
        println!(
            "\n95% of runs finish within {q:.2} s (simulation says {:.2} s)",
            sim.quantile(0.95).unwrap()
        );
    }
    Ok(())
}
