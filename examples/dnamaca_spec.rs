//! Drive the whole tool chain from a textual model: parse an extended-DNAmaca
//! specification (the language of the paper's Fig. 3), generate the semi-Markov
//! state space, and compute a transient state distribution.
//!
//! ```text
//! cargo run --release --example dnamaca_spec
//! ```

use smp_suite::core::TransientAnalysis;
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::smspn::StateSpace;
use smp_suite::voting::{spec, VotingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The complete voting model in the extended DNAmaca language (the same text a
    // modeller would keep in a .mod file).  A small configuration keeps the example
    // quick; spec::dnamaca_source scales to any (CC, MM, NN).
    let source = spec::dnamaca_source(VotingConfig::new(5, 2, 2));
    println!("--- model source (first lines) ---");
    for line in source.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", source.lines().count());

    // Parse and build the SM-SPN, then its state space.
    let net = smp_suite::dnamaca::parse_model(&source)?;
    println!(
        "parsed net: {} places, {} transitions",
        net.num_places(),
        net.num_transitions()
    );
    let space = StateSpace::explore(&net)?;
    println!("reachable markings: {}", space.num_states());

    // Transient probability that at least 3 voters have voted by time t, plus the
    // steady-state value it settles to (the structure of the paper's Fig. 7).
    let p2 = net.place_index("p2").expect("place p2 exists");
    let targets = space.states_where(|m| m.get(p2) >= 3);
    println!("target markings (p2 >= 3): {}", targets.len());

    let analysis = TransientAnalysis::new(space.smp(), space.initial_state(), &targets)?;
    let steady = analysis.steady_state_value()?;
    let ts = linspace(2.0, 60.0, 12);
    let curve = analysis.distribution(InversionMethod::euler(), &ts)?;

    println!("\n    t    P(p2 >= 3 at t)   steady state {steady:.4}");
    for (t, p) in curve.iter() {
        println!("{t:7.1}  {p:12.4}");
    }
    Ok(())
}
